#!/usr/bin/env python
"""Integrating DDS into a cloud DBMS page server (§9.1).

A Hyperscale-like page server stores an RBPEX file of 8 KiB pages,
replays log records onto them, and answers GetPage@LSN requests from
compute servers.  The DDS integration is the four Table 1 callbacks in
``repro.apps.pageserver.pageserver_callbacks``:

* cache-on-write parses each written page's (LSN, page id) header;
* invalidate-on-read drops entries for pages being replayed;
* the offload predicate serves a request from the DPU iff the cached
  LSN is fresh enough;
* the offload function builds the RBPEX read from the cached offset.

This script runs both deployments under replay traffic and shows the
offload rate, freshness behaviour, and the latency/CPU gap.

Run:  python examples/page_server_offload.py
"""

from repro.apps import (
    PAGE_BYTES,
    build_pageserver_cluster,
    parse_page_header,
    run_pageserver_experiment,
)
from repro.core import IoRequest, OpCode
from repro.net import FiveTuple


def demonstrate_freshness() -> None:
    """One request for a page that is *behind* the requested LSN."""
    print("-- GetPage@LSN semantics --")
    cluster = build_pageserver_cluster("dds", pages=512, replay_rate=50_000)
    flow = FiveTuple("10.0.0.9", 777, "10.0.0.1", 5000)
    # Ask for page 3 at LSN 5: the page starts at LSN 0, so the DPU's
    # cached entry is stale and the request diverts to the host, which
    # waits for replay to catch up before answering.
    request = IoRequest(
        OpCode.READ, 1, cluster.rbpex_file_id, 3 * PAGE_BYTES, PAGE_BYTES,
        tag=5,
    )
    responses = []
    done = cluster.server.submit(flow, [request], responses.append)
    cluster.env.run(until=done)
    lsn, page_id = parse_page_header(responses[0].data)
    print(
        f"requested page 3 @ LSN>=5 -> served page {page_id} at LSN {lsn} "
        f"(host path: {cluster.server.director.requests_to_host} request)"
    )
    print()


def compare_deployments() -> None:
    print("-- page serving under replay (GetPage@LSN, 8 KiB pages) --")
    print(
        f"{'deployment':10s} {'pages/s':>9s} {'p99':>9s} "
        f"{'host cores':>11s} {'offloaded':>10s}"
    )
    for kind, offered in (("baseline", 110_000), ("dds", 200_000)):
        result = run_pageserver_experiment(
            kind, offered, total_requests=5000
        )
        print(
            f"{kind:10s} {result.achieved_pages / 1e3:7.1f}K "
            f"{result.p99 * 1e6:7.0f}us {result.host_cores:11.2f} "
            f"{result.offloaded_fraction * 100:9.1f}%"
        )
    print()
    print("Figure 2's cost story (baseline CPU breakdown at ~110K pages/s):")
    result = run_pageserver_experiment("baseline", 110_000,
                                       total_requests=4000)
    for component, value in result.breakdown.items():
        print(f"  {component:14s} {value:5.2f} cores")


if __name__ == "__main__":
    demonstrate_freshness()
    compare_deployments()
