#!/usr/bin/env python
"""Writing your own offload plan with the Table 1 API (§6.1).

DDS offloading is customized with four functions.  This example builds a
small content-addressed blob store: clients GET blobs by a 64-bit id,
the host PUTs blobs wherever it likes, and cache-on-write keeps the DPU
able to serve every GET for a blob the host has persisted — including
after overwrites, thanks to invalidate-on-read plus re-caching.

Run:  python examples/custom_offload.py
"""

from typing import List, Optional, Sequence, Tuple

from repro.core import (
    DdsOffloadServer,
    IoRequest,
    OffloadCallbacks,
    OpCode,
    ReadOp,
    WriteOp,
)
from repro.hardware import NetworkLink
from repro.net import FiveTuple
from repro.sim import Environment
from repro.storage import DdsFileSystem, RamDisk, SpdkBdev

BLOB_BYTES = 512


def blob_callbacks() -> OffloadCallbacks:
    """Offload plan: key = blob id (the request's tag field)."""

    def cache(write_op: WriteOp) -> List[Tuple[int, tuple]]:
        # The host prefixes each blob with its 8-byte id; cache the
        # location of every blob contained in the write.
        payload = write_op.context or b""
        items = []
        for start in range(0, len(payload) - BLOB_BYTES + 1, BLOB_BYTES):
            blob_id = int.from_bytes(payload[start : start + 8], "little")
            items.append(
                (blob_id, (write_op.file_id, write_op.offset + start))
            )
        return items

    def invalidate(read_op: ReadOp) -> List[int]:
        return []  # GET-only remote workload: nothing to invalidate

    def off_pred(
        requests: Sequence[IoRequest], table
    ) -> Tuple[List[IoRequest], List[IoRequest]]:
        host, dpu = [], []
        for request in requests:
            if request.op is OpCode.READ and request.tag in table:
                dpu.append(request)
            else:
                host.append(request)
        return host, dpu

    def off_func(request: IoRequest, table) -> Optional[ReadOp]:
        entry = table.lookup(request.tag)
        if entry is None:
            return None
        file_id, offset = entry
        return ReadOp(file_id, offset, BLOB_BYTES)

    return OffloadCallbacks(off_pred, off_func, cache, invalidate)


def make_blob(blob_id: int, fill: int) -> bytes:
    return blob_id.to_bytes(8, "little") + bytes([fill]) * (BLOB_BYTES - 8)


def main() -> None:
    env = Environment()
    fs = DdsFileSystem(env, SpdkBdev(env, RamDisk(32 << 20)))
    fs.create_directory("blobs")
    file_id = fs.create_file("blobs", "store")
    server = DdsOffloadServer(
        env, NetworkLink(env), fs, callbacks=blob_callbacks()
    )
    flow = FiveTuple("10.0.0.9", 999, "10.0.0.1", 5000)

    def roundtrip(requests):
        responses = []
        done = server.submit(flow, requests, responses.append)
        env.run(until=done)
        return responses

    # 1. PUT three blobs (writes run on the host; cache-on-write fires
    #    in the DPU file service as they are persisted).
    puts = [
        IoRequest(
            OpCode.WRITE, i, file_id, i * BLOB_BYTES, BLOB_BYTES,
            make_blob(1000 + i, fill=i),
        )
        for i in range(3)
    ]
    assert all(r.ok for r in roundtrip(puts))
    print(f"PUT 3 blobs; cache table now holds {len(server.cache_table)}")

    # 2. GET them by id — all served by the DPU.
    gets = [
        IoRequest(OpCode.READ, 10 + i, file_id, 0, BLOB_BYTES, tag=1000 + i)
        for i in range(3)
    ]
    responses = roundtrip(gets)
    for response in sorted(responses, key=lambda r: r.request_id):
        blob_id = int.from_bytes(response.data[:8], "little")
        print(f"GET blob {blob_id}: fill byte {response.data[8]}")
    print(
        f"offloaded={server.director.requests_offloaded} "
        f"to_host={server.director.requests_to_host}"
    )

    # 3. A GET for an unknown id falls through to the host (which
    #    reports it missing in this toy store).
    missing = IoRequest(OpCode.READ, 99, file_id, 0, BLOB_BYTES, tag=4242)
    try:
        roundtrip([missing])
    except Exception:
        pass
    print(
        "unknown blob id -> host path "
        f"(to_host now {server.director.requests_to_host})"
    )


if __name__ == "__main__":
    main()
