#!/usr/bin/env python
"""Flash crowd elasticity: live resharding driven by the autoscaler.

A two-shard DDS deployment takes a traffic burst far above its
comfort zone.  The load-driven :class:`ShardAutoscaler` watches the
per-shard request counters, grows the cluster to four shards — each
add migrates the moved files through the relay fabric while their
sources keep serving, then flips ownership atomically — and once the
crowd leaves, drains the extra shards back out.  The tables at the end
show every scaling decision, each migration's copy-plane throughput,
and what the elasticity cost in client throughput while it happened.

Run:  python examples/resharding_demo.py
"""

from repro.core.client import ClientConfig, DdsClient
from repro.core.messages import IoRequest, OpCode
from repro.hardware.nic import NetworkLink
from repro.sim import Environment
from repro.storage.disk import RamDisk, SpdkBdev
from repro.storage.filesystem import DdsFileSystem
from repro.topology.resharding import ShardAutoscaler
from repro.topology.sharding import ShardedOffloadServer

IO_SIZE = 1024
FILES = 16
FILE_BYTES = 64 << 10
SLOTS = FILE_BYTES // IO_SIZE
BURST_IOPS = 150_000  # moderate crowd: the copy plane keeps headroom
BURST_REQUESTS = 9_000  # ~60 ms — long enough for two adds to converge


def build(env):
    disk = RamDisk(FILES * FILE_BYTES + (64 << 20))
    fs = DdsFileSystem(env, SpdkBdev(env, disk))
    fs.create_directory("demo")
    file_ids = []
    for index in range(FILES):
        file_id = fs.create_file("demo", f"file-{index}")
        fs.preallocate(file_id, FILE_BYTES)
        file_ids.append(file_id)
    server = ShardedOffloadServer(
        env, NetworkLink(env), fs, shard_count=2
    )
    return server, file_ids


def make_workload(file_ids):
    def factory(request_id, rng):
        if request_id % 4 == 0:
            ordinal = request_id // 4
            file_id = file_ids[ordinal % FILES]
            offset = ((ordinal // FILES) % SLOTS) * IO_SIZE
            payload = request_id.to_bytes(8, "little") * (IO_SIZE // 8)
            return IoRequest(
                OpCode.WRITE, request_id, file_id, offset, IO_SIZE, payload
            )
        file_id = file_ids[rng.randrange(FILES)]
        offset = rng.randrange(SLOTS) * IO_SIZE
        return IoRequest(OpCode.READ, request_id, file_id, offset, IO_SIZE)

    return factory


class AckLog:
    def __init__(self, env):
        self.env = env
        self.acks = []

    def on_issue(self, request):
        pass

    def on_ack(self, request, response):
        if response.ok:
            self.acks.append(self.env.now)

    def on_give_up(self, request):
        pass


def iops_between(acks, start, end):
    span = end - start
    if span <= 0:
        return 0.0
    return sum(1 for stamp in acks if start <= stamp < end) / span


def main() -> None:
    env = Environment()
    server, file_ids = build(env)
    server.enable_resilience()
    resharder = server.enable_resharding()
    scaler = ShardAutoscaler(
        env,
        server,
        high_water_iops=50e3,  # per shard — the crowd blows past this
        low_water_iops=25e3,
        interval=1e-3,
        min_shards=2,
        max_shards=4,
        cooldown=2,
    )
    scaler.start()
    log = AckLog(env)
    config = ClientConfig(
        offered_iops=BURST_IOPS,
        total_requests=BURST_REQUESTS,
        io_size=IO_SIZE,
        batch=4,
        connections=16,
        max_outstanding=512,
        file_size=FILE_BYTES,
        seed=29,
    )
    client = DdsClient(
        env, server, file_ids[0], config,
        request_factory=make_workload(file_ids), observer=log,
    )
    print(
        f"Flash crowd: {BURST_IOPS // 1000}K IOPS offered at a "
        f"2-shard deployment (autoscaler 2..4 shards)\n"
    )
    result = client.run()
    # Post-crowd idle ticks: per-shard rates fall below the low water
    # and the scaler drains its own additions back out.
    for _ in range(300):
        if [s.index for s in server.live_shards] == [0, 1]:
            break
        env.run(until=env.timeout(1e-3))
    scaler.stop()

    print("scaling decisions")
    print(f"{'time':>9s}  {'live':>4s}  action")
    for decision in scaler.decisions:
        if decision["action"] is None:
            continue
        print(
            f"{decision['time'] * 1e3:7.2f}ms  {decision['live']:4d}  "
            f"{decision['action']}"
        )

    print("\nmigrations (copy plane)")
    print(
        f"{'op':10s} {'files':>5s} {'KiB':>7s} {'duration':>9s} "
        f"{'rate':>9s}"
    )
    for record in resharder.history:
        span = record["end"] - record["start"]
        rate = record["bytes"] / span / 1e6 if span > 0 else 0.0
        print(
            f"{record['kind']:10s} {len(record['files']):5d} "
            f"{record['bytes'] >> 10:7d} {span * 1e3:7.2f}ms "
            f"{rate:6.1f}MB/s"
        )

    print("\ncost curve (client throughput per phase)")
    # Phases cover the crowd's lifetime only — the post-crowd drains
    # run against an idle cluster and have no client cost to measure.
    last_ack = max(log.acks)
    phases = []
    cursor, gap_label = 0.0, "steady"
    for record in resharder.history:
        start = min(record["start"], last_ack)
        end = min(record["end"], last_ack)
        if start > cursor:
            phases.append((cursor, start, gap_label))
        if end > start:
            phases.append((start, end, record["kind"]))
        cursor, gap_label = max(cursor, end), "between"
    if last_ack > cursor:
        phases.append((cursor, last_ack, gap_label))
    print(f"{'phase':10s} {'window':>19s} {'achieved':>10s}")
    for start, end, label in phases:
        print(
            f"{label:10s} {start * 1e3:7.2f}-{end * 1e3:7.2f}ms "
            f"{iops_between(log.acks, start, end) / 1e3:8.1f}K"
        )

    print(
        f"\n{len(result.latencies)} requests, "
        f"{result.failed_requests} failed, "
        f"{resharder.files_moved} file moves, "
        f"{resharder.dirty_recopies} dirty re-copies, "
        f"{server.shard_map.pinned_files} leftover pins; "
        f"back to shards {[s.index for s in server.live_shards]}"
    )


if __name__ == "__main__":
    main()
