#!/usr/bin/env python
"""Graceful degradation under a flash crowd: metastability, then the fix.

A single-shard DDS deployment saturates at ~52K IOPS of 64 KiB reads.
An open-loop tenant population — three latency-sensitive interactive
accounts and one batch whale — offers 80% of that, and then a flash
crowd multiplies demand 5x for six milliseconds.

The demo runs the scenario twice:

* **stock** — clients retry up to 8 times on timeout with no retry
  budget, and the server has no admission control.  The crowd fills
  the queues, timeouts breed retries, retries keep the queues full:
  goodput stays collapsed long after the crowd has left.  That
  self-sustaining failure mode is *metastability*.
* **defended** — the server runs the tenant QoS gate (token-bucket
  admission at 90% of capacity, bounded per-tenant queues with
  CoDel-style deadline shedding, weighted-fair DRR dispatch, explicit
  THROTTLED backpressure) and clients share a success-refilled
  :class:`RetryBudget`.  Excess demand is shed at the door, the
  interactive tenants keep millisecond p99s through the crowd, and
  goodput snaps back to the baseline as soon as the crowd leaves.

The timeline table prints acked throughput in 2 ms buckets so the
collapse — and the recovery — are visible bucket by bucket.

Run:  python examples/overload_demo.py
"""

from repro.core.retry import RetryBudget, RetryPolicy
from repro.hardware.nic import NetworkLink
from repro.sim import Environment
from repro.storage.disk import RamDisk, SpdkBdev
from repro.storage.filesystem import DdsFileSystem
from repro.topology.qos import QosConfig
from repro.topology.sharding import ShardedOffloadServer
from repro.workload import FlashCrowd, OpenLoopTrafficEngine, TenantSpec

IO_SIZE = 64 << 10
FILES = 8
FILE_BYTES = 1 << 20
CAPACITY = 52_000.0  # single-shard 64KiB-read saturation
BASE_RATE = 0.8 * CAPACITY
HORIZON = 30e-3
CROWD = FlashCrowd(start=8e-3, duration=6e-3, multiplier=5.0)
BUCKET = 2e-3


def build(env):
    disk = RamDisk(FILES * FILE_BYTES + (64 << 20))
    fs = DdsFileSystem(env, SpdkBdev(env, disk))
    fs.create_directory("demo")
    file_ids = []
    for index in range(FILES):
        file_id = fs.create_file("demo", f"file-{index}")
        fs.preallocate(file_id, FILE_BYTES)
        file_ids.append(file_id)
    server = ShardedOffloadServer(
        env, NetworkLink(env), fs, shard_count=1
    )
    return server, file_ids


def tenant_specs():
    specs = [
        TenantSpec(
            f"int-{i}", i, rate=BASE_RATE * 0.2 / 3, weight=4.0,
            slo_p99=5e-3,
        )
        for i in range(3)
    ]
    specs.append(
        TenantSpec("batch-0", 3, rate=BASE_RATE * 0.8, weight=1.0)
    )
    return specs


def run(defended):
    env = Environment()
    server, file_ids = build(env)
    engine = OpenLoopTrafficEngine(
        env, server, tenant_specs(), file_ids,
        horizon=HORIZON, io_size=IO_SIZE, file_bytes=FILE_BYTES,
        seed=31, events=(CROWD,),
        retry_policy=RetryPolicy(max_attempts=8, timeout=2e-3),
        retry_budget=(
            RetryBudget(capacity=32.0, refill_ratio=0.1)
            if defended else None
        ),
    )
    if defended:
        server.enable_resilience()
        server.enable_qos(QosConfig(
            global_rate=0.9 * CAPACITY, global_burst=32.0,
            sojourn_target=2e-3,
            weights={f"int-{i}": 4.0 for i in range(3)},
            tenant_of=engine.tenant_for_flow,
        ))
    return engine.run()


def main():
    results = {
        label: run(defended)
        for label, defended in (("stock", False), ("defended", True))
    }

    print("=== acked throughput timeline (2 ms buckets) ===")
    print("crowd arrives at 8 ms, leaves at 14 ms\n")
    curves = {
        label: result.goodput_curve(BUCKET)
        for label, result in results.items()
    }
    buckets = max(len(curve) for curve in curves.values())
    print(f"{'window':>12}  {'stock':>10}  {'defended':>10}  note")
    for i in range(buckets):
        lo, hi = i * BUCKET * 1e3, (i + 1) * BUCKET * 1e3
        cells = [
            (
                f"{curves[label][i] / 1e3:.1f}K"
                if i < len(curves[label]) else "-"
            )
            for label in ("stock", "defended")
        ]
        note = ""
        if lo == 8.0:
            note = "<- flash crowd begins (5x demand)"
        elif lo == 14.0:
            note = "<- crowd gone; only the stock config stays down"
        print(
            f"{lo:>5.0f}-{hi:<5.0f}  {cells[0]:>10}  {cells[1]:>10}  {note}"
        )

    print("\n=== outcome ===")
    header = (
        f"{'config':<10} {'acked':>8} {'retries':>8} {'throttled':>10} "
        f"{'p99':>9}"
    )
    print(header)
    for label, result in results.items():
        print(
            f"{label:<10} {result.acked:>8} {result.retries:>8} "
            f"{result.throttled_responses:>10} {result.p99 * 1e3:>7.2f}ms"
        )

    stock, defended = results["stock"], results["defended"]
    print(
        f"\nstock amplification: {stock.amplification:.2f}x demand "
        f"(the retry storm); defended: {defended.amplification:.2f}x"
    )
    print(
        "defended clients saw "
        f"{defended.throttled_responses} explicit THROTTLED responses "
        "instead of silent timeouts,"
    )
    print(
        f"and the retry budget denied {defended.budget_denied} retry "
        "attempts before they could feed the storm."
    )


if __name__ == "__main__":
    main()
