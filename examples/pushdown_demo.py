#!/usr/bin/env python
"""Verified programmable pushdown: compile, prove, execute, fall back.

Four acts (DESIGN.md §14):

1. a single-expression Python predicate compiles to stack bytecode and
   the static verifier returns a *proof* — exact worst-case fuel,
   stack, and emit bounds — not just a yes;
2. the same verified pipelines sweep the three operator placements
   (client host core, DPU Arm cores, RXP accelerator) and the table
   shows the paper's pushdown story: wire bytes and client-core time
   collapsing as operators move device-side;
3. a sharded server runs a verified filter→project→aggregate on the
   owning shard's DPU engine;
4. a program the verifier refuses (an operand stack the proof cannot
   bound) still returns the right answer — on the host, with every
   page shipped — alongside the typed PDV verdict.

Run:  python examples/pushdown_demo.py
"""

from repro.hardware.nic import NetworkLink
from repro.pushdown import (
    Instruction,
    Op,
    Pipeline,
    Program,
    compile_predicate,
    verify,
    verify_program,
)
from repro.pushdown.scan import (
    GEOMETRY,
    PAGE_BYTES,
    PIPELINES,
    PLACEMENTS,
    RECORDS_PER_PAGE,
    VALUE_OFFSET,
    _make_pipeline_record,
    canonical_pipeline,
    run_pipeline_experiment,
)
from repro.sim import Environment, SeededRng
from repro.storage.disk import RamDisk, SpdkBdev
from repro.storage.filesystem import DdsFileSystem
from repro.topology.sharding import ShardedOffloadServer

PAGES = 16


def act_one_compile_and_prove() -> None:
    print("1. compile + prove")

    def pred(rec):
        return rec.u32(16) > 5000 and rec.match(rb"needle-\d{8}")

    program = compile_predicate(pred)
    verdict = verify_program(program, GEOMETRY)
    print(f"   predicate compiles to {len(program.code)} instructions:")
    ops = " ".join(instr.op.value for instr in program.code)
    print(f"     {ops}")
    print(
        f"   proof: fuel<={verdict.fuel} steps, stack<={verdict.max_stack},"
        f" emit<={verdict.max_emit}B  (ok={verdict.ok})\n"
    )


def act_two_placement_sweep() -> None:
    print("2. placement sweep (verified bytecode, three engines)")
    print(
        f"   {'pipeline':20s} {'placement':13s} {'scan':>9s} "
        f"{'wire':>9s} {'DPU':>9s} {'client':>9s}"
    )
    for pipeline_name in PIPELINES:
        for placement in PLACEMENTS:
            result = run_pipeline_experiment(
                placement, pipeline_name, pages=PAGES, selectivity=0.1
            )
            print(
                f"   {pipeline_name:20s} {placement:13s} "
                f"{result.scan_seconds * 1e6:7.1f}us "
                f"{result.wire_bytes:8d}B "
                f"{result.dpu_core_seconds * 1e6:7.1f}us "
                f"{result.client_core_seconds * 1e6:7.1f}us"
            )
    print()


def build_sharded_table(env):
    fs = DdsFileSystem(
        env, SpdkBdev(env, RamDisk(PAGES * PAGE_BYTES + (32 << 20)))
    )
    fs.create_directory("table")
    file_id = fs.create_file("table", "records")
    rng = SeededRng(55)
    for page_id in range(PAGES):
        records = [
            _make_pipeline_record(
                page_id * RECORDS_PER_PAGE + slot, rng, rng.random() < 0.1
            )
            for slot in range(RECORDS_PER_PAGE)
        ]
        fs.write_sync(file_id, page_id * PAGE_BYTES, b"".join(records))
    server = ShardedOffloadServer(env, NetworkLink(env), fs, shard_count=4)
    server.enable_pushdown()
    return server, file_id


def act_three_sharded_offload(env, server, file_id) -> None:
    print("3. verified pipeline on the sharded server")
    pipeline = canonical_pipeline("filter-project-agg")
    proc = env.process(server.pushdown_scan(file_id, pipeline, PAGES))
    env.run(until=proc)
    verdict, outcome = proc.value
    total, count, best = outcome.acc[0], outcome.acc[1], outcome.acc[2]
    print(
        f"   shard {outcome.shard} (owner) ran it on-DPU: "
        f"{outcome.rows} rows, sum={total}, count={count}, max={best}"
    )
    print(
        f"   wire: {outcome.wire_bytes}B of "
        f"{PAGES * PAGE_BYTES}B table  (offloaded={outcome.offloaded})\n"
    )


def act_four_rejection_falls_back(env, server, file_id) -> None:
    print("4. rejected program -> typed verdict + host fallback")
    # value > 5000, computed 40 redundant times and AND-folded: the
    # operand stack provably peaks past the DPU admission bound.
    code = []
    for _ in range(40):
        code.append(Instruction(Op.LOAD, VALUE_OFFSET, 4))
        code.append(Instruction(Op.PUSH, 5000))
        code.append(Instruction(Op.GT))
    code.extend(Instruction(Op.AND) for _ in range(39))
    code.append(Instruction(Op.RET))
    deep = Pipeline((Program(kind="filter", code=tuple(code)),))
    _pipeline_verdict, token = verify(deep, GEOMETRY)
    assert token is None
    proc = env.process(server.pushdown_scan(file_id, deep, PAGES))
    env.run(until=proc)
    verdict, outcome = proc.value
    print(f"   verdict: {verdict.explain()}")
    print(
        f"   host answered anyway: {outcome.rows} rows, "
        f"{outcome.wire_bytes}B shipped (offloaded={outcome.offloaded})"
    )


def main() -> None:
    act_one_compile_and_prove()
    act_two_placement_sweep()
    env = Environment()
    server, file_id = build_sharded_table(env)
    act_three_sharded_offload(env, server, file_id)
    act_four_rejection_falls_back(env, server, file_id)


if __name__ == "__main__":
    main()
