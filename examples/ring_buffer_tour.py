#!/usr/bin/env python
"""A tour of DDS's host-DPU communication structures (§4.1, §4.3).

Three things in one script:

1. The progress-pointer lock-free ring, exercised with *real threads*:
   many producers, one consumer, every message accounted for.
2. The three-tail response buffer: out-of-order I/O completions turned
   back into in-order deliveries with zero copies.
3. The Figure 17 comparison, on the simulator: why the progress ring
   beats FaRM-style flag rings and lock-based rings under contention.

Run:  python examples/ring_buffer_tour.py
"""

import threading

from repro.core import RingTransferModel
from repro.sim import Environment
from repro.structures import ProgressRing, ResponseBuffer

PRODUCERS = 8
MESSAGES_PER_PRODUCER = 5_000


def threaded_ring_demo() -> None:
    print("-- progress ring, real threads --")
    ring = ProgressRing(1 << 16, max_progress=1 << 14)
    received = []
    total = PRODUCERS * MESSAGES_PER_PRODUCER

    def produce(worker: int) -> None:
        for i in range(MESSAGES_PER_PRODUCER):
            payload = f"{worker}:{i}".encode()
            while not ring.try_enqueue(payload):
                pass  # RETRY: consumer is behind

    def consume() -> None:
        while len(received) < total:
            batch = ring.try_consume()
            if batch:
                received.extend(batch)

    threads = [
        threading.Thread(target=produce, args=(w,)) for w in range(PRODUCERS)
    ]
    consumer = threading.Thread(target=consume)
    consumer.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    consumer.join()
    assert len(set(received)) == total
    head, progress, tail = ring.pointers
    print(
        f"{PRODUCERS} producers moved {total} messages, none lost; "
        f"final pointers head={head} progress={progress} tail={tail}\n"
    )


def response_buffer_demo() -> None:
    print("-- TailA/TailB/TailC response buffer --")
    buffer = ResponseBuffer(1 << 16, delivery_batch=64)
    responses = [buffer.allocate(i, 32) for i in range(6)]
    # I/O completes out of order...
    for index in (3, 1, 5, 0, 2, 4):
        responses[index].complete(payload=bytes([index]))
        buffer.harvest()
    delivered = buffer.take_delivery(force=True)
    buffer.mark_delivered(delivered)
    order = [r.request_id for r in delivered]
    print(f"completion order 3,1,5,0,2,4 -> delivery order {order}")
    print(
        f"tails: C={buffer.tail_completed} B={buffer.tail_buffered} "
        f"A={buffer.tail_allocated}\n"
    )


def figure17_demo() -> None:
    print("-- Figure 17 on the simulator (64 producers) --")
    for design in ("progress", "lock", "farm"):
        messages = 1500 if design == "farm" else 20_000
        model = RingTransferModel(Environment(), design, producers=64)
        outcome = model.run(messages_per_producer=max(1, messages // 64))
        print(
            f"{design:9s} {outcome.rate / 1e6:6.2f}M msg/s  "
            f"median latency {outcome.median_latency * 1e6:6.1f}us"
        )


if __name__ == "__main__":
    threaded_ring_demo()
    response_buffer_demo()
    figure17_demo()
