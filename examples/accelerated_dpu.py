#!/usr/bin/env python
"""Beyond the paper: DPU accelerators, caching, and tenant isolation.

The paper's conclusion (§11) proposes exploiting the DPU's hardware
engines, and its related-work section (§10) points at DPU caching
(Xenic) and multi-tenant isolation (Gimbal) as natural extensions.
All four are implemented in ``repro.extensions``; this script runs each
one's headline experiment:

1. compressed page serving — the deflate engine decompresses offloaded
   reads at line rate;
2. string-operator pushdown — the regex engine filters records where
   they live;
3. a DPU-memory read cache under Zipfian skew;
4. deficit-round-robin tenant isolation under a bursty neighbour.

Run:  python examples/accelerated_dpu.py
"""

from repro.extensions import (
    run_compressed_read_experiment,
    run_dpu_cache_experiment,
    run_multitenant_experiment,
    run_pushdown_experiment,
)


def compression_demo() -> None:
    print("-- 1. compressed page serving (8 KiB pages, ~4.7x ratio) --")
    for mode in ("none", "software", "accel"):
        result = run_compressed_read_experiment(mode, pages=96, reads=960)
        print(
            f"  {mode:9s} {result.throughput / 1e3:7.1f}K pages/s  "
            f"{result.mean_latency * 1e6:5.0f}us  "
            f"{result.ssd_bytes_per_page:5.0f} SSD B/page"
        )
    print("  -> hardware decompression keeps full speed; Arm cores can't\n")


def pushdown_demo() -> None:
    print("-- 2. regex pushdown (5% selectivity scan) --")
    for mode in ("ship-all", "dpu-software", "dpu-regex"):
        result = run_pushdown_experiment(mode, pages=96)
        print(
            f"  {mode:13s} scan {result.scan_seconds * 1e3:6.2f}ms  "
            f"wire {result.wire_bytes / 1024:7.1f}KB  "
            f"arm {result.arm_core_seconds * 1e3:5.2f}ms"
        )
    print("  -> the RXP engine cuts wire bytes ~25x at ship-all speed\n")


def cache_demo() -> None:
    print("-- 3. DPU-memory read cache (Zipfian reads) --")
    for cache_bytes in (0, 256 << 10, 2 << 20):
        result = run_dpu_cache_experiment(cache_bytes, reads=2400)
        label = f"{cache_bytes >> 10}KB" if cache_bytes else "off"
        print(
            f"  cache {label:7s} hit {result.hit_rate * 100:5.1f}%  "
            f"{result.throughput / 1e3:7.1f}K reads/s  "
            f"{result.mean_latency * 1e6:5.1f}us"
        )
    print("  -> a few MB of on-board DRAM lifts skewed reads past the SSD\n")


def tenancy_demo() -> None:
    print("-- 4. tenant isolation (light tenant vs 2000-request burst) --")
    for scheduler in ("fifo", "drr"):
        result = run_multitenant_experiment(scheduler)
        print(
            f"  {scheduler:4s} light worst-case "
            f"{result.light_max_latency * 1e3:6.2f}ms, "
            f"heavy throughput {result.heavy_throughput:6.0f}/s"
        )
    print("  -> DRR bounds the light tenant's wait at no aggregate cost")


if __name__ == "__main__":
    compression_demo()
    pushdown_demo()
    cache_demo()
    tenancy_demo()
