#!/usr/bin/env python
"""Integrating DDS into a disaggregated KV service (§9.2).

A FASTER-like store keeps hot records on its in-memory hybrid-log tail
and most records on SSD behind the IDevice abstraction.  With DDS, the
IDevice is reimplemented over the DDS file library (the paper's ~360
lines), and cache-on-write indexes every flushed record's location so
the DPU can serve GETs for on-disk keys without the host.

The script shows (a) correct values served from both the DPU and host
paths, and (b) the Figure 25/26 effect: ~1M op/s with near-zero host
CPU versus the socket + OS-file baseline.

Run:  python examples/kv_store_offload.py
"""

from repro.apps import build_kv_cluster, run_kv_experiment
from repro.apps.faster import RECORD
from repro.core import IoRequest, OpCode
from repro.net import FiveTuple


def demonstrate_paths() -> None:
    print("-- where a GET is served --")
    cluster = build_kv_cluster("dds", records=100_000)
    flow = FiveTuple("10.0.0.9", 888, "10.0.0.1", 5000)
    cases = [
        (42, "old record, flushed to SSD"),
        (99_999, "hot record, still on the in-memory tail"),
    ]
    for request_id, (key, description) in enumerate(cases, start=1):
        request = IoRequest(
            OpCode.READ, request_id, cluster.kv_file_id, 0, RECORD.size,
            tag=key,
        )
        responses = []
        done = cluster.server.submit(flow, [request], responses.append)
        cluster.env.run(until=done)
        got_key, got_value = RECORD.unpack(responses[0].data)
        assert (got_key, got_value) == (key, key)
    director = cluster.server.director
    print(
        f"served {director.requests_offloaded} GET from the DPU "
        f"(cache-table hit) and {director.requests_to_host} from the host "
        "(in-memory tail)\n"
    )


def compare_deployments() -> None:
    print("-- YCSB uniform reads (8 B keys / 8 B values) --")
    print(
        f"{'deployment':10s} {'op/s':>9s} {'p50':>8s} {'p99':>8s} "
        f"{'host cores':>11s}"
    )
    for kind, offered, batch in (
        ("baseline", 400_000, 1),
        ("dds", 1_000_000, 4),
    ):
        result = run_kv_experiment(
            kind, offered, total_requests=6000, batch=batch
        )
        print(
            f"{kind:10s} {result.achieved_ops / 1e3:7.1f}K "
            f"{result.p50 * 1e6:6.0f}us {result.p99 * 1e6:6.0f}us "
            f"{result.host_cores:11.2f}"
        )


if __name__ == "__main__":
    demonstrate_paths()
    compare_deployments()
