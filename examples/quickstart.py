#!/usr/bin/env python
"""Quickstart: a DDS storage server versus today's baseline.

Builds two simulated disaggregated-storage clusters — one serving
requests through the host's OS stack (the status quo) and one with DDS
offloading reads onto the DPU — then drives the paper's §8.1 workload
(random 1 KiB reads over TCP) against both and prints what the paper's
abstract promises: higher throughput, an order of magnitude lower
latency, and host CPUs handed back.

Run:  python examples/quickstart.py
"""

from repro.bench import run_io_experiment


def main() -> None:
    offered = 400_000  # offered load, IOPS
    print(f"Random 1 KiB reads at {offered // 1000}K IOPS offered\n")
    print(
        f"{'server':14s} {'achieved':>10s} {'p50':>9s} {'p99':>9s} "
        f"{'host cores':>11s} {'DPU cores':>10s}"
    )
    for kind in ("baseline", "dds-files", "dds-offload"):
        result = run_io_experiment(kind, offered, total_requests=8000)
        print(
            f"{kind:14s} {result.achieved_iops / 1e3:8.1f}K "
            f"{result.p50 * 1e6:7.0f}us {result.p99 * 1e6:7.0f}us "
            f"{result.host_cores:11.2f} {result.dpu_cores:10.2f}"
        )
    print(
        "\nbaseline     = Windows sockets + OS filesystem on the host\n"
        "dds-files    = host networking + DDS file library "
        "(file execution on the DPU)\n"
        "dds-offload  = full DDS: reads never touch the host"
    )


if __name__ == "__main__":
    main()
