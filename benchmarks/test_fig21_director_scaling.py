"""Figure 21: traffic-director throughput vs. DPU cores (§8.5).

Paper: one Arm core directs ~6.4 Gbps of traffic, and RSS scales the
director linearly as cores are added (flows are hashed to cores, each
core owning its flows' TCP-splitting state exclusively).
"""

from _tables import emit

from repro.core import IoRequest, IoResponse, OpCode, TrafficDirector
from repro.core.api import passthrough_callbacks
from repro.hardware import DPU_CPU, CpuCore, NetworkLink
from repro.net import AppSignature, FiveTuple
from repro.sim import Environment
from repro.structures import CuckooCacheTable

CORES = (1, 2, 4, 8)
MESSAGE_BYTES = 1400
MESSAGES = 3000
FLOWS_PER_CORE = 8


def balanced_flows(cores: int) -> list:
    """Pick flows that RSS spreads evenly over the director cores."""
    buckets = {index: 0 for index in range(cores)}
    flows = []
    port = 40_000
    while len(flows) < cores * FLOWS_PER_CORE:
        flow = FiveTuple("10.0.0.2", port, "10.0.0.1", 5000)
        port += 1
        bucket = flow.rss_hash(cores)
        if buckets[bucket] < FLOWS_PER_CORE:
            buckets[bucket] += 1
            flows.append(flow)
    return flows


def measure(cores: int) -> float:
    """Directed bandwidth (bits/s) with ``cores`` director cores."""
    env = Environment()
    link = NetworkLink(env)
    core_list = [CpuCore(env, speed=DPU_CPU.speed) for _ in range(cores)]

    def host_handler(requests, respond):
        for request in requests:
            respond(IoResponse(request.request_id, True))
        yield env.timeout(0)

    director = TrafficDirector(
        env,
        link,
        core_list,
        AppSignature(server_port=5000),
        passthrough_callbacks(),
        CuckooCacheTable(64),
        None,  # no offload engine: pure bump-in-the-wire directing
        host_handler,
    )
    flows = balanced_flows(cores)
    done = env.event()
    completed = [0]
    payload = bytes(MESSAGE_BYTES)

    def on_response(_response):
        completed[0] += 1
        if completed[0] >= MESSAGES and not done.triggered:
            done.succeed()

    def pump(flow, count, base_id):
        for i in range(count):
            request = IoRequest(
                OpCode.WRITE, base_id + i, 1, 0, MESSAGE_BYTES, payload
            )
            yield env.process(
                director.receive_message(flow, [request], on_response)
            )

    per_flow = MESSAGES // len(flows) + 1
    for index, flow in enumerate(flows):
        env.process(pump(flow, per_flow, index * per_flow * 10))
    env.run(until=done)
    directed_bytes = completed[0] * MESSAGE_BYTES
    return directed_bytes * 8 / env.now


def run_figure():
    results = {cores: measure(cores) for cores in CORES}
    rows = [
        (cores, f"{bps / 1e9:.2f} Gbps", f"{bps / cores / 1e9:.2f} Gbps")
        for cores, bps in results.items()
    ]
    emit(
        "fig21",
        "traffic director: directed bandwidth vs DPU cores",
        ("cores", "total", "per core"),
        rows,
    )
    return results


def test_fig21_director_scaling(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    # A single Arm core directs ~6.4 Gbps (paper's anchor).
    assert 4.5e9 < results[1] < 8.5e9
    # RSS scales near-linearly to 8 cores.
    assert results[2] > 1.7 * results[1]
    assert results[4] > 3.2 * results[1]
    assert results[8] > 5.8 * results[1]
