"""Figure 19: TLDK vs. Linux for TCP splitting on the DPU (§8.5).

Paper: echoing through the SoC's Linux kernel TCP is *slower* than not
offloading at all (host answer), because the kernel path is exacerbated
by wimpy Arm cores.  The optimized TLDK userspace stack is ~3x faster
than Linux-on-DPU, making offloading a ~2.5x win over the host answer.
"""

from _tables import emit, us

from repro.bench import EchoBench
from repro.sim import Environment

SIZE = 64  # the experiment echoes small control messages


def run_figure():
    results = {
        responder: EchoBench(Environment()).measure(responder, SIZE)
        for responder in ("host-os", "dpu-linux", "dpu-tldk")
    }
    rows = [
        (name, us(result.server_latency), us(result.rtt))
        for name, result in results.items()
    ]
    emit(
        "fig19",
        "TCP-splitting echo: server-side latency by stack",
        ("stack", "server latency", "RTT"),
        rows,
    )
    return results


def test_fig19_tldk_split(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    host = results["host-os"].server_latency
    linux = results["dpu-linux"].server_latency
    tldk = results["dpu-tldk"].server_latency
    # Linux TCP on the DPU is worse than answering from the host.
    assert linux > host
    # TLDK is ~3x lower than Linux-on-DPU (paper: 3x)...
    assert 2.2 < linux / tldk < 4.5
    # ...and ~2-2.5x lower than the host answer (paper: 2.5x).
    assert 1.5 < host / tldk < 3.5
