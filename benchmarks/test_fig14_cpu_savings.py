"""Figure 14: achieved throughput vs. host CPU cores consumed.

Paper (reads, 1 KiB random): the baseline needs 10.7 cores for 390 K
IOPS; the DDS file library reaches 580 K IOPS at 6.5 cores; full DPU
offloading drives 730 K IOPS with approximately zero host cores.
Writes: DDS's offload API does not cover writes, but the library path
still saves >5 cores versus the baseline above 200 K IOPS.
"""

from _tables import cores, emit, kops

from repro.bench import run_io_experiment

READ_LOADS = (200e3, 400e3, 600e3, 800e3)
WRITE_LOADS = (100e3, 200e3, 300e3, 400e3)


def run_reads():
    results = {}
    rows = []
    for kind in ("baseline", "dds-files", "dds-offload"):
        series = [
            run_io_experiment(kind, offered, total_requests=8000)
            for offered in READ_LOADS
        ]
        results[kind] = series
        for result in series:
            rows.append(
                (
                    kind,
                    kops(result.achieved_iops),
                    cores(result.host_cores),
                    cores(result.dpu_cores),
                )
            )
    emit(
        "fig14a",
        "reads: throughput vs host CPU cores",
        ("solution", "IOPS", "host cores", "dpu cores"),
        rows,
    )
    return results


def run_writes():
    results = {}
    rows = []
    for kind in ("baseline", "dds-files"):
        series = [
            run_io_experiment(
                kind, offered, total_requests=6000, read_fraction=0.0
            )
            for offered in WRITE_LOADS
        ]
        results[kind] = series
        for result in series:
            rows.append(
                (
                    kind,
                    kops(result.achieved_iops),
                    cores(result.host_cores),
                    cores(result.dpu_cores),
                )
            )
    emit(
        "fig14b",
        "writes: throughput vs host CPU cores",
        ("solution", "IOPS", "host cores", "dpu cores"),
        rows,
    )
    return results


def test_fig14a_read_cpu_savings(benchmark):
    results = benchmark.pedantic(run_reads, rounds=1, iterations=1)
    baseline = results["baseline"][-1]
    library = results["dds-files"][-1]
    offload = results["dds-offload"][-1]
    # Peak ordering: baseline ~390K < library ~580K < offload ~730K.
    assert baseline.achieved_iops < library.achieved_iops
    assert library.achieved_iops < offload.achieved_iops
    assert 330e3 < baseline.achieved_iops < 460e3
    assert 500e3 < library.achieved_iops < 660e3
    assert 650e3 < offload.achieved_iops < 820e3
    # Host CPU: baseline ~10 cores at peak; library clearly cheaper per
    # IOPS; offloading eliminates host CPU.
    assert 8 < baseline.host_cores < 14
    per_iop_base = baseline.host_cores / baseline.achieved_iops
    per_iop_lib = library.host_cores / library.achieved_iops
    assert per_iop_lib < 0.65 * per_iop_base
    assert offload.host_cores < 0.05
    # The offload path runs within the BF-2's three dedicated Arm cores.
    assert offload.dpu_cores < 3.0


def test_fig14b_write_cpu_savings(benchmark):
    results = benchmark.pedantic(run_writes, rounds=1, iterations=1)
    baseline = results["baseline"][-1]
    library = results["dds-files"][-1]
    # Write peaks: baseline ~210K, DDS files ~290K.
    assert 170e3 < baseline.achieved_iops < 250e3
    assert 250e3 < library.achieved_iops < 330e3
    # At ~200K write IOPS the library saves a meaningful number of cores.
    base_200 = results["baseline"][1]
    lib_200 = results["dds-files"][1]
    assert base_200.host_cores - lib_200.host_cores > 1.5
