"""Figure 5: FASTER YCSB-RMW throughput on the host vs. on the DPU.

Paper: FASTER runs up to 4.5x slower on the BF-2 than on the host and
scales only to 8 threads (the Arm core count), while the host keeps
scaling — the reason DDS executes update workloads on the host.
"""

from _tables import emit

from repro.bench import run_rmw_scaling

THREADS = (1, 2, 4, 8, 16, 32, 64)


def run_figure():
    host = {
        t: run_rmw_scaling("host", t, ops_per_thread=1200) for t in THREADS
    }
    dpu = {
        t: run_rmw_scaling("dpu", t, ops_per_thread=1200) for t in THREADS
    }
    rows = [
        (
            t,
            f"{host[t].throughput / 1e6:.2f}M",
            f"{dpu[t].throughput / 1e6:.2f}M",
            f"{host[t].throughput / dpu[t].throughput:.1f}x",
        )
        for t in THREADS
    ]
    emit(
        "fig05",
        "FASTER RMW throughput: host vs DPU",
        ("threads", "host op/s", "DPU op/s", "host/DPU"),
        rows,
    )
    return host, dpu


def test_fig05_faster_rmw(benchmark):
    host, dpu = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    # Up to ~4.5x slower on the DPU at matched thread counts (paper).
    for threads in (1, 2, 4, 8):
        ratio = host[threads].throughput / dpu[threads].throughput
        assert 3.0 < ratio < 6.0, threads
    # The DPU stops scaling at its 8 cores...
    assert dpu[16].throughput < 1.1 * dpu[8].throughput
    assert dpu[64].throughput < 1.1 * dpu[8].throughput
    # ...while the host keeps scaling well past 8 threads.
    assert host[32].throughput > 3.0 * host[8].throughput
