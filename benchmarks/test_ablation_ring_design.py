"""Ablations on the DDS ring design (§4.1) — beyond the paper's figures.

Two design choices DESIGN.md calls out:

* **Maximum allowable progress (M)** — the batching hyperparameter.
  Small M bounds how long a message can sit in a batch (latency) but
  costs amortization (throughput); large M is the reverse.  The paper
  exposes M but never sweeps it.
* **Pointer layout** — Figure 7 places the progress pointer immediately
  before the tail so the consumer's ``progress == tail`` check needs a
  single DMA read.  The rejected layout (tail first) needs two
  dependent DMA reads per poll cycle.
"""

from _tables import emit, us

from repro.core import RingTransferModel
from repro.sim import Environment
from repro.structures import ProgressRing

M_VALUES = (512, 1024, 4096)
PRODUCERS = 16


def run_max_progress():
    results = {}
    rows = []
    for m in M_VALUES:
        model = RingTransferModel(Environment(), "progress", PRODUCERS)
        model.ring = ProgressRing(1 << 12, max_progress=m)
        outcome = model.run(messages_per_producer=1200)
        results[m] = outcome
        rows.append(
            (m, f"{outcome.rate / 1e6:.2f}M", us(outcome.median_latency))
        )
    emit(
        "ablation_max_progress",
        "max allowable progress (M): batching throughput vs latency",
        ("M bytes", "msg/s", "median latency"),
        rows,
    )
    return results


def run_pointer_layout():
    """Fetch-cycle cost of the two pointer layouts, measured on the
    real :class:`DmaRingChannel`.

    With progress-before-tail, one 64-byte DMA read covers both
    pointers; with tail-before-progress the consumer issues two
    dependent reads per cycle.
    """
    from repro.core import DmaRingChannel
    from repro.hardware import DmaEngine

    rows = []
    results = {}
    for batch_bytes in (256, 1024, 4096):
        times = {}
        for layout in ("progress-first", "tail-first"):
            env = Environment()
            channel = DmaRingChannel(
                env, DmaEngine(env), pointer_layout=layout
            )
            message = bytes(8)
            count = max(1, batch_bytes // 12)
            for _ in range(count):
                assert channel.try_insert(message)

            def cycle():
                batch = yield from channel.fetch_batch()
                return batch

            proc = env.process(cycle())
            env.run(until=proc)
            assert len(proc.value) == count
            times[layout] = env.now
        good, bad = times["progress-first"], times["tail-first"]
        messages = max(1, batch_bytes // 12)
        results[batch_bytes] = (messages / good, messages / bad)
        rows.append(
            (
                batch_bytes,
                us(good),
                us(bad),
                f"+{(bad / good - 1) * 100:.0f}%",
            )
        )
    emit(
        "ablation_pointer_layout",
        "fetch-cycle cost: progress-before-tail vs tail-before-progress",
        ("batch bytes", "P-before-T", "T-before-P", "cycle overhead"),
        rows,
    )
    return results


def test_ablation_max_progress(benchmark):
    results = benchmark.pedantic(run_max_progress, rounds=1, iterations=1)
    small, large = results[M_VALUES[0]], results[M_VALUES[-1]]
    # Larger M buys throughput at the cost of batching latency.
    assert large.rate > small.rate
    assert large.median_latency > small.median_latency


def test_ablation_pointer_layout(benchmark):
    results = benchmark.pedantic(run_pointer_layout, rounds=1, iterations=1)
    for batch_bytes, (good_rate, bad_rate) in results.items():
        assert good_rate > bad_rate, batch_bytes
    # The extra DMA op hurts most when batches are small.
    overhead = {
        b: (good / bad - 1) for b, (good, bad) in results.items()
    }
    assert overhead[256] > overhead[4096]
