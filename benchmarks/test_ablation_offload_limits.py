"""Ablations on offload-engine sizing (§6.2) — beyond the paper's figures.

* **Context-ring capacity** — Figure 13 lines 5-7: when the ring is
  full, requests fall back to the host.  Sweeping the ring size shows
  the capacity at which the DPU stops shedding load at a given depth.
* **Cache-table chaining** — §6.1 chains items in a bucket so inserts
  survive displacement failures.  With aggressive kick limits, chaining
  absorbs what would otherwise be insert failures.
"""

from _tables import cores, emit, kops

from repro.bench import build_cluster
from repro.core import ClientConfig, WorkloadClient
from repro.core.server import DdsOffloadServer
from repro.hardware import NetworkLink
from repro.sim import Environment, SeededRng
from repro.storage import DdsFileSystem, RamDisk, SpdkBdev
from repro.structures import CuckooCacheTable

SLOT_COUNTS = (32, 128, 1024)


def measure_fallback(context_slots: int):
    env = Environment()
    fs = DdsFileSystem(env, SpdkBdev(env, RamDisk(96 << 20)))
    fs.create_directory("bench")
    fid = fs.create_file("bench", "db")
    fs.preallocate(fid, 64 << 20)
    server = DdsOffloadServer(
        env, NetworkLink(env), fs, context_slots=context_slots
    )
    config = ClientConfig(
        offered_iops=700e3,
        total_requests=6000,
        file_size=64 << 20,
        max_outstanding=96,
    )
    client = WorkloadClient(env, server, fid, config)
    result = client.run()
    director = server.director
    total = director.requests_offloaded + director.requests_to_host
    fallback = director.requests_to_host / total if total else 0.0
    return result, server, fallback


def run_context_ring():
    results = {}
    rows = []
    for slots in SLOT_COUNTS:
        result, server, fallback = measure_fallback(slots)
        results[slots] = (result, server, fallback)
        rows.append(
            (
                slots,
                kops(result.achieved_iops),
                f"{fallback * 100:.1f}%",
                cores(server.host_cores(result.elapsed)),
            )
        )
    emit(
        "ablation_context_ring",
        "context-ring capacity vs host fallback at 700K offered",
        ("slots", "IOPS", "host fallback", "host cores"),
        rows,
    )
    return results


def run_chaining():
    rng = SeededRng(9)
    rows = []
    tables = {}
    for max_kicks in (1, 4, 32):
        table = CuckooCacheTable(4000, slots_per_bucket=2,
                                 max_kicks=max_kicks)
        for _ in range(4000):
            assert table.insert(rng.randrange(1 << 40), "item")
        tables[max_kicks] = table
        rows.append(
            (
                max_kicks,
                table.stats.displacements,
                table.stats.chained_inserts,
                len(table),
            )
        )
    emit(
        "ablation_cache_chaining",
        "cuckoo kicks vs chaining at 100% load factor",
        ("max kicks", "displacements", "chained inserts", "items"),
        rows,
    )
    return tables


def test_ablation_context_ring(benchmark):
    results = benchmark.pedantic(run_context_ring, rounds=1, iterations=1)
    fallbacks = {slots: fb for slots, (_r, _s, fb) in results.items()}
    # A small ring sheds a large fraction to the host; a big ring none.
    assert fallbacks[32] > 0.2
    assert fallbacks[1024] < 0.01
    assert fallbacks[32] > fallbacks[128] > fallbacks[1024] - 1e-9
    # Host CPU tracks the fallback rate.
    host_cores = {
        slots: s.host_cores(r.elapsed)
        for slots, (r, s, _f) in results.items()
    }
    assert host_cores[32] > host_cores[1024]


def test_ablation_cache_chaining(benchmark):
    tables = benchmark.pedantic(run_chaining, rounds=1, iterations=1)
    # Every insert succeeded at 100% load regardless of the kick budget —
    # chaining absorbs displacement failures (§6.1).
    for table in tables.values():
        assert len(table) == 4000
        assert table.stats.rejected_full == 0
    # Tight kick budgets chain more; generous budgets displace more.
    assert (
        tables[1].stats.chained_inserts > tables[32].stats.chained_inserts
    )
    assert (
        tables[32].stats.displacements >= tables[1].stats.displacements
    )
