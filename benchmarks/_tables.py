"""Shared reporting helpers for the per-figure benchmarks.

Each benchmark regenerates one figure of the paper: it prints the same
rows/series the paper plots and also writes them to
``benchmarks/results/<figure>.txt`` so the output survives pytest's
capture.  Absolute numbers come from the calibrated simulator; the
assertions in each benchmark check the *shape* the paper reports (who
wins, by what factor, where crossovers fall) — see EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(figure: str, title: str, header: Sequence[str],
         rows: Iterable[Sequence]) -> str:
    """Format, print, and persist one figure's table."""
    lines: List[str] = [f"=== {figure}: {title} ==="]
    widths = [max(len(str(h)), 12) for h in header]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    table = "\n".join(lines)
    print("\n" + table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{figure}.txt")
    with open(path, "w") as handle:
        handle.write(table + "\n")
    return table


def kops(value: float) -> str:
    """Format ops/s as thousands."""
    return f"{value / 1e3:.1f}K"


def us(value: float) -> str:
    """Format seconds as microseconds."""
    return f"{value * 1e6:.0f}us"


def ms(value: float) -> str:
    """Format seconds as milliseconds."""
    return f"{value * 1e3:.2f}ms"


def cores(value: float) -> str:
    return f"{value:.2f}"
