"""Figure 24: throughput vs. latency of serving pages (§9.1).

Paper: the Hyperscale-like page server incurs 4.4 ms p99 to reach 90 K
GetPage@LSN IOPS through its host stack, while with DDS offloading
160 K IOPS costs only 1.3 ms — more pages at several times lower tail
latency, with the host CPU of Figure 2 eliminated.
"""

from _tables import cores, emit, kops, ms

from repro.apps import run_pageserver_experiment

POINTS = {
    "baseline": [(60e3, 64), (110e3, 128), (215e3, 800)],
    "dds": [(100e3, 64), (160e3, 128), (240e3, 256)],
}


def run_figure():
    results = {}
    rows = []
    for kind, series in POINTS.items():
        measured = [
            run_pageserver_experiment(
                kind,
                offered,
                total_requests=5000 if window < 600 else 12_000,
                max_outstanding=window,
            )
            for offered, window in series
        ]
        results[kind] = measured
        for result in measured:
            rows.append(
                (
                    kind,
                    kops(result.achieved_pages),
                    ms(result.p50),
                    ms(result.p99),
                    cores(result.host_cores),
                )
            )
    emit(
        "fig24",
        "page server: GetPage@LSN throughput vs latency",
        ("deployment", "pages/s", "p50", "p99", "host cores"),
        rows,
    )
    return results


def test_fig24_pageserver(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    baseline_peak = results["baseline"][-1]
    dds_160 = results["dds"][1]
    dds_peak = results["dds"][-1]
    # The baseline saturates around ~160K pages/s with a multi-ms tail.
    assert baseline_peak.achieved_pages < 180e3
    assert baseline_peak.p99 > 2e-3
    # DDS reaches 160K pages/s at far lower latency (paper: 1.3ms vs
    # 4.4ms; here queueing windows are smaller so both scale down).
    assert dds_160.achieved_pages > 150e3
    assert dds_160.p99 < baseline_peak.p99 / 3
    # DDS keeps scaling past the baseline's peak with ~zero host CPU.
    assert dds_peak.achieved_pages > 1.3 * baseline_peak.achieved_pages
    assert dds_peak.host_cores < 0.5
    assert dds_peak.offloaded_fraction > 0.9