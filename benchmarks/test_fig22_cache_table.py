"""Figure 22: cache-table performance on the BF-2 (§8.5).

Paper: the cuckoo cache table sustains ~1.2 M insertions/s with a single
writer and ~15.7 M lookups/s with eight reader threads, across cache
item sizes — satisfying Table 2's requirements (file service inserts at
device rate; traffic director looks up at packet rate).

The *structure* is the real :class:`CuckooCacheTable` (probe and
displacement counts come from actual execution); per-operation Arm-core
costs are charged on simulated DPU cores.
"""

from _tables import emit

from repro.hardware import DPU_CPU, CpuCore, MICROSECOND
from repro.sim import Environment, SeededRng
from repro.structures import CuckooCacheTable

ITEM_SIZES = (16, 64, 256)
INSERTS = 5_000
LOOKUPS_PER_READER = 3_000

#: Host-core-seconds per operation on the Arm cores, calibrated to the
#: paper's 1.2 M insert/s and 15.7 M lookup/s (8 readers) anchors.
INSERT_COST = 0.28 * MICROSECOND
DISPLACE_COST = 0.05 * MICROSECOND
LOOKUP_COST = 0.175 * MICROSECOND
PER_BYTE_COST = 0.10e-9  # copying the cache item's value


def measure_inserts(item_bytes: int) -> float:
    env = Environment()
    core = CpuCore(env, speed=DPU_CPU.speed)
    table = CuckooCacheTable(INSERTS)
    rng = SeededRng(5)
    payload = bytes(item_bytes)

    def writer():
        for i in range(INSERTS):
            before = table.stats.displacements
            table.insert(rng.randrange(1 << 48), payload)
            kicks = table.stats.displacements - before
            yield from core.execute(
                INSERT_COST
                + kicks * DISPLACE_COST
                + item_bytes * PER_BYTE_COST
            )

    done = env.process(writer())
    env.run(until=done)
    return INSERTS / env.now


def measure_lookups(item_bytes: int, readers: int) -> float:
    env = Environment()
    table = CuckooCacheTable(INSERTS)
    rng = SeededRng(6)
    keys = [rng.randrange(1 << 48) for _ in range(INSERTS)]
    payload = bytes(item_bytes)
    for key in keys:
        table.insert(key, payload)

    def reader(seed):
        local = SeededRng(seed)
        for _ in range(LOOKUPS_PER_READER):
            table.lookup(local.choice(keys))
            yield from core_for[seed % readers].execute(
                LOOKUP_COST + item_bytes * PER_BYTE_COST
            )

    core_for = [CpuCore(env, speed=DPU_CPU.speed) for _ in range(readers)]
    workers = [env.process(reader(i)) for i in range(readers)]
    done = env.all_of(workers)
    env.run(until=done)
    return readers * LOOKUPS_PER_READER / env.now


def run_figure():
    rows = []
    inserts = {}
    lookups = {}
    for item_bytes in ITEM_SIZES:
        inserts[item_bytes] = measure_inserts(item_bytes)
        lookups[item_bytes] = measure_lookups(item_bytes, readers=8)
        single = measure_lookups(item_bytes, readers=1)
        rows.append(
            (
                item_bytes,
                f"{inserts[item_bytes] / 1e6:.2f}M",
                f"{single / 1e6:.2f}M",
                f"{lookups[item_bytes] / 1e6:.2f}M",
            )
        )
    emit(
        "fig22",
        "cache table: insert (1 writer) and lookup (1/8 readers) rates",
        ("item bytes", "insert/s", "lookup/s x1", "lookup/s x8"),
        rows,
    )
    return inserts, lookups


def test_fig22_cache_table(benchmark):
    inserts, lookups = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    for item_bytes in ITEM_SIZES:
        # ~1.2M inserts/s single-writer (Table 2: millions of op/s).
        assert 0.8e6 < inserts[item_bytes] < 2.0e6, item_bytes
        # ~15.7M lookups/s with 8 readers (Table 2: 10s of millions).
        assert 10e6 < lookups[item_bytes] < 22e6, item_bytes
