"""Figure 25: disaggregated FASTER CPU cost under YCSB (§9.2).

Paper: the baseline FASTER service (sockets + OS-file IDevice) burns 20
server cores to reach 340 K uniform-read op/s; with DDS the same store
serves 970 K op/s with effectively zero host CPU investment.
"""

from _tables import cores, emit, kops

from repro.apps import run_kv_experiment

BASELINE_LOADS = (150e3, 300e3, 450e3)
DDS_LOADS = (300e3, 600e3, 1000e3)


def run_figure():
    results = {"baseline": [], "dds": []}
    rows = []
    for offered in BASELINE_LOADS:
        result = run_kv_experiment(
            "baseline", offered, total_requests=5000, batch=1
        )
        results["baseline"].append(result)
        rows.append(
            (
                "baseline",
                kops(result.achieved_ops),
                cores(result.host_cores),
                cores(result.dpu_cores),
            )
        )
    for offered in DDS_LOADS:
        result = run_kv_experiment("dds", offered, total_requests=5000)
        results["dds"].append(result)
        rows.append(
            (
                "dds",
                kops(result.achieved_ops),
                cores(result.host_cores),
                cores(result.dpu_cores),
            )
        )
    emit(
        "fig25",
        "disaggregated FASTER: host CPU vs YCSB read throughput",
        ("deployment", "op/s", "host cores", "dpu cores"),
        rows,
    )
    return results


def test_fig25_faster_cpu(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    baseline_peak = results["baseline"][-1]
    dds_peak = results["dds"][-1]
    # Baseline: hundreds of K op/s for tens of cores (paper: 340K @ 20).
    assert baseline_peak.achieved_ops < 500e3
    assert baseline_peak.host_cores > 12
    # DDS: ~1M op/s (paper: 970K) at near-zero host CPU.
    assert dds_peak.achieved_ops > 900e3
    assert dds_peak.host_cores < 1.0
    assert dds_peak.offloaded_fraction > 0.9
    # Host CPU grows with load for the baseline, stays flat for DDS.
    baseline_cores = [r.host_cores for r in results["baseline"]]
    assert baseline_cores == sorted(baseline_cores)
    assert all(r.host_cores < 1.0 for r in results["dds"])
