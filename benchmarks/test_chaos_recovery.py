"""Chaos recovery benchmark: throughput dip and time-to-recover.

Kills one shard of a four-shard deployment mid-workload and measures
what the paper's §4.3 crash-consistency story costs end-to-end: the
acknowledged-request throughput in 1 ms buckets (the dip while the
shard is dark, the climb back after raw-disk recovery), the metadata
recovery time itself, and the durability audit over the final disk
state.  Run with ``pytest -m chaos benchmarks/test_chaos_recovery.py``.
"""

import hashlib
from types import SimpleNamespace

import pytest
from _tables import emit, kops, us

from repro.core.client import ClientConfig, DdsClient
from repro.core.messages import IoRequest, OpCode
from repro.faults import (
    DurabilityChecker,
    FaultInjector,
    FaultPlan,
    ReplicationInvariantChecker,
    ShardKill,
)
from repro.hardware.nic import NetworkLink
from repro.sim import Environment
from repro.storage.disk import RamDisk, SpdkBdev
from repro.storage.filesystem import DdsFileSystem
from repro.topology.sharding import ShardedOffloadServer

pytestmark = pytest.mark.chaos

IO_SIZE = 1024
FILES = 16
FILE_BYTES = 1 << 20
SLOTS = FILE_BYTES // IO_SIZE
TOTAL_REQUESTS = 4800
BUCKET = 1e-3  # throughput histogram resolution

KILL_AT = 2e-3
DOWN_FOR = 3e-3


class AckTimeline:
    """Client observer: durability audit plus an ack timestamp stream."""

    def __init__(self, env, checker):
        self.env = env
        self.checker = checker
        self.acks = []  # (sim time, file id)

    def on_issue(self, request):
        self.checker.on_issue(request)

    def on_ack(self, request, response):
        self.checker.on_ack(request, response)
        if response.ok:
            self.acks.append((self.env.now, request.file_id))

    def on_give_up(self, request):
        self.checker.on_give_up(request)


def make_workload(file_ids):
    """Every 4th request writes a request-id-unique (file, offset)."""

    def factory(request_id, rng):
        if request_id % 4 == 0:
            ordinal = request_id // 4
            file_id = file_ids[ordinal % FILES]
            offset = ((ordinal // FILES) % SLOTS) * IO_SIZE
            payload = request_id.to_bytes(8, "little") * (IO_SIZE // 8)
            return IoRequest(
                OpCode.WRITE, request_id, file_id, offset, IO_SIZE, payload
            )
        file_id = file_ids[rng.randrange(FILES)]
        offset = rng.randrange(SLOTS) * IO_SIZE
        return IoRequest(OpCode.READ, request_id, file_id, offset, IO_SIZE)

    return factory


def state_digest(server, file_ids):
    digest = hashlib.blake2b(digest_size=16)
    for file_id in file_ids:
        owner = server.shard_map.owner(file_id)
        digest.update(server.filesystems[owner].read_sync(file_id, 0, FILE_BYTES))
    return digest.hexdigest()


def run_chaos_bench(seed=13):
    env = Environment()
    disk = RamDisk(FILES * FILE_BYTES + (64 << 20))
    fs = DdsFileSystem(env, SpdkBdev(env, disk))
    fs.create_directory("chaos")
    file_ids = []
    for index in range(FILES):
        file_id = fs.create_file("chaos", f"file-{index}")
        fs.preallocate(file_id, FILE_BYTES)
        file_ids.append(file_id)
    server = ShardedOffloadServer(env, NetworkLink(env), fs, shard_count=4)
    dedup = server.enable_resilience()
    plan = FaultPlan(
        seed=seed,
        events=(ShardKill(at=KILL_AT, down_for=DOWN_FOR, shard=2),),
    )
    injector = FaultInjector(env, server, plan).arm()
    checker = DurabilityChecker()
    timeline = AckTimeline(env, checker)
    config = ClientConfig(
        offered_iops=400e3,
        total_requests=TOTAL_REQUESTS,
        io_size=IO_SIZE,
        batch=4,
        connections=16,
        max_outstanding=512,
        file_size=FILE_BYTES,
        seed=seed,
    )
    client = DdsClient(
        env,
        server,
        file_ids[0],
        config,
        request_factory=make_workload(file_ids),
        observer=timeline,
    )
    result = client.run()
    env.run(until=env.timeout(1e-3))  # drain recovery stragglers
    dead_files = frozenset(
        file_id for file_id in file_ids if server.shard_map.owner(file_id) == 2
    )
    recover_record = next(
        record
        for record in injector.fault_log
        if record.kind == "shard-recover"
    )
    recovery_us = float(
        recover_record.detail.split("recovery_time=")[1].rstrip("us")
    )
    return SimpleNamespace(
        server=server,
        result=result,
        injector=injector,
        acks=timeline.acks,
        dead_files=dead_files,
        recover_time=recover_record.time,
        recovery_us=recovery_us,
        report=checker.check(server, dedup=dedup),
        digest=state_digest(server, file_ids),
    )


def summarize(run):
    """Total and dead-shard ack rates around the kill window."""
    buckets, dead_buckets = {}, {}
    for stamp, file_id in run.acks:
        bucket = int(stamp / BUCKET)
        buckets[bucket] = buckets.get(bucket, 0) + 1
        if file_id in run.dead_files:
            dead_buckets[bucket] = dead_buckets.get(bucket, 0) + 1
    last = max(buckets)
    steady_ids = [b for b in buckets if (b + 1) * BUCKET <= KILL_AT]
    after_ids = [b for b in buckets if b * BUCKET >= run.recover_time and b < last]

    def rate(table, ids):
        return (
            sum(table.get(b, 0) for b in ids) / (len(ids) * BUCKET)
            if ids
            else 0.0
        )

    # Count by exact timestamp, not bucket, at the kill boundaries: the
    # first half-millisecond of the window still drains responses that
    # were on the wire when the shard died.
    dark_dead = sum(
        1
        for stamp, file_id in run.acks
        if file_id in run.dead_files
        and KILL_AT + 5e-4 < stamp < KILL_AT + DOWN_FOR
    )
    recovered_dead = sum(
        1
        for stamp, file_id in run.acks
        if file_id in run.dead_files and stamp >= run.recover_time
    )
    return SimpleNamespace(
        buckets=buckets,
        dead_buckets=dead_buckets,
        steady=rate(buckets, steady_ids),
        dead_steady=rate(dead_buckets, steady_ids),
        recovered=rate(buckets, after_ids),
        after_ids=after_ids,
        dark_dead=dark_dead,
        recovered_dead=recovered_dead,
    )


@pytest.fixture(scope="module")
def runs():
    return run_chaos_bench(seed=13), run_chaos_bench(seed=13)


@pytest.fixture(scope="module")
def table(runs):
    run = runs[0]
    stats = summarize(run)
    rows = [
        (
            f"{bucket * BUCKET * 1e3:.0f}-{(bucket + 1) * BUCKET * 1e3:.0f}ms",
            stats.buckets.get(bucket, 0),
            stats.dead_buckets.get(bucket, 0),
            kops(stats.buckets.get(bucket, 0) / BUCKET),
        )
        for bucket in range(max(stats.buckets) + 1)
    ]
    rows.append(("recovery", "-", "-", us(run.recovery_us / 1e6)))
    emit(
        "chaos_recovery",
        "acked throughput around a shard kill (kill 2ms, restart 5ms)",
        ("window", "acks", "dead-shard", "rate"),
        rows,
    )
    return stats


class TestChaosRecoveryBench:
    def test_every_request_settles_durably(self, runs):
        run = runs[0]
        assert run.result.failed_requests == 0
        assert len(run.result.latencies) == TOTAL_REQUESTS
        run.report.assert_ok()
        assert run.report.verified_writes > 0

    def test_dead_shard_goes_dark_during_the_kill_window(self, runs, table):
        run = runs[0]
        assert run.dead_files, "shard 2 owns no files; reseed the layout"
        assert table.dead_steady > 0  # it was serving before the kill
        # A dead DPU cannot transmit: past the in-flight drain, nothing
        # it owns is acknowledged until recovery.
        assert table.dark_dead <= 2

    def test_dead_shard_serves_again_after_recovery(self, runs, table):
        run = runs[0]
        # The retry backlog for the dead shard's files settles once the
        # filesystem is recovered from raw disk.
        assert table.recovered_dead > len(run.dead_files)

    def test_throughput_recovers_after_restart(self, runs, table):
        assert table.after_ids, "run ended before the shard recovered"
        assert table.recovered >= 0.8 * table.steady

    def test_metadata_recovery_is_fast(self, runs):
        run = runs[0]
        # §4.3: recovery replays one metadata segment from raw disk —
        # it must be far quicker than the outage it repairs.
        assert run.recover_time >= KILL_AT + DOWN_FOR
        assert run.recovery_us / 1e6 < DOWN_FOR

    def test_same_seed_reproduces_the_run(self, runs):
        first, second = runs
        assert first.injector.fault_log_lines() == (
            second.injector.fault_log_lines()
        )
        assert first.digest == second.digest
        assert first.acks == second.acks


# ----------------------------------------------------------------------
# replicated shard groups: zero-dark-window failover
# ----------------------------------------------------------------------
def run_replicated_bench(seed=13):
    """Same kill, but with synchronous primary→backup replication on.

    The backup of shard 2's replica group serves its keyspace from the
    crash instant onward, so — unlike :func:`run_chaos_bench` — the
    dead keyspace keeps acknowledging through the whole outage.  The
    Derecho-style runtime checker audits every protocol step while the
    chaos runs.
    """
    env = Environment()
    disk = RamDisk(FILES * FILE_BYTES + (64 << 20))
    fs = DdsFileSystem(env, SpdkBdev(env, disk))
    fs.create_directory("chaos")
    file_ids = []
    for index in range(FILES):
        file_id = fs.create_file("chaos", f"file-{index}")
        fs.preallocate(file_id, FILE_BYTES)
        file_ids.append(file_id)
    server = ShardedOffloadServer(env, NetworkLink(env), fs, shard_count=4)
    dedup = server.enable_resilience()
    checker = ReplicationInvariantChecker(env)
    replicator = server.enable_replication(checker)
    plan = FaultPlan(
        seed=seed,
        events=(ShardKill(at=KILL_AT, down_for=DOWN_FOR, shard=2),),
    )
    injector = FaultInjector(env, server, plan).arm()
    timeline = AckTimeline(env, checker)
    config = ClientConfig(
        offered_iops=400e3,
        total_requests=TOTAL_REQUESTS,
        io_size=IO_SIZE,
        batch=4,
        connections=16,
        max_outstanding=512,
        file_size=FILE_BYTES,
        seed=seed,
    )
    client = DdsClient(
        env,
        server,
        file_ids[0],
        config,
        request_factory=make_workload(file_ids),
        observer=timeline,
    )
    result = client.run()
    # Bounded drain: anti-entropy catch-up is device-timed (it replays
    # every entry the dead member missed), and the resilience layer's
    # reclaim loop keeps the event queue non-empty forever — loop until
    # the injector logs the recovery instead of draining bare.
    for _ in range(120):
        if any(r.kind == "shard-recover" for r in injector.fault_log):
            break
        env.run(until=env.timeout(1e-3))
    env.run(until=env.timeout(1e-3))
    dead_files = frozenset(
        file_id for file_id in file_ids if server.shard_map.owner(file_id) == 2
    )
    recover_record = next(
        record
        for record in injector.fault_log
        if record.kind == "shard-recover"
    )
    recovery_us = float(
        recover_record.detail.split("recovery_time=")[1].rstrip("us")
    )
    return SimpleNamespace(
        server=server,
        replicator=replicator,
        checker=checker,
        result=result,
        injector=injector,
        acks=timeline.acks,
        dead_files=dead_files,
        recover_time=recover_record.time,
        recovery_us=recovery_us,
        report=checker.check(server, dedup=dedup),
        digest=state_digest(server, file_ids),
    )


def outage_buckets(run, window=5e-4):
    """Dead-keyspace acks per ``window`` slice of the kill window."""
    buckets = [0] * int(DOWN_FOR / window)
    for stamp, file_id in run.acks:
        if file_id in run.dead_files and KILL_AT <= stamp < KILL_AT + DOWN_FOR:
            buckets[int((stamp - KILL_AT) / window)] += 1
    return buckets


@pytest.fixture(scope="module")
def replicated_run():
    return run_replicated_bench(seed=13)


@pytest.fixture(scope="module")
def replicated_table(replicated_run):
    run = replicated_run
    stats = summarize(run)
    rows = [
        (
            f"{bucket * BUCKET * 1e3:.0f}-{(bucket + 1) * BUCKET * 1e3:.0f}ms",
            stats.buckets.get(bucket, 0),
            stats.dead_buckets.get(bucket, 0),
            kops(stats.buckets.get(bucket, 0) / BUCKET),
        )
        for bucket in range(max(stats.buckets) + 1)
    ]
    replicator = run.replicator
    rows.append(("handoffs", replicator.handoffs, "-", "-"))
    rows.append(("mirrored", replicator.mirrored_writes, "-", "-"))
    rows.append(("solo-acks", replicator.solo_acks, "-", "-"))
    rows.append(("catch-up", replicator.catchup_replays, "-", "-"))
    rows.append(("ingress-drops", run.server.steering.dropped, "-", "-"))
    rows.append(("violations", len(run.checker.violations), "-", "-"))
    rows.append(
        ("recovery+catchup", "-", "-", us(run.recovery_us / 1e6))
    )
    emit(
        "chaos_replication",
        "replicated failover: acked throughput around a shard kill",
        ("window", "acks", "dead-shard", "rate"),
        rows,
    )
    return stats


class TestReplicatedChaosBench:
    def test_zero_dark_window(self, replicated_run, replicated_table):
        """Every outage slice keeps acking the dead shard's keyspace."""
        assert replicated_run.dead_files
        buckets = outage_buckets(replicated_run)
        assert all(count > 0 for count in buckets), buckets

    def test_runtime_checker_is_clean_and_saw_the_protocol(
        self, replicated_run
    ):
        run = replicated_run
        assert run.checker.violations == []
        run.report.assert_ok()
        assert run.result.failed_requests == 0
        assert run.checker.appends_seen > 0
        assert run.checker.commits_seen == run.checker.appends_seen
        assert run.checker.handoffs_seen == 2
        assert run.checker.duplicate_acks == 0

    def test_failover_and_catchup_counters(self, replicated_run):
        replicator = replicated_run.replicator
        assert replicator.handoffs == 2  # kill handoff + rejoin handback
        assert replicator.mirrored_writes > 0
        assert replicator.solo_acks > 0
        assert replicator.catchup_replays > 0
        assert replicator.mirror_failures == 0
        assert replicated_run.server.steering.dropped == 0

    def test_throughput_holds_through_the_outage(
        self, replicated_run, replicated_table
    ):
        # The headline difference from the unreplicated bench: overall
        # acked throughput barely dips while the shard is dark, because
        # the backup absorbs the dead keyspace immediately.
        stats = replicated_table
        outage_ids = [
            bucket
            for bucket in stats.buckets
            if bucket * BUCKET >= KILL_AT
            and (bucket + 1) * BUCKET <= KILL_AT + DOWN_FOR
        ]
        assert outage_ids
        outage_rate = sum(
            stats.buckets.get(bucket, 0) for bucket in outage_ids
        ) / (len(outage_ids) * BUCKET)
        assert outage_rate >= 0.8 * stats.steady

    def test_same_seed_reproduces_the_replicated_run(self, replicated_run):
        again = run_replicated_bench(seed=13)
        assert replicated_run.injector.fault_log_lines() == (
            again.injector.fault_log_lines()
        )
        assert replicated_run.digest == again.digest
        assert replicated_run.acks == again.acks
