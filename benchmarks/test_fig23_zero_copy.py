"""Figure 23: impact of zero-copy on offloaded read performance (§8.5).

Paper: without the offload engine's zero-copy discipline (pre-allocated
DMA buffers shared between the file service and the packet path,
Figure 12), peak read throughput falls from 730 K to 520 K IOPS and
latency at peak rises from ~170 us to ~250 us.
"""

from _tables import emit, kops, us

from repro.bench import run_io_experiment

LOADS = (400e3, 600e3, 800e3)


def run_figure():
    results = {}
    rows = []
    for kind, label in (
        ("dds-offload", "zero-copy"),
        ("dds-offload-copy", "with-copies"),
    ):
        series = [
            run_io_experiment(kind, offered, total_requests=8000,
                              max_outstanding=140)
            for offered in LOADS
        ]
        results[label] = series
        for result in series:
            rows.append(
                (
                    label,
                    kops(result.achieved_iops),
                    us(result.p50),
                    us(result.p99),
                )
            )
    emit(
        "fig23",
        "offload engine: zero-copy vs copies (reads)",
        ("variant", "IOPS", "p50", "p99"),
        rows,
    )
    return results


def test_fig23_zero_copy(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    zero_peak = results["zero-copy"][-1]
    copy_peak = results["with-copies"][-1]
    # Peak throughput improves substantially (paper: 520K -> 730K, +40%).
    assert zero_peak.achieved_iops > 1.2 * copy_peak.achieved_iops
    assert zero_peak.achieved_iops > 650e3
    assert copy_peak.achieved_iops < 650e3
    # At a matched mid load, zero-copy also has lower latency.
    zero_mid = results["zero-copy"][1]
    copy_mid = results["with-copies"][1]
    assert zero_mid.p50 < copy_mid.p50
