"""Figure 17: DMA-based ring buffer performance (§8.5).

Paper: host threads push 8-byte messages to the DPU.  The FaRM-style
flag ring peaks at only 64 K msg/s (no batching, PCIe polling overhead,
an extra release write per message).  The lock-based ring batches well
at one producer (~22 M/s) but collapses to 1.4 M/s at 64 producers.
DDS's progress-pointer ring holds 6.5 M/s at 64 producers — ~10x the
FaRM design and ~4.5x the lock design — with the lowest latency
throughout.
"""

from _tables import emit, us

from repro.core import RingTransferModel
from repro.sim import Environment

PRODUCERS = (1, 4, 16, 64)
DESIGNS = ("progress", "lock", "farm")


def run_figure():
    results = {}
    rows = []
    for design in DESIGNS:
        for producers in PRODUCERS:
            messages = 1500 if design == "farm" else 20_000
            model = RingTransferModel(
                Environment(), design, producers
            )
            outcome = model.run(messages_per_producer=max(
                1, messages // producers
            ))
            results[(design, producers)] = outcome
            rows.append(
                (
                    design,
                    producers,
                    f"{outcome.rate / 1e6:.2f}M",
                    us(outcome.median_latency),
                )
            )
    emit(
        "fig17",
        "ring buffers: message rate and median latency vs producers",
        ("design", "producers", "msg/s", "median latency"),
        rows,
    )
    return results


def test_fig17_ring_buffer(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    progress64 = results[("progress", 64)]
    lock64 = results[("lock", 64)]
    farm64 = results[("farm", 64)]
    # FaRM-style: ~64K msg/s regardless of producers (paper's floor).
    for producers in PRODUCERS:
        assert results[("farm", producers)].rate < 150e3
    # Lock ring: fast at 1 producer, collapses under contention.
    lock1 = results[("lock", 1)]
    assert lock1.rate > 10e6
    assert lock64.rate < 0.2 * lock1.rate
    # DDS progress ring at 64 producers: ~6.5M, about 10x FaRM and
    # several times the lock ring (paper: 10x and 4.5x).
    assert 3e6 < progress64.rate < 12e6
    assert progress64.rate > 6 * farm64.rate
    assert progress64.rate > 2.5 * lock64.rate
    # Latency: the progress ring wins under high contention and is never
    # far off elsewhere (its deeper batches add a little ring residency
    # at mid contention — see EXPERIMENTS.md); FaRM is worst throughout.
    assert progress64.median_latency < lock64.median_latency
    for producers in PRODUCERS:
        p = results[("progress", producers)]
        lock = results[("lock", producers)]
        farm = results[("farm", producers)]
        assert p.median_latency < 2.0 * lock.median_latency
        assert p.median_latency < farm.median_latency
