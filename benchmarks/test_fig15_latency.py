"""Figure 15: achieved throughput vs. p50/p99 latency.

Paper (reads): at its 390 K peak the baseline's latency reaches ~11 ms;
replacing the OS filesystem with DDS files cuts latency ~6x; full DPU
offloading improves it by an order of magnitude (780 us at 730 K IOPS).
Writes: the baseline's tail blows up to ~48 ms at 210 K, while DDS files
holds ~3 ms at a *higher* 290 K IOPS.

Latency at saturation is queueing-dominated, so the client windows are
sized like the paper's load generator (deep outstanding queues at the
peak operating points).
"""

from _tables import emit, kops, us

from repro.bench import run_io_experiment

#: (offered IOPS, outstanding messages) pairs per solution — the deep
#: windows at the last points reproduce the paper's saturated tails.
READ_POINTS = {
    "baseline": [(200e3, 64, 8000), (350e3, 256, 8000), (460e3, 900, 22000)],
    "dds-files": [(300e3, 64, 8000), (500e3, 256, 8000), (640e3, 180, 12000)],
    "dds-offload": [
        (300e3, 64, 8000),
        (600e3, 128, 8000),
        (800e3, 140, 12000),
    ],
}
WRITE_POINTS = {
    "baseline": [(120e3, 64, 6000), (180e3, 256, 6000), (280e3, 900, 16000)],
    "dds-files": [(150e3, 64, 6000), (250e3, 128, 6000), (310e3, 180, 9000)],
}


def _run(points, read_fraction):
    results = {}
    rows = []
    for kind, series in points.items():
        measured = [
            run_io_experiment(
                kind,
                offered,
                total_requests=total,
                read_fraction=read_fraction,
                max_outstanding=window,
            )
            for offered, window, total in series
        ]
        results[kind] = measured
        for result in measured:
            rows.append(
                (
                    kind,
                    kops(result.achieved_iops),
                    us(result.p50),
                    us(result.p99),
                )
            )
    return results, rows


def run_reads():
    results, rows = _run(READ_POINTS, read_fraction=1.0)
    emit(
        "fig15a",
        "reads: throughput vs latency",
        ("solution", "IOPS", "p50", "p99"),
        rows,
    )
    return results


def run_writes():
    results, rows = _run(WRITE_POINTS, read_fraction=0.0)
    emit(
        "fig15b",
        "writes: throughput vs latency",
        ("solution", "IOPS", "p50", "p99"),
        rows,
    )
    return results


def test_fig15a_read_latency(benchmark):
    results = benchmark.pedantic(run_reads, rounds=1, iterations=1)
    baseline = results["baseline"][-1]
    library = results["dds-files"][-1]
    offload = results["dds-offload"][-1]
    # At saturation the baseline is in the milliseconds.
    assert baseline.p50 > 2e-3
    # DDS files: large latency cut at higher throughput (paper: ~6x).
    assert library.achieved_iops > baseline.achieved_iops
    assert library.p50 < baseline.p50 / 3
    # Offloading: ~order-of-magnitude lower than the baseline, with sub-
    # millisecond latency at >700K IOPS (paper: 780us at 730K).
    assert offload.achieved_iops > 650e3
    assert offload.p50 < 1e-3
    assert baseline.p50 / offload.p50 > 6
    # Within each solution, latency grows with load.
    for series in results.values():
        p50s = [r.p50 for r in series]
        assert p50s == sorted(p50s)


def test_fig15b_write_latency(benchmark):
    results = benchmark.pedantic(run_writes, rounds=1, iterations=1)
    baseline = results["baseline"][-1]
    library = results["dds-files"][-1]
    # The baseline write tail explodes at its ~210K peak...
    assert baseline.p99 > 5e-3
    # ...while DDS files achieves more IOPS at a far lower tail.
    assert library.achieved_iops > baseline.achieved_iops
    assert library.p99 < baseline.p99 / 3
