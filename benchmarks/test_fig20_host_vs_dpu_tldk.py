"""Figure 20: TLDK on the host vs. TLDK on the DPU, by message size.

Paper (isolating userspace networking from DPU placement): the host's
fat cores win for small messages, but once processing becomes
memory-intensive the DPU wins — it avoids the NIC-to-host round trip
and its NIC-adjacent memory is more efficient per byte [44, 63].
This motivates running the traffic director on the DPU for data-system
workloads (which move pages, not pings).
"""

from _tables import emit, us

from repro.bench import EchoBench
from repro.sim import Environment

SIZES = (64, 1024, 4096, 16384, 65536)


def run_figure():
    results = {}
    rows = []
    for size in SIZES:
        host = EchoBench(Environment()).measure("host-tldk", size)
        dpu = EchoBench(Environment()).measure("dpu-tldk", size)
        results[size] = (host, dpu)
        winner = "host" if host.server_latency < dpu.server_latency else "dpu"
        rows.append(
            (
                size,
                us(host.server_latency),
                us(dpu.server_latency),
                winner,
            )
        )
    emit(
        "fig20",
        "TLDK placement: host vs DPU server-side latency",
        ("msg bytes", "host TLDK", "DPU TLDK", "winner"),
        rows,
    )
    return results


def test_fig20_host_vs_dpu_tldk(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    small_host, small_dpu = results[64]
    large_host, large_dpu = results[65536]
    # Small messages: the host's fast cores win despite the PCIe hop.
    assert small_host.server_latency < small_dpu.server_latency
    # Large (memory-intensive) messages: the DPU wins.
    assert large_dpu.server_latency < large_host.server_latency
    # The crossover falls somewhere inside the measured range.
    winners = [
        "host" if host.server_latency < dpu.server_latency else "dpu"
        for host, dpu in results.values()
    ]
    assert winners[0] == "host" and winners[-1] == "dpu"
