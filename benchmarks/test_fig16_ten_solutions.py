"""Figure 16: detailed comparison of ten storage solutions (§8.4).

Paper: for random 1 KiB reads, (a) peak throughput, (b) total client +
server CPU at peak, and (c) p50/p99 latency at peak, across local
storage (Windows files ①, DDS files ②), SMB ③ / SMB Direct ④,
TCP + Windows files ⑤, TCP + DDS files ⑥, Redy + Windows files ⑦,
Redy + DDS files ⑧, DDS offloading with TCP ⑨ and with RDMA ⑩.

Headline shapes: disaggregation over the traditional stack degrades
everything (⑤ vs ①); SMB variants trail application-controlled
disaggregation badly (③④ vs ⑤-⑩); once OS overhead is gone the
disaggregated peak matches local storage (⑥-⑩ vs ②); Redy's speed
costs always-on polling cores; DDS(RDMA) approaches local DDS.
"""

from _tables import cores, emit, kops, us

from repro.bench import SOLUTIONS, find_peak

START = {
    "local-os": 250e3,
    "local-dds": 400e3,
    "smb": 100e3,
    "smb-direct": 120e3,
    "baseline": 250e3,
    "dds-files": 400e3,
    "redy-os": 250e3,
    "redy-dds": 400e3,
    "dds-offload": 400e3,
    "dds-offload-rdma": 400e3,
}


def run_figure():
    peaks = {}
    rows = []
    for kind in SOLUTIONS:
        peak = find_peak(
            kind,
            start_iops=START[kind],
            total_requests=6000,
            max_outstanding=160,
        )
        peaks[kind] = peak
        rows.append(
            (
                kind,
                kops(peak.achieved_iops),
                cores(peak.total_cores),
                cores(peak.dpu_cores),
                us(peak.p50),
                us(peak.p99),
            )
        )
    emit(
        "fig16",
        "ten solutions: peak IOPS, total CPU, latency at peak",
        ("solution", "peak IOPS", "cpu (cl+srv)", "dpu", "p50", "p99"),
        rows,
    )
    return peaks


def test_fig16_ten_solutions(benchmark):
    peaks = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    # (1) Traditional-stack disaggregation degrades peak throughput and
    # adds CPU + latency over local access (paper: 5 vs 1).
    assert peaks["baseline"].achieved_iops < peaks["local-os"].achieved_iops
    assert peaks["baseline"].p50 > peaks["local-os"].p50
    # (2) SMB variants are far below application-controlled solutions;
    # SMB Direct beats SMB thanks to RDMA.
    assert peaks["smb"].achieved_iops < peaks["smb-direct"].achieved_iops
    assert (
        peaks["smb-direct"].achieved_iops
        < 0.7 * peaks["baseline"].achieved_iops
    )
    # (3) With OS overhead gone, disaggregated peaks match local DDS
    # (paper: 6-10 vs 2, within ~15%).
    local = peaks["local-dds"].achieved_iops
    for kind in ("dds-files", "redy-dds", "dds-offload", "dds-offload-rdma"):
        assert peaks[kind].achieved_iops > 0.75 * local, kind
    # (4) Redy gets latency by burning polling cores on both machines.
    assert peaks["redy-os"].total_cores > peaks["baseline"].total_cores - 2
    assert peaks["redy-dds"].client_cores >= 1.0
    # (5) DDS offloading erases server host CPU; the RDMA port has the
    # lowest CPU of the disaggregated solutions and near-local latency.
    assert peaks["dds-offload"].host_cores < 0.05
    assert (
        peaks["dds-offload-rdma"].total_cores
        < peaks["dds-files"].total_cores
    )
    assert peaks["dds-offload-rdma"].p50 < 2.5 * peaks["local-dds"].p50
