"""Extensions (§10 related work, implemented): DPU cache and isolation.

* Xenic-style DPU-memory read caching in front of the offload engine:
  a small on-board cache absorbs skewed read traffic, lifting
  throughput past the SSD's ceiling.
* Gimbal-style multi-tenant fairness: a deficit-round-robin scheduler
  in the traffic director bounds a light tenant's latency under a heavy
  tenant's burst, at no cost to aggregate throughput.
"""

from _tables import emit, kops, us

from repro.extensions import (
    run_dpu_cache_experiment,
    run_multitenant_experiment,
)

CACHE_SIZES = (0, 128 << 10, 512 << 10, 2 << 20)


def run_cache():
    results = {
        size: run_dpu_cache_experiment(size, reads=2400)
        for size in CACHE_SIZES
    }
    rows = [
        (
            f"{size >> 10}KB" if size else "off",
            f"{r.hit_rate * 100:.1f}%",
            kops(r.throughput),
            us(r.mean_latency),
            r.ssd_reads,
        )
        for size, r in results.items()
    ]
    emit(
        "ext_dpu_cache",
        "DPU-memory read cache under Zipfian reads",
        ("cache", "hit rate", "reads/s", "mean latency", "SSD reads"),
        rows,
    )
    return results


def run_tenancy():
    results = {
        scheduler: run_multitenant_experiment(scheduler)
        for scheduler in ("fifo", "drr")
    }
    rows = [
        (
            scheduler,
            f"{r.light_max_latency * 1e3:.2f}ms",
            us(r.light_mean_latency),
            f"{r.heavy_throughput:.0f}/s",
        )
        for scheduler, r in results.items()
    ]
    emit(
        "ext_multitenancy",
        "light tenant under a heavy burst: FIFO vs DRR",
        ("scheduler", "light max lat", "light mean", "heavy tput"),
        rows,
    )
    return results


def test_ext_dpu_cache(benchmark):
    results = benchmark.pedantic(run_cache, rounds=1, iterations=1)
    stock = results[0]
    big = results[2 << 20]
    # Hit rate and throughput grow monotonically with cache size.
    hit_rates = [results[s].hit_rate for s in CACHE_SIZES]
    assert hit_rates == sorted(hit_rates)
    assert big.hit_rate > 0.6
    assert big.throughput > 2 * stock.throughput
    assert big.ssd_reads < 0.5 * stock.ssd_reads


def test_ext_multitenancy(benchmark):
    results = benchmark.pedantic(run_tenancy, rounds=1, iterations=1)
    fifo, drr = results["fifo"], results["drr"]
    assert fifo.light_max_latency > 10e-3  # head-of-line blocking
    assert drr.light_max_latency < fifo.light_max_latency / 50
    assert drr.heavy_throughput > 0.9 * fifo.heavy_throughput
