"""Figure 4: responding to TCP messages on the host vs. on the DPU.

Paper: a client echoes messages off a server with a BF-2; answering
directly from the DPU roughly halves the round-trip latency across
message sizes, because the NIC-to-host forwarding and the host kernel
stack are skipped entirely.
"""

from _tables import emit, us

from repro.bench import EchoBench
from repro.sim import Environment

SIZES = (64, 512, 1024, 4096, 16384)


def run_figure():
    rows = []
    pairs = []
    for size in SIZES:
        host = EchoBench(Environment()).measure("host-os", size)
        dpu = EchoBench(Environment()).measure("dpu-raw", size)
        pairs.append((host, dpu))
        rows.append(
            (
                size,
                us(host.rtt),
                us(dpu.rtt),
                f"{host.rtt / dpu.rtt:.2f}x",
            )
        )
    emit(
        "fig04",
        "echo RTT: host responder vs DPU responder",
        ("msg bytes", "host RTT", "DPU RTT", "speedup"),
        rows,
    )
    return pairs


def test_fig04_echo_rtt(benchmark):
    pairs = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    for host, dpu in pairs:
        # The DPU roughly halves latency (paper: ~2x across sizes).
        assert 1.5 < host.rtt / dpu.rtt < 3.5, host.message_bytes
    # RTT grows with message size on both paths.
    host_rtts = [host.rtt for host, _dpu in pairs]
    assert host_rtts == sorted(host_rtts)
