"""Figure 26: disaggregated FASTER latency under YCSB (§9.2).

Paper: at 340 K op/s the baseline's median (p99) latency is 13 ms
(18 ms) — deep queueing in the host stack — while DDS keeps latency
around 300 us even at ~1 M op/s.
"""

from _tables import emit, kops, us

from repro.apps import run_kv_experiment

POINTS = {
    "baseline": [(200e3, 64, 4000), (350e3, 256, 5000), (520e3, 2000, 20000)],
    "dds": [(400e3, 64, 5000), (800e3, 128, 6000), (1000e3, 160, 8000)],
}


def run_figure():
    results = {}
    rows = []
    for kind, series in POINTS.items():
        measured = [
            run_kv_experiment(
                kind,
                offered,
                total_requests=total,
                batch=1 if kind == "baseline" else 4,
                max_outstanding=window,
            )
            for offered, window, total in series
        ]
        results[kind] = measured
        for result in measured:
            rows.append(
                (
                    kind,
                    kops(result.achieved_ops),
                    us(result.p50),
                    us(result.p99),
                )
            )
    emit(
        "fig26",
        "disaggregated FASTER: YCSB read latency vs throughput",
        ("deployment", "op/s", "p50", "p99"),
        rows,
    )
    return results


def test_fig26_faster_latency(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    baseline_peak = results["baseline"][-1]
    dds_peak = results["dds"][-1]
    # The saturated baseline is in the milliseconds (paper: 13/18 ms).
    assert baseline_peak.p50 > 2e-3
    assert baseline_peak.p99 > baseline_peak.p50
    # DDS keeps latency in the hundreds of microseconds at ~1M op/s
    # (paper: ~300 us).
    assert dds_peak.achieved_ops > 900e3
    assert dds_peak.p50 < 500e-6
    # Order-of-magnitude separation at the respective operating points.
    assert baseline_peak.p50 / dds_peak.p50 > 8
