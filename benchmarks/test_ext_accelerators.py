"""Extensions (§11 future work): accelerators on the DDS data path.

Not a paper figure — the paper's conclusion proposes using the DPU's
hardware engines (compression, regex) "to execute compute-intensive
components in cloud data system tasks"; these benchmarks quantify that
proposal on the reproduced system.

* Compressed page serving: the deflate engine decompresses offloaded
  reads at line rate, so compression's SSD savings come for free; the
  same work on Arm cores collapses throughput (the §2 argument).
* String-operator pushdown: the RXP engine filters records where they
  live, cutting network bytes by the query's selectivity at no Arm cost.
"""

from _tables import emit, kops, us

from repro.extensions import (
    run_compressed_read_experiment,
    run_pushdown_experiment,
)


def run_compression():
    results = {
        mode: run_compressed_read_experiment(mode, pages=96, reads=960)
        for mode in ("none", "software", "accel")
    }
    rows = [
        (
            mode,
            kops(r.throughput),
            us(r.mean_latency),
            f"{r.compression_ratio:.2f}x",
            f"{r.ssd_bytes_per_page:.0f}",
        )
        for mode, r in results.items()
    ]
    emit(
        "ext_compression",
        "compressed page serving: decompression placement",
        ("mode", "pages/s", "mean latency", "ratio", "SSD B/page"),
        rows,
    )
    return results


def run_pushdown():
    results = {
        mode: run_pushdown_experiment(mode, pages=96)
        for mode in ("ship-all", "dpu-software", "dpu-regex")
    }
    rows = [
        (
            mode,
            f"{r.scan_seconds * 1e3:.2f}ms",
            f"{r.wire_bytes / 1024:.1f}KB",
            f"{r.arm_core_seconds * 1e3:.2f}ms",
        )
        for mode, r in results.items()
    ]
    emit(
        "ext_pushdown",
        "string-operator pushdown: scan placement (5% selectivity)",
        ("mode", "scan time", "wire bytes", "arm core time"),
        rows,
    )
    return results


def test_ext_compressed_reads(benchmark):
    results = benchmark.pedantic(run_compression, rounds=1, iterations=1)
    accel, software, plain = (
        results["accel"],
        results["software"],
        results["none"],
    )
    # Hardware decompression: ~plain throughput, big SSD savings.
    assert accel.throughput > 0.85 * plain.throughput
    assert accel.ssd_bytes_per_page < 0.4 * plain.ssd_bytes_per_page
    # Software decompression on Arm cores is not viable (§2's lesson).
    assert software.throughput < 0.4 * accel.throughput


def test_ext_pushdown_scan(benchmark):
    results = benchmark.pedantic(run_pushdown, rounds=1, iterations=1)
    ship, software, regex = (
        results["ship-all"],
        results["dpu-software"],
        results["dpu-regex"],
    )
    # The regex engine filters at ship-all speed with ~selectivity-
    # proportional wire traffic and zero Arm involvement.
    assert regex.wire_bytes < 0.2 * ship.wire_bytes
    assert regex.scan_seconds < 1.3 * ship.scan_seconds
    assert regex.arm_core_seconds == 0.0
    assert software.scan_seconds > 2 * regex.scan_seconds
    # All placements return the same answer.
    assert ship.matches == software.matches == regex.matches
