"""Engine micro-benchmarks: the four hot paths DESIGN.md §11 names.

Each workload drives one engine mechanism in isolation — heap-ordered
timeout churn, process spawn/teardown, ``AllOf``/``AnyOf`` fan-in, and
same-tick event storms (the ready-deque path) — asserts the simulation
behaved correctly, and contributes an entry to ``BENCH_engine_micro.json``
at the repo root (events, wall seconds, events/sec, plus the
machine-speed calibration anchor that makes the numbers comparable
across hosts).

Run directly: ``pytest benchmarks/test_engine_microbench.py``.
"""

import time

import pytest

from repro.bench.trajectory import REPO_ROOT, calibrate, write_bench
from repro.sim import Environment

#: name -> (events, wall_seconds); filled by the workload tests, written
#: once by the session-scoped emitter fixture below.
_RESULTS = {}


def _record(name, env, wall):
    _RESULTS[name] = (env.scheduled_count, wall)


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write BENCH_engine_micro.json after all workloads have run."""
    yield
    if not _RESULTS:
        return
    entries = {}
    total_events = 0
    total_wall = 0.0
    for name, (events, wall) in sorted(_RESULTS.items()):
        entries[name] = {
            "events": events,
            "wall_seconds": round(wall, 4),
            "events_per_sec": round(events / wall, 1) if wall else 0.0,
        }
        total_events += events
        total_wall += wall
    record = {
        "schema": 1,
        "name": "engine_micro",
        "mode": "full",
        "wall_seconds": round(total_wall, 4),
        "events": total_events,
        "events_per_sec": (
            round(total_events / total_wall, 1) if total_wall else 0.0
        ),
        "peak_iops": 0.0,  # no I/O model in the micro workloads
        "calibration_eps": round(calibrate(), 1),
        "detail": entries,
    }
    write_bench(record, REPO_ROOT)


def test_timeout_churn():
    """Heap path: many interleaved positive-delay timeouts."""
    env = Environment()
    done = []

    def churner(index):
        delay = 1e-6 * (1 + (index % 7))
        for _ in range(2000):
            yield env.timeout(delay)
        done.append(index)

    start = time.perf_counter()
    for index in range(25):
        env.process(churner(index))
    env.run()
    wall = time.perf_counter() - start
    _record("timeout_churn", env, wall)
    assert len(done) == 25
    assert env.now == pytest.approx(2000 * 7e-6)


def test_process_spawn_teardown():
    """Bootstrap + termination cost: short-lived process cascades."""
    env = Environment()
    finished = [0]

    def leaf():
        yield env.timeout(1e-9)
        finished[0] += 1
        return 1

    def spawner():
        for _ in range(200):
            children = [env.process(leaf()) for _ in range(50)]
            yield env.all_of(children)

    start = time.perf_counter()
    env.process(spawner())
    env.run()
    wall = time.perf_counter() - start
    _record("spawn_teardown", env, wall)
    assert finished[0] == 200 * 50


def test_fan_in_allof_anyof():
    """AllOf/AnyOf composition over mixed-delay children."""
    env = Environment()
    rounds = [0]

    def fan():
        for index in range(2000):
            children = [
                env.timeout(1e-6 * (1 + ((index + k) % 5)), value=k)
                for k in range(8)
            ]
            values = yield env.all_of(children)
            assert sorted(values) == list(range(8))
            first = yield env.any_of(
                [env.timeout(2e-6, "slow"), env.timeout(1e-6, "fast")]
            )
            assert first[1] == "fast"
            rounds[0] += 1

    start = time.perf_counter()
    env.process(fan())
    env.run()
    wall = time.perf_counter() - start
    _record("fan_in", env, wall)
    assert rounds[0] == 2000


def test_same_tick_storm():
    """Ready-deque path: bursts of zero-delay triggers at one timestamp."""
    env = Environment()
    woken = [0]

    def waiter(gate):
        yield gate
        woken[0] += 1

    def storm():
        for _ in range(400):
            gates = [env.event() for _ in range(100)]
            procs = [env.process(waiter(gate)) for gate in gates]
            # Everything below happens at the same simulated instant.
            for gate in gates:
                gate.succeed()
            yield env.all_of(procs)

    start = time.perf_counter()
    env.process(storm())
    env.run()
    wall = time.perf_counter() - start
    _record("same_tick_storm", env, wall)
    assert woken[0] == 400 * 100
