"""Figure 2: CPU cost of the Hyperscale page server for reads.

Paper: serving random 8 KiB page reads from a page server costs CPU that
grows steeply with throughput — ~17 cores at 156 K pages/s — and the
DBMS's internal network module is the largest component, ahead of the OS
network stack, the filesystem, and everything else.
"""

from _tables import cores, emit, kops

from repro.apps import run_pageserver_experiment

TARGETS = (50e3, 100e3, 150e3)


def run_figure():
    rows = []
    results = []
    for offered in TARGETS:
        result = run_pageserver_experiment(
            "baseline", offered, total_requests=4000, max_outstanding=256
        )
        results.append(result)
        breakdown = result.breakdown
        rows.append(
            (
                kops(result.achieved_pages),
                cores(breakdown["dbms-network"]),
                cores(breakdown["os-network"]),
                cores(breakdown["filesystem"]),
                cores(breakdown["dbms-other"]),
                cores(result.host_cores),
            )
        )
    emit(
        "fig02",
        "page server CPU vs read throughput (8 KiB pages)",
        ("pages/s", "dbms-net", "os-net", "filesystem", "dbms-other", "total"),
        rows,
    )
    return results


def test_fig02_pageserver_cpu(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    top = results[-1]
    # CPU grows significantly with throughput (paper: 5 -> 17 cores).
    assert top.host_cores > 2.5 * results[0].host_cores
    # ~15-17 cores at ~150K pages/s.
    assert 11 < top.host_cores < 22
    # The DBMS network module is the largest single component.
    assert top.breakdown["dbms-network"] == max(top.breakdown.values())
    # The OS stack alone is NOT the majority — kernel bypass would only
    # partially help (the paper's argument for DPU offloading).
    assert top.breakdown["os-network"] < 0.5 * top.host_cores
