"""Ablations on the §8.1 client's load-control knobs.

The paper's client "controls the request rate via parameters: the number
of requests batched in a message, the number of outstanding messages,
and the number of concurrent connections" but never shows their effect.
These sweeps do:

* batching amortizes per-message stack costs — the baseline's host CPU
  per request falls steeply with batch size, while the offload path
  (whose per-request costs are already tiny) barely moves;
* the outstanding window trades latency for throughput along the
  classic closed-loop curve.
"""

from _tables import cores, emit, kops, us

from repro.bench import run_io_experiment

BATCHES = (1, 2, 4, 8, 16)
WINDOWS = (8, 32, 128, 512)


def run_batch_sweep():
    results = {}
    rows = []
    for kind in ("baseline", "dds-offload"):
        for batch in BATCHES:
            result = run_io_experiment(
                kind,
                300e3,
                total_requests=6000,
                batch=batch,
                max_outstanding=max(32, 256 // batch),
            )
            results[(kind, batch)] = result
            rows.append(
                (
                    kind,
                    batch,
                    kops(result.achieved_iops),
                    cores(result.host_cores),
                    us(result.p50),
                )
            )
    emit(
        "ablation_batching",
        "requests per message: host CPU amortization at 300K IOPS",
        ("solution", "batch", "IOPS", "host cores", "p50"),
        rows,
    )
    return results


def run_window_sweep():
    results = {}
    rows = []
    for window in WINDOWS:
        result = run_io_experiment(
            "dds-offload",
            2_000e3,  # far beyond capacity: the window sets the point
            total_requests=8000,
            max_outstanding=window,
        )
        results[window] = result
        rows.append(
            (
                window,
                kops(result.achieved_iops),
                us(result.p50),
                us(result.p99),
            )
        )
    emit(
        "ablation_window",
        "outstanding messages: closed-loop throughput/latency trade",
        ("window", "IOPS", "p50", "p99"),
        rows,
    )
    return results


def test_ablation_batching(benchmark):
    results = benchmark.pedantic(run_batch_sweep, rounds=1, iterations=1)
    base1 = results[("baseline", 1)]
    base16 = results[("baseline", 16)]
    # Batching slashes the baseline's per-request host cost...
    per_request_1 = base1.host_cores / base1.achieved_iops
    per_request_16 = base16.host_cores / base16.achieved_iops
    # Per-message stack costs amortize; the per-request OS-filesystem
    # cost (which batching cannot touch) remains, so ~35% saving.
    assert per_request_16 < 0.72 * per_request_1
    # ...but hardly moves the offload path (nothing to amortize).
    off1 = results[("dds-offload", 1)]
    off16 = results[("dds-offload", 16)]
    assert off1.host_cores < 0.05 and off16.host_cores < 0.05
    assert off16.p50 < 3 * off1.p50


def test_ablation_window(benchmark):
    results = benchmark.pedantic(run_window_sweep, rounds=1, iterations=1)
    throughputs = [results[w].achieved_iops for w in WINDOWS]
    latencies = [results[w].p50 for w in WINDOWS]
    # Throughput grows with the window until saturation; latency grows
    # monotonically (Little's law).
    assert throughputs[1] > throughputs[0]
    assert latencies == sorted(latencies)
    # The deepest window saturates the device (~730K).
    assert throughputs[-1] > 650e3