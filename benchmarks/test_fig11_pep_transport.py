"""Figure 11 (§5.2): partial offloading vs. TCP's end-to-end semantics.

Paper: if the DPU silently consumes offloaded packets, the host's TCP
sees sequence gaps, duplicate-ACKs, and the client *resends everything
the DPU already served*.  DDS's traffic director avoids this by acting
as a TCP-splitting performance-enhancing proxy: both legs see in-order
streams and no spurious recovery ever triggers.
"""

from _tables import emit

from repro.net import (
    LengthPrefixFramer,
    NaiveOffloadPath,
    TcpReceiver,
    TcpSender,
    TcpSplittingPep,
)

MESSAGES = 60
MESSAGE_BYTES = 600


def _client():
    sender = TcpSender(initial_cwnd=64)
    messages = [bytes([65 + i % 26]) * MESSAGE_BYTES for i in range(MESSAGES)]
    for message in messages:
        sender.write(LengthPrefixFramer.encode(message))
    return sender, messages


def run_naive():
    """Every other segment is consumed by the DPU, un-proxied."""
    sender, _messages = _client()
    segments = sender.transmit()
    offloaded = {s.seq for i, s in enumerate(segments) if i % 2 == 1}
    path = NaiveOffloadPath(lambda s: s.seq in offloaded)
    for _round in range(60):
        progress = False
        for segment in segments:
            ack = path.on_client_segment(segment)
            if ack is None:
                continue
            retransmits = sender.on_ack(ack.ack)
            if retransmits:
                progress = True
                segments = retransmits
                break
        else:
            segments = sender.transmit()
            progress = bool(segments)
        if not progress:
            break
    return sender, path


def run_pep():
    """The same split, through the TCP-splitting PEP."""
    sender, _messages = _client()
    toggle = [0]

    def off_pred(_message):
        toggle[0] += 1
        return toggle[0] % 2 == 1

    pep = TcpSplittingPep(off_pred)
    host = TcpReceiver()
    for _round in range(200):
        segments = sender.transmit()
        if not segments and sender.bytes_in_flight == 0:
            break
        for segment in segments:
            ack, host_segments = pep.on_client_segment(segment)
            sender.on_ack(ack.ack)
            for host_segment in host_segments:
                pep.on_host_ack(host.on_segment(host_segment))
    return sender, pep, host


def run_figure():
    naive_sender, naive_path = run_naive()
    pep_sender, pep, host = run_pep()
    rows = [
        (
            "naive-offload",
            naive_path.host_receiver.stats.dup_acks_sent,
            naive_sender.stats.fast_retransmits,
            naive_sender.stats.retransmissions,
        ),
        (
            "dds-pep",
            host.stats.dup_acks_sent,
            pep_sender.stats.fast_retransmits,
            pep_sender.stats.retransmissions,
        ),
    ]
    emit(
        "fig11",
        "transport behaviour under partial offloading",
        ("path", "dup ACKs", "fast rtx events", "segments resent"),
        rows,
    )
    return (naive_sender, naive_path), (pep_sender, pep, host)


def test_fig11_pep_transport(benchmark):
    (naive_sender, naive_path), (pep_sender, pep, host) = benchmark.pedantic(
        run_figure, rounds=1, iterations=1
    )
    # Naive offloading: duplicate ACKs and spurious retransmissions of
    # data the DPU already consumed.
    assert naive_path.host_receiver.stats.dup_acks_sent >= 3
    assert naive_sender.stats.retransmissions > 0
    # The PEP delivers everything with zero recovery events on either leg.
    assert pep_sender.stats.retransmissions == 0
    assert pep_sender.stats.fast_retransmits == 0
    assert host.stats.dup_acks_sent == 0
    assert len(pep.offloaded) + len(pep.forwarded) == MESSAGES
