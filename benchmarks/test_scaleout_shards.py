"""Multi-DPU scale-out sweep: directed throughput vs. shard count.

The capability the topology layer exists to prove: one host, N DPUs,
the file namespace consistent-hash sharded across them, each traffic
director steering foreign-shard requests to the owning DPU.  Directed
read throughput must grow monotonically 1 → 2 → 4 shards, and each
shard's director core must stay within Figure 21's per-Arm-core budget
(one core directs ~6.4 Gbps ≈ 800K MTU-packet operations/s; our 1 KiB
reads are one packet each way).
"""

import pytest

from repro.core.client import ClientConfig, WorkloadClient
from repro.core.messages import IoRequest, OpCode
from repro.hardware.nic import NetworkLink
from repro.sim import Environment
from repro.storage.disk import RamDisk, SpdkBdev
from repro.storage.filesystem import DdsFileSystem
from repro.topology.sharding import ShardedOffloadServer

IO_SIZE = 1024
FILES = 32
FILE_BYTES = 4 << 20
#: Offered load far beyond any shard count's capacity, so every point
#: measures capacity rather than arrival rate.
OFFERED_IOPS = 4e6
TOTAL_REQUESTS = 12_000


def run_sharded(shard_count, total_requests=TOTAL_REQUESTS):
    env = Environment()
    disk = RamDisk(FILES * FILE_BYTES + (64 << 20))
    fs = DdsFileSystem(env, SpdkBdev(env, disk))
    fs.create_directory("bench")
    file_ids = []
    for index in range(FILES):
        file_id = fs.create_file("bench", f"shard-file-{index}")
        fs.preallocate(file_id, FILE_BYTES)
        file_ids.append(file_id)
    link = NetworkLink(env)
    server = ShardedOffloadServer(env, link, fs, shard_count=shard_count)
    config = ClientConfig(
        offered_iops=OFFERED_IOPS,
        total_requests=total_requests,
        io_size=IO_SIZE,
        batch=4,
        connections=16,
        max_outstanding=192,
        file_size=FILE_BYTES,
        seed=7,
    )
    slots = FILE_BYTES // IO_SIZE

    def random_read(request_id, rng):
        file_id = file_ids[rng.randrange(len(file_ids))]
        offset = rng.randrange(slots) * IO_SIZE
        return IoRequest(OpCode.READ, request_id, file_id, offset, IO_SIZE)

    client = WorkloadClient(
        env, server, file_ids[0], config, request_factory=random_read
    )
    result = client.run()
    return server, result


@pytest.fixture(scope="module")
def sweep():
    return {n: run_sharded(n) for n in (1, 2, 4)}


class TestScaleoutThroughput:
    def test_directed_throughput_monotonic_1_2_4(self, sweep):
        achieved = {n: r.achieved_iops for n, (_, r) in sweep.items()}
        assert achieved[2] > achieved[1] * 1.3
        assert achieved[4] > achieved[2] * 1.3

    def test_single_shard_matches_arm_core_budget(self, sweep):
        # Figure 21: one Arm core directs ~6.4 Gbps; at MTU-ish packets
        # that bounds directed operations below ~1M/s, and the SSD caps
        # a single shard near 800K IOPS — so one shard must land under
        # 1M IOPS but still in the hundreds of thousands.
        _, result = sweep[1]
        assert 300e3 < result.achieved_iops < 1e6


class TestScaleoutBehaviour:
    def test_every_shard_serves_and_relays(self, sweep):
        server, _ = sweep[4]
        for shard in server.shards:
            assert shard.director.requests_offloaded > 0
        assert sum(s.director.requests_relayed for s in server.shards) > 0
        assert sum(s.director.relayed_messages for s in server.shards) > 0

    def test_relay_load_is_spread(self, sweep):
        # Consistent hashing + ingress RSS: no shard should own a
        # wildly outsized share of the executed requests.
        server, result = sweep[4]
        executed = [
            s.director.requests_offloaded + s.director.requests_to_host
            for s in server.shards
        ]
        assert sum(executed) == TOTAL_REQUESTS
        assert max(executed) < TOTAL_REQUESTS * 0.6

    def test_director_cores_within_budget(self, sweep):
        for n, (server, result) in sweep.items():
            for shard in server.shards:
                for core in shard.cores:
                    assert core.utilization(result.elapsed) <= 1.0 + 1e-9

    def test_host_fallback_preserved_per_shard(self):
        server, result = run_sharded_writes()
        assert all(result.values())
        shards_hit = [
            s.index for s in server.shards if s.director.requests_to_host > 0
        ]
        assert len(shards_hit) >= 2  # writes landed on several shards


def run_sharded_writes():
    env = Environment()
    disk = RamDisk(FILES * FILE_BYTES + (64 << 20))
    fs = DdsFileSystem(env, SpdkBdev(env, disk))
    fs.create_directory("bench")
    file_ids = []
    for index in range(FILES):
        file_id = fs.create_file("bench", f"shard-file-{index}")
        fs.preallocate(file_id, FILE_BYTES)
        file_ids.append(file_id)
    link = NetworkLink(env)
    server = ShardedOffloadServer(env, link, fs, shard_count=4)
    from repro.net.packet import FiveTuple

    ok = {}
    for index, file_id in enumerate(file_ids):
        flow = FiveTuple("10.0.0.2", 40_000 + index, "10.0.0.1", 5000)
        write = IoRequest(
            OpCode.WRITE, index, file_id, 0, IO_SIZE, bytes(IO_SIZE)
        )
        responses = []
        done = server.submit(flow, [write], responses.append)
        env.run(until=done)
        ok[index] = responses[0].ok
    return server, ok
