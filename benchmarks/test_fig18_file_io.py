"""Figure 18: DPU-backed file I/O throughput, zero-copy vs. copies (§8.5).

Paper: the storage path's zero-copy discipline (requests used in place,
responses pre-allocated, §4.3) increases host-issued file throughput by
up to 93% over a design that pays memory copies to accommodate
asynchronous I/O; the gap widens with request size.
"""

from _tables import emit, kops

from repro.core import DdsFileLibrary, DpuFileService
from repro.hardware import DPU_CPU, HOST_CPU, CpuCore, CpuPool, DmaEngine
from repro.sim import Environment
from repro.storage import DdsFileSystem, RamDisk, SpdkBdev

SIZES = (1024, 4096, 16384, 65536)
OUTSTANDING = 96
TOTAL_OPS = 2500


def measure(size: int, copy_mode: bool) -> float:
    """Host-issued read IOPS at one request size."""
    env = Environment()
    fs = DdsFileSystem(env, SpdkBdev(env, RamDisk(96 << 20)))
    fs.create_directory("d")
    fid = fs.create_file("d", "f")
    fs.preallocate(fid, 64 << 20)
    service = DpuFileService(
        env,
        fs,
        CpuCore(env, speed=DPU_CPU.speed),
        CpuCore(env, speed=DPU_CPU.speed),
        copy_mode=copy_mode,
    )
    library = DdsFileLibrary(
        env, CpuPool(env, HOST_CPU), service, DmaEngine(env)
    )
    service.start()
    group = library.create_poll()
    library.poll_add(group, fid)
    slots = (64 << 20) // size

    def issuer():
        import random

        rng = random.Random(7)
        for i in range(TOTAL_OPS):
            offset = rng.randrange(slots) * size
            yield from library.read_file(fid, offset, size)

    def poller():
        for _ in range(TOTAL_OPS):
            yield from library.poll_wait(group)

    def throttled_issuer():
        # Keep a bounded window so queueing stays realistic.
        import random

        rng = random.Random(7)
        issued = 0
        while issued < TOTAL_OPS:
            in_flight = library.operations_issued - library.completions_polled
            if in_flight >= OUTSTANDING:
                yield env.timeout(2e-6)
                continue
            offset = rng.randrange(slots) * size
            yield from library.read_file(fid, offset, size)
            issued += 1

    env.process(throttled_issuer())
    done = env.process(poller())
    env.run(until=done)
    return TOTAL_OPS / env.now


def run_figure():
    results = {}
    rows = []
    for size in SIZES:
        zero_copy = measure(size, copy_mode=False)
        with_copies = measure(size, copy_mode=True)
        results[size] = (zero_copy, with_copies)
        rows.append(
            (
                size,
                kops(zero_copy),
                kops(with_copies),
                f"+{(zero_copy / with_copies - 1) * 100:.0f}%",
            )
        )
    emit(
        "fig18",
        "DPU-backed file reads: zero-copy vs copy throughput",
        ("request bytes", "zero-copy", "with copies", "gain"),
        rows,
    )
    return results


def test_fig18_file_io(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    gains = {
        size: zero / copies for size, (zero, copies) in results.items()
    }
    # Zero-copy always wins meaningfully...
    for size in SIZES:
        assert gains[size] > 1.25, size
    # ...with the largest gain at a copy-dominated mid size (the paper's
    # "up to 93%"); at 64 KiB both paths converge on device bandwidth.
    peak = max(gains.values())
    assert 1.5 < peak < 2.8
    assert peak > gains[1024]
