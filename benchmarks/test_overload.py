"""Overload benchmark: goodput-vs-offered curves and flash-crowd recovery.

Runs the DESIGN §15 overload study — the same deployment and tenant
population as the committed ``BENCH_overload.json`` baseline — and
emits the two tables the graceful-degradation claim rests on:

* ``overload`` — goodput, p99, retry amplification, and shed rate at
  each offered-load multiple of capacity, for the stock configuration
  (OFF: 8-attempt retries, no dedup, no admission control) and the
  defended one (ON: QoS gate + retry budget + dedup).  OFF collapses
  past saturation; ON holds >= 80% of peak at 2x capacity.
* the flash-crowd rows — goodput before / during / after a 5x spike.
  OFF stays depressed after the crowd leaves (metastable failure); ON
  recovers to >= 95% of pre-crowd demand.

Run with ``pytest benchmarks/test_overload.py``.
"""

import pytest
from _tables import emit, kops

from repro.bench.trajectory import _run_overload


@pytest.fixture(scope="module")
def detail():
    return _run_overload("full")["detail"]


@pytest.fixture(scope="module")
def table(detail):
    rows = []
    for key, label in (("off", "stock"), ("on", "defended")):
        for point in detail["curve"][key]:
            rows.append((
                label,
                f"{point['multiplier']:.1f}x",
                kops(point["offered_iops"]),
                kops(point["goodput_iops"]),
                f"{point['p99_ms']:.2f}ms",
                f"{point['amplification']:.2f}x",
                f"{100 * point['shed_rate']:.0f}%",
            ))
    emit(
        "overload",
        "open-loop overload: goodput vs offered load (1 shard, 64KiB reads)",
        ("config", "load", "offered", "goodput", "p99", "amplify", "shed"),
        rows,
    )
    flash_rows = [
        (
            {"off": "stock", "on": "defended"}[key],
            kops(flash["pre_iops"]),
            kops(flash["during_iops"]),
            kops(flash["post_iops"]),
            f"{100 * flash['recovery']:.0f}%",
            f"{flash['p99_ms']:.2f}ms",
            flash["retries"],
        )
        for key, flash in detail["flash_crowd"].items()
    ]
    emit(
        "overload_flash_crowd",
        "flash crowd (5x for 6ms over 0.8x-capacity base): recovery",
        ("config", "pre", "during", "post", "recovery", "p99", "retries"),
        flash_rows,
    )
    return detail


class TestGoodputCurve:
    def test_defended_curve_holds_at_twice_capacity(self, table):
        """The acceptance bar: ON goodput at 2x >= 80% of ON peak."""
        assert table["on_goodput_2x_pct_of_peak"] >= 80.0

    def test_stock_curve_collapses(self, table):
        """OFF goodput falls as offered load rises past saturation —
        the signature of congestion collapse, not graceful saturation."""
        off = {p["multiplier"]: p["goodput_iops"] for p in table["curve"]["off"]}
        assert off[3.0] < 0.65 * max(off.values())
        assert table["off_collapse_pct_of_peak"] < 65.0

    def test_stock_overload_amplifies_offered_load(self, table):
        """Past saturation the stock retry policy multiplies demand;
        the budgeted configuration stays within ~1.1x."""
        for point in table["curve"]["off"]:
            if point["multiplier"] >= 2.0:
                assert point["amplification"] > 2.0
        for point in table["curve"]["on"]:
            assert point["amplification"] <= 1.15

    def test_defenses_shed_explicitly_not_silently(self, table):
        """ON converts excess into THROTTLED sheds; OFF sheds nothing
        explicitly (its losses hide in queues and timeouts)."""
        on_2x = next(
            p for p in table["curve"]["on"] if p["multiplier"] == 2.0
        )
        assert on_2x["shed_rate"] > 0.4
        for point in table["curve"]["off"]:
            assert point["shed_rate"] == 0.0

    def test_interactive_class_keeps_low_p99_under_overload(self, table):
        """The 4x-weighted interactive tenants ride through 2x overload
        with millisecond-class p99 while batch absorbs the queueing."""
        classes = table["tenant_class_p99_ms_at_2x"]
        assert classes["int"] < 5.0
        assert classes["int"] <= classes["batch"]


class TestFlashCrowd:
    def test_defended_recovers_after_the_crowd(self, table):
        assert table["flash_crowd"]["on"]["recovery"] >= 0.95

    def test_stock_stays_collapsed_after_the_crowd(self, table):
        """Metastability: the trigger is gone, the collapse persists."""
        flash = table["flash_crowd"]["off"]
        assert flash["recovery"] < 0.8
        assert flash["retries"] > 10 * table["flash_crowd"]["on"]["retries"]
