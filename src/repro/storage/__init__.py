"""Storage substrate: segment layout, DDS filesystem, OS baseline, SPDK."""

from .disk import RamDisk, SpdkBdev
from .filesystem import (
    DEFAULT_SEGMENT_SIZE,
    DdsFileSystem,
    FileMeta,
    FileSystemError,
)
from .layout import (
    FileExtentMap,
    PhysicalRun,
    SegmentAllocator,
    StorageFullError,
)
from .osfs import OsFileSystem

__all__ = [
    "DEFAULT_SEGMENT_SIZE",
    "DdsFileSystem",
    "FileExtentMap",
    "FileMeta",
    "FileSystemError",
    "OsFileSystem",
    "PhysicalRun",
    "RamDisk",
    "SegmentAllocator",
    "SpdkBdev",
    "StorageFullError",
]
