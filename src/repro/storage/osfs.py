"""Baseline host OS filesystem (the paper's NTFS + kernel block layer).

The baseline storage servers (§8.1) perform file I/O through the OS: each
operation pays a syscall + filesystem + block-layer CPU cost on the host
and extra kernel-path latency before reaching the same NVMe device.  This
wrapper composes those costs (``HOST_OS_FS``) around a
:class:`~repro.storage.filesystem.DdsFileSystem` used purely as the
file-layout engine, so the baseline and DDS move identical bytes and
differ only in who does the work and where.
"""

from __future__ import annotations

from typing import Generator, Union

from ..hardware.cpu import CpuCore, CpuPool
from ..hardware.specs import HOST_OS_FS, MICROSECOND, StackSpec
from ..net.stack import StackLayer
from ..sim import Environment
from .filesystem import DdsFileSystem

__all__ = ["OsFileSystem"]


class OsFileSystem:
    """Kernel-path file I/O: OS CPU cost + latency around the same layout.

    Besides the parallel per-op CPU cost, the kernel I/O path has a
    *serialized* section (storage-stack locks, interrupt steering, NTFS
    journalling for writes) modelled as a dedicated single "core": its
    capacity caps the baseline's throughput the way the paper's Windows
    baseline peaks at ~390 K read / ~210 K write IOPS (Figures 14-15),
    and queueing on it produces the baseline's latency blow-up near
    saturation.
    """

    #: Serialized kernel time per read / write (host-core-seconds).
    READ_SERIAL = 2.5 * MICROSECOND
    WRITE_SERIAL = 4.8 * MICROSECOND

    def __init__(
        self,
        env: Environment,
        inner: DdsFileSystem,
        host_cpu: Union[CpuCore, CpuPool],
        spec: StackSpec = HOST_OS_FS,
    ) -> None:
        self.env = env
        self.inner = inner
        self.layer = StackLayer(env, spec, host_cpu)
        self.serializer = CpuCore(env, speed=1.0, name="kernel-io-serial")

    # Namespace operations go straight through (metadata cost is charged
    # as one op's worth of kernel work).
    def create_directory(self, name: str) -> None:
        """Kernel-path mkdir (one op of metadata CPU)."""
        self.layer.charge_only(0)
        self.inner.create_directory(name)

    def create_file(self, directory: str, name: str) -> int:
        """Kernel-path create; returns the file id."""
        self.layer.charge_only(0)
        return self.inner.create_file(directory, name)

    def file_size(self, file_id: int) -> int:
        """Logical file size (metadata read, no kernel charge)."""
        return self.inner.file_size(file_id)

    def read(self, file_id: int, offset: int, size: int) -> Generator:
        """Kernel read: syscall + FS CPU, kernel latency, device I/O."""
        yield from self.layer.process(size)
        yield from self.serializer.execute(self.READ_SERIAL)
        data = yield self.env.process(self.inner.read(file_id, offset, size))
        return data

    def write(self, file_id: int, offset: int, data: bytes) -> Generator:
        """Kernel write: syscall + FS CPU, kernel latency, device I/O."""
        yield from self.layer.process(len(data))
        yield from self.serializer.execute(self.WRITE_SERIAL)
        yield self.env.process(self.inner.write(file_id, offset, data))
