"""On-disk layout: fixed-length segments and the file mapping (§4.3).

DDS divides SSD space into fixed-length segments (aligned to the disk
block size) and represents each file as a vector of segments — the *file
mapping*.  The mapping is the second level of DDS's two-level address
translation: the cache table maps application requests to file addresses,
and the file mapping maps file addresses to physical disk blocks.

:class:`SegmentAllocator` owns the free-segment bitmap;
:class:`FileExtentMap` holds one file's segment vector and translates
byte ranges into physical runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["SegmentAllocator", "FileExtentMap", "PhysicalRun", "StorageFullError"]


class StorageFullError(Exception):
    """No free segments remain on the device."""


@dataclass(frozen=True)
class PhysicalRun:
    """A contiguous physical byte range: (disk offset, length)."""

    disk_offset: int
    length: int


class SegmentAllocator:
    """Bitmap allocator over ``total_segments`` fixed-size segments.

    Segment 0 is reserved for filesystem metadata (§4.3: "one of the
    segments is reserved to persistently store the metadata"), so user
    allocation starts at segment 1.
    """

    METADATA_SEGMENT = 0

    def __init__(self, total_segments: int, segment_size: int) -> None:
        if total_segments < 2:
            raise ValueError("need at least a metadata segment plus one")
        if segment_size < 512 or segment_size % 512:
            raise ValueError("segment_size must be a multiple of 512")
        self.total_segments = total_segments
        self.segment_size = segment_size
        self._allocated = bytearray(total_segments)
        self._allocated[self.METADATA_SEGMENT] = 1
        self._free_count = total_segments - 1
        self._cursor = 1  # next-fit scan position

    @property
    def free_segments(self) -> int:
        return self._free_count

    def allocate(self) -> int:
        """Allocate one segment; raises :class:`StorageFullError` if none."""
        if self._free_count == 0:
            raise StorageFullError(
                f"all {self.total_segments} segments are in use"
            )
        n = self.total_segments
        for probe in range(n):
            candidate = (self._cursor + probe) % n
            if candidate == self.METADATA_SEGMENT:
                continue
            if not self._allocated[candidate]:
                self._allocated[candidate] = 1
                self._free_count -= 1
                self._cursor = (candidate + 1) % n
                return candidate
        raise StorageFullError("bitmap scan found no free segment")

    def free(self, segment: int) -> None:
        """Return one segment to the free pool."""
        if not 0 <= segment < self.total_segments:
            raise ValueError(f"segment {segment} out of range")
        if segment == self.METADATA_SEGMENT:
            raise ValueError("cannot free the metadata segment")
        if not self._allocated[segment]:
            raise ValueError(f"segment {segment} is not allocated")
        self._allocated[segment] = 0
        self._free_count += 1

    def mark_allocated(self, segment: int) -> None:
        """Recovery path: re-mark a segment found in persisted metadata."""
        if not self._allocated[segment]:
            self._allocated[segment] = 1
            self._free_count -= 1


class FileExtentMap:
    """One file's segment vector and byte-range translation."""

    def __init__(self, segment_size: int, segments: List[int] = None):
        self.segment_size = segment_size
        self.segments: List[int] = list(segments) if segments else []

    @property
    def capacity(self) -> int:
        """Bytes addressable through the current mapping."""
        return len(self.segments) * self.segment_size

    def append_segment(self, segment: int) -> None:
        """Grow the file by one segment."""
        self.segments.append(segment)

    def translate(self, offset: int, size: int) -> List[PhysicalRun]:
        """Map a logical byte range to physical runs.

        This is the translation the DPU file service performs for every
        I/O before submitting it to the userspace storage driver.
        """
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be non-negative")
        if offset + size > self.capacity:
            raise ValueError(
                f"range [{offset}, {offset + size}) exceeds mapped "
                f"capacity {self.capacity}"
            )
        runs: List[PhysicalRun] = []
        remaining = size
        position = offset
        while remaining > 0:
            index = position // self.segment_size
            within = position % self.segment_size
            chunk = min(remaining, self.segment_size - within)
            disk_offset = self.segments[index] * self.segment_size + within
            if runs and runs[-1].disk_offset + runs[-1].length == disk_offset:
                runs[-1] = PhysicalRun(
                    runs[-1].disk_offset, runs[-1].length + chunk
                )
            else:
                runs.append(PhysicalRun(disk_offset, chunk))
            position += chunk
            remaining -= chunk
        return runs

    def __iter__(self) -> Iterator[int]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)
