"""The DDS file system: flat directories over fixed-length segments (§4.3).

Files are vectors of fixed-length segments; directories are flat (no
nesting); segment 0 persistently stores all metadata — the directory
table, the file table, and every file's segment mapping — so the
filesystem can be recovered from the raw disk after a restart.

All data-path operations are simulation-process generators (they consume
device time through the SPDK bdev) *and* move real bytes (through the
RamDisk), so correctness and performance are tested against the same
implementation.  The filesystem itself charges no CPU: the caller (DPU
file service, or the OS-filesystem baseline wrapper) owns CPU accounting.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Generator, List, Optional

from ..hardware.ssd import DeviceError
from ..sim import Environment
from .disk import SpdkBdev
from .layout import FileExtentMap, SegmentAllocator, StorageFullError

__all__ = [
    "FileSystemError",
    "FileMeta",
    "DdsFileSystem",
    "DEFAULT_SEGMENT_SIZE",
]

DEFAULT_SEGMENT_SIZE = 1 << 20  # 1 MiB, block-aligned
_METADATA_MAGIC = "dds-fs-v2"
#: blake2b digest trailing each metadata slot (torn-write detection).
_DIGEST_SIZE = 16
_SLOT_HEADER = 8


class FileSystemError(Exception):
    """Invalid filesystem operation (unknown file, bad range, ...)."""


class FileMeta:
    """Metadata of one file: identity, size, and its extent map."""

    __slots__ = ("file_id", "name", "directory", "size", "extents")

    def __init__(
        self,
        file_id: int,
        name: str,
        directory: str,
        segment_size: int,
        segments: Optional[List[int]] = None,
        size: int = 0,
    ) -> None:
        self.file_id = file_id
        self.name = name
        self.directory = directory
        self.size = size
        self.extents = FileExtentMap(segment_size, segments)

    def to_record(self) -> dict:
        """JSON-serializable metadata record."""
        return {
            "id": self.file_id,
            "name": self.name,
            "dir": self.directory,
            "size": self.size,
            "segments": list(self.extents),
        }

    @classmethod
    def from_record(cls, record: dict, segment_size: int) -> "FileMeta":
        return cls(
            file_id=record["id"],
            name=record["name"],
            directory=record["dir"],
            segment_size=segment_size,
            segments=record["segments"],
            size=record["size"],
        )


class DdsFileSystem:
    """Flat-directory filesystem over segments, backed by an SPDK bdev."""

    def __init__(
        self,
        env: Environment,
        bdev: SpdkBdev,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> None:
        total_segments = bdev.disk.size // segment_size
        self.env = env
        self.bdev = bdev
        self.segment_size = segment_size
        self.allocator = SegmentAllocator(total_segments, segment_size)
        self._directories: Dict[str, List[int]] = {}
        self._files: Dict[int, FileMeta] = {}
        self._next_file_id = 1
        #: Sequence number of the last durably flushed metadata image.
        self._meta_seq = 0

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------
    def create_directory(self, name: str) -> None:
        """Make a new flat directory."""
        if not name:
            raise FileSystemError("directory name must be non-empty")
        if name in self._directories:
            raise FileSystemError(f"directory {name!r} already exists")
        self._directories[name] = []

    def list_directory(self, name: str) -> List[int]:
        """File ids in a directory."""
        if name not in self._directories:
            raise FileSystemError(f"no such directory: {name!r}")
        return list(self._directories[name])

    def create_file(self, directory: str, name: str) -> int:
        """Create an empty file; returns its file id."""
        if directory not in self._directories:
            raise FileSystemError(f"no such directory: {directory!r}")
        for file_id in self._directories[directory]:
            if self._files[file_id].name == name:
                raise FileSystemError(
                    f"file {name!r} already exists in {directory!r}"
                )
        file_id = self._next_file_id
        self._next_file_id += 1
        meta = FileMeta(file_id, name, directory, self.segment_size)
        self._files[file_id] = meta
        self._directories[directory].append(file_id)
        return file_id

    def delete_file(self, file_id: int) -> None:
        """Remove a file and free its segments."""
        meta = self._meta(file_id)
        for segment in meta.extents:
            self.allocator.free(segment)
        self._directories[meta.directory].remove(file_id)
        del self._files[file_id]

    def file_size(self, file_id: int) -> int:
        """Current logical size of the file in bytes."""
        return self._meta(file_id).size

    def file_mapping(self, file_id: int) -> FileExtentMap:
        """The file's segment vector (what the DPU keeps resident)."""
        return self._meta(file_id).extents

    @property
    def file_count(self) -> int:
        return len(self._files)

    def file_ids(self) -> List[int]:
        """Every file id in the namespace, sorted (deterministic order
        for whole-namespace sweeps like resharding plans)."""
        return sorted(self._files)

    def _meta(self, file_id: int) -> FileMeta:
        meta = self._files.get(file_id)
        if meta is None:
            raise FileSystemError(f"no such file id: {file_id}")
        return meta

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def write(self, file_id: int, offset: int, data: bytes) -> Generator:
        """Write ``data`` at ``offset``, extending the file as needed.

        Physical runs are submitted to the device concurrently and the
        write completes when all of them do.
        """
        meta = self._meta(file_id)
        if offset < 0:
            raise FileSystemError("negative offset")
        end = offset + len(data)
        while meta.extents.capacity < end:
            try:
                meta.extents.append_segment(self.allocator.allocate())
            except StorageFullError as exc:
                raise FileSystemError("device is full") from exc
        completions = []
        cursor = 0
        for run in meta.extents.translate(offset, len(data)):
            chunk = data[cursor : cursor + run.length]
            completions.append(self.bdev.submit_write(run.disk_offset, chunk))
            cursor += run.length
        if completions:
            try:
                yield self.env.all_of(completions)
            except DeviceError as exc:
                raise FileSystemError(f"device write failed: {exc}") from exc
        meta.size = max(meta.size, end)

    def preallocate(self, file_id: int, size: int) -> None:
        """Extend a file to ``size`` bytes without writing (fallocate).

        Benchmark databases are materialized this way: segments are
        allocated and the logical size set, with content left zeroed.
        """
        meta = self._meta(file_id)
        while meta.extents.capacity < size:
            try:
                meta.extents.append_segment(self.allocator.allocate())
            except StorageFullError as exc:
                raise FileSystemError("device is full") from exc
        meta.size = max(meta.size, size)

    def write_sync(self, file_id: int, offset: int, data: bytes) -> None:
        """Setup-time write: move the bytes with zero simulated time.

        Experiment loaders use this to materialize databases and KV logs
        without charging device time to the measurement window.
        """
        meta = self._meta(file_id)
        end = offset + len(data)
        self.preallocate(file_id, end)
        cursor = 0
        for run in meta.extents.translate(offset, len(data)):
            self.bdev.disk.write(
                run.disk_offset, data[cursor : cursor + run.length]
            )
            cursor += run.length
        meta.size = max(meta.size, end)

    def read_sync(self, file_id: int, offset: int, size: int) -> bytes:
        """Setup-time read: fetch the bytes with zero simulated time.

        The counterpart of :meth:`write_sync`, used when cloning a
        namespace into shard filesystems at deployment bring-up.
        """
        meta = self._meta(file_id)
        if offset < 0 or size < 0:
            raise FileSystemError("negative offset or size")
        if offset + size > meta.size:
            raise FileSystemError(
                f"read [{offset}, {offset + size}) beyond EOF at {meta.size}"
            )
        return b"".join(
            self.bdev.disk.read(run.disk_offset, run.length)
            for run in meta.extents.translate(offset, size)
        )

    def clone_into(self, other: "DdsFileSystem", chunk: int = 4 << 20) -> None:
        """Replicate this namespace and its contents into ``other``.

        ``other`` must be empty.  File ids are preserved exactly (shard
        filesystems must agree with the primary on ids, since the shard
        map hashes them), and content is copied with zero simulated time
        — this is deployment bring-up, not measured I/O.
        """
        if other._files or other._directories:
            raise FileSystemError("clone target must be an empty filesystem")
        for directory in self._directories:
            other.create_directory(directory)
        for file_id in sorted(self._files):
            meta = self._files[file_id]
            other._next_file_id = file_id
            created = other.create_file(meta.directory, meta.name)
            assert created == file_id
            other.preallocate(file_id, meta.size)
            for offset in range(0, meta.size, chunk):
                span = min(chunk, meta.size - offset)
                other.write_sync(
                    file_id, offset, self.read_sync(file_id, offset, span)
                )
        other._next_file_id = self._next_file_id

    def read(self, file_id: int, offset: int, size: int) -> Generator:
        """Read ``size`` bytes at ``offset``; returns the data."""
        meta = self._meta(file_id)
        if offset < 0 or size < 0:
            raise FileSystemError("negative offset or size")
        if offset + size > meta.size:
            raise FileSystemError(
                f"read [{offset}, {offset + size}) beyond EOF at {meta.size}"
            )
        completions = [
            self.bdev.submit_read(run.disk_offset, run.length)
            for run in meta.extents.translate(offset, size)
        ]
        if not completions:
            return b""
        try:
            results = yield self.env.all_of(completions)
        except DeviceError as exc:
            raise FileSystemError(f"device read failed: {exc}") from exc
        return b"".join(results)

    # ------------------------------------------------------------------
    # metadata persistence (segment 0, two alternating slots)
    # ------------------------------------------------------------------
    # The metadata segment holds TWO slots: A at offset 0, B at half the
    # segment.  Each flush writes the slot the *previous* flush did not,
    # so a crash mid-flush can tear at most the slot being written — the
    # other still holds a complete earlier image.  A slot is
    # ``length || json-payload || blake2b-16(payload)``: the digest makes
    # torn and truncated writes detectable, and the payload's
    # monotonically increasing ``seq`` picks the newer of two valid
    # slots at recovery.  Recovery therefore lands on exactly the
    # last-synced state or the new one, never a hybrid.

    @property
    def metadata_seq(self) -> int:
        """Sequence number of the last durably flushed metadata image."""
        return self._meta_seq

    def _slot_capacity(self) -> int:
        return self.segment_size // 2

    def _slot_offset(self, seq: int) -> int:
        base = SegmentAllocator.METADATA_SEGMENT * self.segment_size
        return base + (seq % 2) * self._slot_capacity()

    def _encode_slot(self, seq: int) -> bytes:
        payload = json.dumps(
            {
                "magic": _METADATA_MAGIC,
                "seq": seq,
                "segment_size": self.segment_size,
                "next_file_id": self._next_file_id,
                "directories": {
                    name: files for name, files in self._directories.items()
                },
                "files": [meta.to_record() for meta in self._files.values()],
            }
        ).encode()
        image = (
            len(payload).to_bytes(_SLOT_HEADER, "little")
            + payload
            + hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
        )
        if len(image) > self._slot_capacity():
            raise FileSystemError(
                "metadata no longer fits in its half of the reserved segment"
            )
        return image

    def serialize_metadata(self) -> bytes:
        """Encode the slot image the next flush would write."""
        return self._encode_slot(self._meta_seq + 1)

    def flush_metadata(self) -> Generator:
        """Persist metadata (device-timed) to the alternate slot."""
        seq = self._meta_seq + 1
        yield from self.bdev.write(
            self._slot_offset(seq), self._encode_slot(seq)
        )
        self._meta_seq = seq

    def flush_metadata_sync(self) -> None:
        """Bring-up flush: persist metadata with zero simulated time.

        Deployment constructors use this to establish the durability
        point a mid-run crash recovers to, without charging device time
        outside the measurement window.
        """
        seq = self._meta_seq + 1
        self.bdev.disk.write(self._slot_offset(seq), self._encode_slot(seq))
        self._meta_seq = seq

    @staticmethod
    def _decode_slot(disk, offset: int, capacity: int) -> Optional[dict]:
        """Parse one metadata slot; None if absent, torn, or corrupt."""
        length = int.from_bytes(disk.read(offset, _SLOT_HEADER), "little")
        if length == 0 or length + _SLOT_HEADER + _DIGEST_SIZE > capacity:
            return None
        payload = disk.read(offset + _SLOT_HEADER, length)
        digest = disk.read(offset + _SLOT_HEADER + length, _DIGEST_SIZE)
        if hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest() != (
            digest
        ):
            return None
        try:
            decoded = json.loads(payload.decode())
        except (UnicodeDecodeError, ValueError):
            return None
        if not isinstance(decoded, dict):
            return None
        if decoded.get("magic") != _METADATA_MAGIC:
            return None
        if not isinstance(decoded.get("seq"), int):
            return None
        return decoded

    @classmethod
    def recover(
        cls,
        env: Environment,
        bdev: SpdkBdev,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> "DdsFileSystem":
        """Rebuild a filesystem from the newest valid metadata slot."""
        base = SegmentAllocator.METADATA_SEGMENT * segment_size
        half = segment_size // 2
        best: Optional[dict] = None
        for slot in range(2):
            decoded = cls._decode_slot(bdev.disk, base + slot * half, half)
            if decoded is not None and (
                best is None or decoded["seq"] > best["seq"]
            ):
                best = decoded
        if best is None:
            raise FileSystemError("no valid metadata segment on this disk")
        fs = cls(env, bdev, segment_size=best["segment_size"])
        fs._meta_seq = best["seq"]
        fs._next_file_id = best["next_file_id"]
        fs._directories = {
            name: list(files)
            for name, files in best["directories"].items()
        }
        for record in best["files"]:
            meta = FileMeta.from_record(record, fs.segment_size)
            fs._files[meta.file_id] = meta
            for segment in meta.extents:
                fs.allocator.mark_allocated(segment)
        return fs
