"""Disk data planes.

:class:`RamDisk` holds the actual bytes (so filesystem correctness,
metadata persistence, and recovery are all testable for real), while
:class:`~repro.hardware.ssd.NvmeDevice` models the timing.
:class:`SpdkBdev` composes the two into the userspace asynchronous block
device the DPU file service drives (§4.3, §7: SPDK's ``spdk_bdev_read``/
``write`` against the NVMe driver).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..hardware.ssd import NvmeDevice
from ..sim import Environment, SeededRng
from ..structures.memory import zero_buffer

__all__ = ["RamDisk", "SpdkBdev"]


class RamDisk:
    """The byte content of a simulated SSD.

    Backed by :func:`~repro.structures.memory.zero_buffer`, so a
    multi-GB disk costs nothing until blocks are actually written.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("disk size must be positive")
        self.size = size
        self._data = zero_buffer(size)

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset``."""
        self._check(offset, size)
        return bytes(self._data[offset : offset + size])

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``."""
        self._check(offset, len(data))
        self._data[offset : offset + len(data)] = data

    def _check(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.size:
            raise ValueError(
                f"access [{offset}, {offset + size}) outside disk "
                f"of {self.size} bytes"
            )


class SpdkBdev:
    """Userspace async block device: timing (NVMe model) plus data (RamDisk).

    All operations are process generators completing when the simulated
    device does; reads return the bytes.  This is the only layer that
    touches both the timing model and the data plane, so everything above
    it (file service, offload engine) is automatically consistent.
    """

    def __init__(
        self,
        env: Environment,
        disk: RamDisk,
        device: Optional[NvmeDevice] = None,
        rng: Optional[SeededRng] = None,
    ) -> None:
        self.env = env
        self.disk = disk
        self.device = device if device is not None else NvmeDevice(
            env, rng=rng
        )

    def read(self, offset: int, size: int) -> Generator:
        """Async read; yields until the device completes, returns bytes."""
        yield from self.device.read(size)
        return self.disk.read(offset, size)

    def write(self, offset: int, data: bytes) -> Generator:
        """Async write; yields until the device completes."""
        yield from self.device.write(len(data))
        self.disk.write(offset, data)

    def submit_read(self, offset: int, size: int):
        """Fire-and-forget read returning the completion event."""
        return self.env.process(self.read(offset, size))

    def submit_write(self, offset: int, data: bytes):
        """Fire-and-forget write returning the completion event."""
        return self.env.process(self.write(offset, data))
