"""repro — reproduction of DDS: DPU-optimized Disaggregated Storage.

DDS (VLDB 2024) offloads disaggregated-storage read processing from the
storage server's host CPUs onto its DPU.  This package reimplements the
system in Python: the paper's concurrent data structures are built for
real (:mod:`repro.structures`), while the hardware they ran on — a
BlueField-2 DPU, NVMe SSDs, PCIe DMA, a 100 Gbps network — is reproduced
as a calibrated discrete-event simulation (:mod:`repro.sim`,
:mod:`repro.hardware`).  On top sit the DDS storage path, network path,
and offload engine (:mod:`repro.core`), the baselines the paper compares
against (:mod:`repro.baselines`), and the two production-system
integrations (:mod:`repro.apps`).
"""

__version__ = "1.0.0"
