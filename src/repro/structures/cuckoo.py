"""The DDS cache table: a cuckoo hash table with bucket chaining (§6.1).

Design requirements from Table 2: lookups must not compromise DPU packet
processing (tens of millions of ops/s => worst-case constant lookups,
which cuckoo hashing provides by probing exactly two buckets), while
inserts arrive at file-write rate (millions of ops/s => collisions on
insert are absorbed by *chaining* extra items in a bucket rather than
failing or resizing).  Capacity is fixed up front — the user declares the
maximum number of cache items so the DPU memory can be reserved and the
table never resizes at runtime.

Concurrency model (Table 2): a single writer (the file service executing
``Cache``/``Invalidate``) and multiple readers (traffic director and
offload engine executing ``OffPred``/``OffFunc``).  Writes take the
writer lock; reads are lock-free.  Cuckoo displacement inserts the moved
item into its alternate bucket *before* removing the original, so a
concurrent reader never observes the key missing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator, List, Optional, Tuple

__all__ = ["CacheTableStats", "CuckooCacheTable"]

_SALT1 = 0x9E3779B97F4A7C15
_SALT2 = 0xC2B2AE3D27D4EB4F


@dataclass
class CacheTableStats:
    """Operation counters for one cache table."""

    inserts: int = 0
    lookups: int = 0
    hits: int = 0
    deletes: int = 0
    displacements: int = 0
    chained_inserts: int = 0
    rejected_full: int = 0
    probe_entries: int = field(default=0, repr=False)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CuckooCacheTable:
    """Fixed-capacity 2-choice cuckoo hash table with bucket chaining."""

    def __init__(
        self,
        max_items: int,
        slots_per_bucket: int = 4,
        max_kicks: int = 32,
    ) -> None:
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        if slots_per_bucket < 1:
            raise ValueError("slots_per_bucket must be >= 1")
        self.max_items = max_items
        self.slots_per_bucket = slots_per_bucket
        self.max_kicks = max_kicks
        # Size the bucket array for ~70% nominal load at capacity, with a
        # floor so tiny tables still have two distinct buckets to probe.
        nominal = max(2, int(max_items / (0.7 * slots_per_bucket)) + 1)
        self._nbuckets = nominal
        self._buckets: List[List[Tuple[Hashable, Any]]] = [
            [] for _ in range(nominal)
        ]
        self._count = 0
        self._writer_lock = threading.Lock()
        self.stats = CacheTableStats()

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------
    def _index1(self, key: Hashable) -> int:
        return (hash(key) ^ _SALT1) % self._nbuckets

    def _index2(self, key: Hashable) -> int:
        return ((hash(key) * 0x100000001B3) ^ _SALT2) % self._nbuckets

    def _alternate(self, key: Hashable, index: int) -> int:
        one, two = self._index1(key), self._index2(key)
        return two if index == one else one

    # ------------------------------------------------------------------
    # reads (lock-free)
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable, default: Any = None) -> Any:
        """Worst-case constant-time lookup: probes exactly two buckets."""
        self.stats.lookups += 1
        for index in (self._index1(key), self._index2(key)):
            bucket = self._buckets[index]
            for entry_key, entry_value in bucket:
                self.stats.probe_entries += 1
                if entry_key == key:
                    self.stats.hits += 1
                    return entry_value
        return default

    def __contains__(self, key: Hashable) -> bool:
        sentinel = object()
        return self.lookup(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self._count

    @property
    def load_factor(self) -> float:
        """Items stored relative to declared capacity."""
        return self._count / self.max_items

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate all entries (test/debug use; not concurrency-safe)."""
        for bucket in self._buckets:
            yield from bucket

    # ------------------------------------------------------------------
    # writes (single writer)
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, value: Any) -> bool:
        """Insert or update; False when the table is at declared capacity."""
        with self._writer_lock:
            self.stats.inserts += 1
            if self._update_in_place(key, value):
                return True
            if self._count >= self.max_items:
                self.stats.rejected_full += 1
                return False
            self._place(key, value)
            self._count += 1
            return True

    def delete(self, key: Hashable) -> bool:
        """Remove ``key``; True if it was present."""
        with self._writer_lock:
            self.stats.deletes += 1
            for index in (self._index1(key), self._index2(key)):
                bucket = self._buckets[index]
                for position, (entry_key, _val) in enumerate(bucket):
                    if entry_key == key:
                        del bucket[position]
                        self._count -= 1
                        return True
            return False

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _update_in_place(self, key: Hashable, value: Any) -> bool:
        for index in (self._index1(key), self._index2(key)):
            bucket = self._buckets[index]
            for position, (entry_key, _val) in enumerate(bucket):
                if entry_key == key:
                    bucket[position] = (key, value)
                    return True
        return False

    def _place(self, key: Hashable, value: Any) -> None:
        """Standard cuckoo placement, falling back to chaining.

        Chaining (appending past the nominal slot count) bounds insert
        latency when a displacement cycle is hit, at the cost of slightly
        longer probes in that bucket — the trade §6.1 describes.
        """
        index1, index2 = self._index1(key), self._index2(key)
        for index in (index1, index2):
            if len(self._buckets[index]) < self.slots_per_bucket:
                self._buckets[index].append((key, value))
                return

        # Both buckets nominally full: displace residents along a cuckoo
        # path for up to max_kicks moves.
        index = index1
        carried_key, carried_value = key, value
        for _kick in range(self.max_kicks):
            bucket = self._buckets[index]
            victim_key, victim_value = bucket[0]
            alternate = self._alternate(victim_key, index)
            if len(self._buckets[alternate]) < self.slots_per_bucket:
                # Move the victim (insert-then-remove so readers always
                # find it), then take its slot for the carried item.
                self._buckets[alternate].append((victim_key, victim_value))
                bucket[0] = (carried_key, carried_value)
                self.stats.displacements += 1
                return
            # Swap the carried item in and continue with the victim.
            bucket[0] = (carried_key, carried_value)
            carried_key, carried_value = victim_key, victim_value
            index = alternate
            self.stats.displacements += 1

        # Displacement failed: chain the carried item in its first bucket.
        self._buckets[self._index1(carried_key)].append(
            (carried_key, carried_value)
        )
        self.stats.chained_inserts += 1
