"""The DDS cache table: a cuckoo hash table with bucket chaining (§6.1).

Design requirements from Table 2: lookups must not compromise DPU packet
processing (tens of millions of ops/s => worst-case constant lookups,
which cuckoo hashing provides by probing exactly two buckets), while
inserts arrive at file-write rate (millions of ops/s => collisions on
insert are absorbed by *chaining* extra items in a bucket rather than
failing or resizing).  Capacity is fixed up front — the user declares the
maximum number of cache items so the DPU memory can be reserved and the
table never resizes at runtime.

Concurrency model (Table 2): a single writer (the file service executing
``Cache``/``Invalidate``) and multiple readers (traffic director and
offload engine executing ``OffPred``/``OffFunc``).  Writes take the
writer lock; reads are lock-free.  The reader guarantee is: **a key that
has been inserted and not deleted is visible to every lookup**, at every
instant.  Three mechanisms uphold it:

* Cuckoo displacement precomputes the whole displacement path, then
  executes the moves *backwards* — each displaced item is appended to
  its destination bucket before its source slot is overwritten (the
  MemC3/libcuckoo discipline).  A reader may transiently see a key in
  both buckets, which lookup tolerates; it can never see it in neither.
  (The original forward walk parked the carried victim outside the table
  for a full kick iteration; the deterministic interleaving harness in
  :mod:`repro.concurrency` reproduces that reader-miss from a seed.)
* Deletion replaces the bucket list wholesale (copy-on-write) instead of
  ``del bucket[i]``, which would shift entries under a concurrent
  reader's iterator and make it skip an unrelated key.
* Read-side stats are accumulated locally per call and published with
  :class:`~repro.structures.atomics.AtomicCounter` adds, so concurrent
  readers don't corrupt them (see :class:`CacheTableStats` for the
  exact-vs-approximate contract).

All shared-state accesses pass a ``yield_point`` schedule hook (no-op in
production) so the interleaving harness can context-switch there.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Iterator, List, Optional, Tuple

from repro.concurrency.hooks import yield_point

from .atomics import AtomicCounter

__all__ = ["CacheTableStats", "CuckooCacheTable"]

_SALT1 = 0x9E3779B97F4A7C15
_SALT2 = 0xC2B2AE3D27D4EB4F


class CacheTableStats:
    """Operation counters for one cache table.

    Exactness contract:

    * **Writer-side counters are exact** — ``inserts``, ``deletes``,
      ``displacements``, ``chained_inserts``, ``rejected_full`` are only
      mutated under the writer lock.
    * **Read-side counters are exact but published per call** —
      ``lookups``, ``hits``, ``probe_entries`` are accumulated in locals
      during a lookup and published at its end with atomic adds, so
      concurrent readers never lose updates.  A reader mid-lookup has not
      published yet, so a snapshot taken *during* concurrent reads can
      trail reality by up to one lookup per in-flight reader; ratios like
      :attr:`hit_rate` are therefore momentarily approximate, and exact
      once readers quiesce.
    """

    __slots__ = (
        "inserts",
        "deletes",
        "displacements",
        "chained_inserts",
        "rejected_full",
        "_lookups",
        "_hits",
        "_probe_entries",
    )

    def __init__(self) -> None:
        self.inserts = 0
        self.deletes = 0
        self.displacements = 0
        self.chained_inserts = 0
        self.rejected_full = 0
        self._lookups = AtomicCounter(0)
        self._hits = AtomicCounter(0)
        self._probe_entries = AtomicCounter(0)

    # -- read-side counters (atomic) -----------------------------------
    @property
    def lookups(self) -> int:
        return self._lookups.load()

    @property
    def hits(self) -> int:
        return self._hits.load()

    @property
    def probe_entries(self) -> int:
        return self._probe_entries.load()

    def record_lookup(self, probes: int, hit: bool) -> None:
        """Publish one lookup's locally-accumulated counters."""
        self._lookups.fetch_add(1)
        if probes:
            self._probe_entries.fetch_add(probes)
        if hit:
            self._hits.fetch_add(1)

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheTableStats(inserts={self.inserts}, "
            f"lookups={self.lookups}, hits={self.hits}, "
            f"deletes={self.deletes}, displacements={self.displacements}, "
            f"chained_inserts={self.chained_inserts}, "
            f"rejected_full={self.rejected_full})"
        )


class CuckooCacheTable:
    """Fixed-capacity 2-choice cuckoo hash table with bucket chaining."""

    _DDSLINT_EXEMPT = {
        "_buckets": (
            "mutated only in _place/_update_in_place, which run under "
            "the writer lock held by their sole callers insert/delete; "
            "lock-free readers are protected by the append-before-erase "
            "and copy-on-write move order, checked per schedule by "
            "CuckooVisibilityChecker"
        ),
        "stats": (
            "writer-side counters are mutated only under the writer "
            "lock (directly or in _place); read-side counters go "
            "through AtomicCounter in CacheTableStats"
        ),
    }

    def __init__(
        self,
        max_items: int,
        slots_per_bucket: int = 4,
        max_kicks: int = 32,
    ) -> None:
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        if slots_per_bucket < 1:
            raise ValueError("slots_per_bucket must be >= 1")
        self.max_items = max_items
        self.slots_per_bucket = slots_per_bucket
        self.max_kicks = max_kicks
        # Size the bucket array for ~70% nominal load at capacity, with a
        # floor so tiny tables still have two distinct buckets to probe.
        nominal = max(2, int(max_items / (0.7 * slots_per_bucket)) + 1)
        self._nbuckets = nominal
        # Buckets materialize on first write: a fresh million-item table
        # is one pointer array, not hundreds of thousands of empty
        # lists.  ``None`` reads as an empty bucket everywhere.
        self._buckets: List[Optional[List[Tuple[Hashable, Any]]]] = (
            [None] * nominal
        )
        self._count = 0
        self._writer_lock = threading.Lock()
        self.stats = CacheTableStats()
        self._key = ("cuckoo", id(self))

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------
    def _index1(self, key: Hashable) -> int:
        return (hash(key) ^ _SALT1) % self._nbuckets

    def _index2(self, key: Hashable) -> int:
        return ((hash(key) * 0x100000001B3) ^ _SALT2) % self._nbuckets

    def _alternate(self, key: Hashable, index: int) -> int:
        one, two = self._index1(key), self._index2(key)
        return two if index == one else one

    def _bucket_key(self, index: int) -> Tuple[str, int, int]:
        """DPOR location key for one bucket's contents."""
        return ("cuckoo.bucket", id(self), index)

    # ------------------------------------------------------------------
    # reads (lock-free)
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable, default: Any = None) -> Any:
        """Worst-case constant-time lookup: probes exactly two buckets.

        Stats are accumulated locally and published once at the end, so
        any number of concurrent readers keep the counters exact.
        """
        probes = 0
        found = False
        result = default
        for index in (self._index1(key), self._index2(key)):
            yield_point("cuckoo.probe", self._bucket_key(index))
            bucket = self._buckets[index] or ()
            for entry_key, entry_value in bucket:
                probes += 1
                if entry_key == key:
                    found = True
                    result = entry_value
                    break
            if found:
                break
        self.stats.record_lookup(probes, found)
        return result

    def __contains__(self, key: Hashable) -> bool:
        sentinel = object()
        return self.lookup(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self._count

    @property
    def load_factor(self) -> float:
        """Items stored relative to declared capacity."""
        return self._count / self.max_items

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate all entries (test/debug use; not concurrency-safe)."""
        for bucket in self._buckets:
            yield from bucket or ()

    # ------------------------------------------------------------------
    # writes (single writer)
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, value: Any) -> bool:
        """Insert or update; False when the table is at declared capacity."""
        yield_point("cuckoo.insert", self._key)
        with self._writer_lock:
            self.stats.inserts += 1
            if self._update_in_place(key, value):
                return True
            if self._count >= self.max_items:
                self.stats.rejected_full += 1
                return False
            self._place(key, value)
            self._count += 1
            return True

    def delete(self, key: Hashable) -> bool:
        """Remove ``key``; True if it was present.

        The bucket list is replaced wholesale rather than edited with
        ``del``: a lock-free reader mid-iteration keeps its consistent
        snapshot, instead of having entries shift underneath it (which
        could make it skip — and "miss" — a key unrelated to the one
        being deleted).
        """
        yield_point("cuckoo.delete", self._key)
        with self._writer_lock:
            self.stats.deletes += 1
            for index in (self._index1(key), self._index2(key)):
                bucket = self._buckets[index] or ()
                for position, (entry_key, _val) in enumerate(bucket):
                    if entry_key == key:
                        yield_point(
                            "cuckoo.bucket_replace", self._bucket_key(index)
                        )
                        self._buckets[index] = (
                            bucket[:position] + bucket[position + 1 :]
                        )
                        self._count -= 1
                        return True
            return False

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bucket_len(self, index: int) -> int:
        bucket = self._buckets[index]
        return 0 if bucket is None else len(bucket)

    def _materialize(self, index: int) -> List[Tuple[Hashable, Any]]:
        """The bucket list at ``index``, created on first write.

        The single list assignment happens under the writer lock and is
        atomic for lock-free readers (who treat ``None`` as empty).
        """
        bucket = self._buckets[index]
        if bucket is None:
            bucket = []
            # ddslint: disable=DDS201 -- atomic None->list store invisible to readers; callers yield first
            self._buckets[index] = bucket
        return bucket

    def _update_in_place(self, key: Hashable, value: Any) -> bool:
        for index in (self._index1(key), self._index2(key)):
            bucket = self._buckets[index] or ()
            for position, (entry_key, _val) in enumerate(bucket):
                if entry_key == key:
                    # Single-slot tuple swap: atomic for readers.
                    yield_point(
                        "cuckoo.bucket_update", self._bucket_key(index)
                    )
                    bucket[position] = (key, value)
                    return True
        return False

    def _find_path(self, start: int) -> Optional[List[int]]:
        """Walk victims from ``start`` to a bucket with nominal space.

        Read-only: returns the bucket index chain ``[start, ..., free]``
        or None when no free bucket is reachable within ``max_kicks``
        (or the walk revisits a bucket, which the backward-move executor
        does not support).  Victims are always slot 0, matching the
        eviction choice of the original forward walk.
        """
        path = [start]
        seen = {start}
        index = start
        for _kick in range(self.max_kicks):
            victim_key, _victim_value = self._buckets[index][0]
            alternate = self._alternate(victim_key, index)
            if alternate in seen:
                return None
            path.append(alternate)
            if self._bucket_len(alternate) < self.slots_per_bucket:
                return path
            seen.add(alternate)
            index = alternate
        return None

    def _place(self, key: Hashable, value: Any) -> None:
        """Cuckoo placement with lock-free-reader-safe move order.

        The displacement path is precomputed (reads only), then executed
        *backwards*: the item nearest the free slot moves first, and
        every move appends to the destination bucket **before** erasing
        the source slot.  Readers can transiently observe an item in two
        buckets (benign — lookup returns the first match and both carry
        the same value) but never in zero buckets.  Chaining (appending
        past the nominal slot count) bounds insert latency when no path
        exists, at the cost of slightly longer probes in that bucket —
        the trade §6.1 describes.
        """
        index1, index2 = self._index1(key), self._index2(key)
        for index in (index1, index2):
            if self._bucket_len(index) < self.slots_per_bucket:
                yield_point("cuckoo.bucket_append", self._bucket_key(index))
                self._materialize(index).append((key, value))
                return

        path = self._find_path(index1)
        if path is None:
            # No displacement path: chain the *new* item in its first
            # bucket.  Nothing is ever removed, so readers are unaffected.
            yield_point("cuckoo.bucket_append", self._bucket_key(index1))
            self._materialize(index1).append((key, value))
            self.stats.chained_inserts += 1
            return

        # Execute moves from the free end backwards.  For each hop
        # src -> dst: copy src's slot-0 item into dst, then rebuild src
        # without slot 0 (copy-on-write, like delete()).  After the final
        # hop, path[0] has nominal space for the new key.
        for hop in range(len(path) - 2, -1, -1):
            src, dst = path[hop], path[hop + 1]
            moved = self._buckets[src][0]
            yield_point("cuckoo.bucket_append", self._bucket_key(dst))
            self._materialize(dst).append(moved)
            yield_point("cuckoo.bucket_replace", self._bucket_key(src))
            self._buckets[src] = self._buckets[src][1:]
            self.stats.displacements += 1
        yield_point("cuckoo.bucket_append", self._bucket_key(index1))
        self._materialize(index1).append((key, value))
