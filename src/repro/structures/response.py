"""Zero-copy response buffer with three tail pointers (§4.3, Figure 10).

To avoid copying I/O results, the DPU file service *pre-allocates* the
response space for each request before submitting the I/O, and points the
storage driver's output at that space.  Because I/O completes out of
order but responses must be delivered in request order, the buffer tracks
three tails:

* ``TailA(llocated)`` — end of pre-allocated response space;
* ``TailB(uffered)`` — end of the *contiguous prefix* of responses whose
  I/O has finished (successfully or not);
* ``TailC(ompleted)`` — end of the responses already DMA-delivered to the
  host response ring.

``TailC <= TailB <= TailA`` always holds.  A DMA write is issued when
``TailB - TailC`` reaches the configured delivery batch size.

Pointer and queue mutations pass ``yield_point`` schedule hooks (no-ops
in production) so the deterministic interleaving harness in
:mod:`repro.concurrency` can interleave allocate / complete / harvest /
deliver steps and check the tail ordering at every point.  Completion
publishes the payload *before* the status flip: the status is the
linearization point the harvester polls, so a span must never be
harvestable while its payload is still unset.
"""

from __future__ import annotations

from collections import deque
from enum import IntEnum
from typing import Deque, List, Optional

from repro.concurrency.hooks import yield_point

__all__ = ["ResponseStatus", "PreallocatedResponse", "ResponseBuffer"]


class ResponseStatus(IntEnum):
    """Error-code field of a pre-allocated response."""

    PENDING = 0
    SUCCESS = 1
    IO_ERROR = 2
    INVALID_FILE = 3
    OUT_OF_RANGE = 4


class PreallocatedResponse:
    """One reserved response span: header plus expected read data."""

    __slots__ = ("request_id", "offset", "size", "status", "payload")

    def __init__(self, request_id: int, offset: int, size: int) -> None:
        self.request_id = request_id
        self.offset = offset
        self.size = size
        self.status = ResponseStatus.PENDING
        self.payload: Optional[bytes] = None

    def complete(
        self,
        status: ResponseStatus = ResponseStatus.SUCCESS,
        payload: Optional[bytes] = None,
    ) -> None:
        """I/O completion callback: fill in the outcome (any order)."""
        if self.status is not ResponseStatus.PENDING:
            raise RuntimeError("response completed twice")
        if status is ResponseStatus.PENDING:
            raise ValueError("cannot complete a response as PENDING")
        # Payload first, status last: the status flip is what makes the
        # span harvestable, so it must publish a fully-written response.
        self.payload = payload
        yield_point("resp.complete", ("resp.span", id(self)))
        self.status = status


class ResponseBuffer:
    """Order-preserving pre-allocation buffer for file-service responses."""

    #: Fixed response-header bytes (Figure 9: response id, error code, size).
    HEADER_BYTES = 16

    _DDSLINT_EXEMPT = {
        "tail_allocated": (
            "single-writer: only the allocation path (request intake) "
            "advances TailA; readers tolerate a stale snapshot"
        ),
        "tail_buffered": (
            "single-writer: only the harvester advances TailB"
        ),
        "tail_completed": (
            "single-writer: only the DMA-completion path advances TailC"
        ),
        "_pending": (
            "SPSC deque: allocation appends, the harvester popleft-s; "
            "deque ends are GIL-atomic and the roles touch opposite ends"
        ),
        "_buffered": (
            "SPSC deque: the harvester appends, delivery popleft-s; "
            "deque ends are GIL-atomic and the roles touch opposite ends"
        ),
    }

    def __init__(self, capacity: int, delivery_batch: int = 1) -> None:
        if capacity <= self.HEADER_BYTES:
            raise ValueError("capacity too small for one response")
        if delivery_batch < 1:
            raise ValueError("delivery_batch must be >= 1")
        self.capacity = capacity
        self.delivery_batch = delivery_batch
        self.tail_allocated = 0  # TailA
        self.tail_buffered = 0   # TailB
        self.tail_completed = 0  # TailC
        self._pending: Deque[PreallocatedResponse] = deque()
        self._buffered: Deque[PreallocatedResponse] = deque()

    # ------------------------------------------------------------------
    # allocation (request arrival)
    # ------------------------------------------------------------------
    def response_size(self, data_bytes: int) -> int:
        """On-ring footprint of a response carrying ``data_bytes``."""
        return self.HEADER_BYTES + data_bytes

    def allocate(
        self, request_id: int, data_bytes: int
    ) -> Optional[PreallocatedResponse]:
        """Reserve response space ahead of I/O submission.

        Returns None when the buffer cannot hold the response until
        currently-undelivered responses drain (backpressure).
        """
        size = self.response_size(data_bytes)
        if size > self.capacity:
            raise ValueError("response exceeds buffer capacity")
        yield_point("resp.alloc", ("resp", id(self), "tailA"))
        if self.tail_allocated + size - self.tail_completed > self.capacity:
            return None
        response = PreallocatedResponse(request_id, self.tail_allocated, size)
        self.tail_allocated += size
        self._pending.append(response)
        return response

    # ------------------------------------------------------------------
    # harvesting (file-service periodic check)
    # ------------------------------------------------------------------
    def harvest(self) -> int:
        """Advance TailB over the completed prefix; returns spans moved."""
        moved = 0
        while self._pending and (
            self._pending[0].status is not ResponseStatus.PENDING
        ):
            yield_point("resp.harvest", ("resp", id(self), "tailB"))
            response = self._pending.popleft()
            self.tail_buffered += response.size
            self._buffered.append(response)
            moved += 1
        return moved

    # ------------------------------------------------------------------
    # delivery (DMA write back to the host response ring)
    # ------------------------------------------------------------------
    @property
    def deliverable_bytes(self) -> int:
        """TailB - TailC: bytes ready to DMA to the host."""
        return self.tail_buffered - self.tail_completed

    def should_deliver(self) -> bool:
        """True when the buffered batch has reached the delivery size."""
        return self.deliverable_bytes >= self.delivery_batch

    def take_delivery(self, force: bool = False) -> List[PreallocatedResponse]:
        """Pop the batch for one DMA write (empty unless batch-ready).

        ``force`` delivers whatever is buffered regardless of batch size
        (used to flush on idle).  The caller advances TailC via
        :meth:`mark_delivered` once the DMA write completes.
        """
        if not force and not self.should_deliver():
            return []
        # Drain with popleft rather than snapshot-then-clear: a harvest
        # that lands between ``list(self._buffered)`` and ``.clear()``
        # would have its responses silently discarded (never delivered,
        # TailC stuck behind TailB forever).  popleft only removes what
        # this call will actually return.
        batch: List[PreallocatedResponse] = []
        while self._buffered:
            yield_point("resp.deliver", ("resp", id(self), "buffered"))
            batch.append(self._buffered.popleft())
        return batch

    def mark_delivered(self, batch: List[PreallocatedResponse]) -> None:
        """DMA-write completion: advance TailC past the batch."""
        for response in batch:
            if response.offset != self.tail_completed:
                raise RuntimeError("responses delivered out of order")
            yield_point("resp.mark", ("resp", id(self), "tailC"))
            self.tail_completed += response.size

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert TailC <= TailB <= TailA and capacity bounds."""
        if not (
            self.tail_completed
            <= self.tail_buffered
            <= self.tail_allocated
        ):
            raise AssertionError(
                "tail ordering violated: "
                f"C={self.tail_completed} B={self.tail_buffered} "
                f"A={self.tail_allocated}"
            )
        if self.tail_allocated - self.tail_completed > self.capacity:
            raise AssertionError("allocation overran buffer capacity")
