"""Host-DPU message rings (§4.1, Figures 7 and 8).

Three designs, matching the paper's Figure 17 comparison:

* :class:`ProgressRing` — DDS's contribution: a lock-free
  multi-producer/single-consumer byte ring with a third *progress* pointer
  that enables concurrent insertions and natural batching.  Producers
  reserve space by CAS on the tail, copy their record, then add its size
  to the progress counter; the consumer may read the whole
  ``[head, tail)`` region only when ``progress == tail``, i.e. every
  reservation has been filled.
* :class:`FarmRing` — the FaRM-style baseline: per-slot completion flags,
  one message consumed (and released) at a time, no batching.
* :class:`LockRing` — a mutex around the whole insertion.

All three carry variable-length records encoded as a 4-byte little-endian
length prefix followed by the payload, mirroring the request encoding of
Figure 9 where the header carries the request size.

These are *real* thread-safe implementations, exercised by multi-threaded
stress tests **and** by the deterministic interleaving harness in
:mod:`repro.concurrency`: every shared-state access goes through an
:class:`~repro.structures.atomics.AtomicCounter` (which yields before its
linearization step) or an explicit ``yield_point`` before a buffer/slot
write, so the virtual scheduler can context-switch at each one.  The DMA
timing model that turns operation counts into Figure 17's
throughput/latency numbers lives in :mod:`repro.core.dma_ring`.
"""

from __future__ import annotations

import struct
import threading
from typing import List, Optional

from repro.concurrency.hooks import yield_point

from .atomics import AtomicCounter
from .memory import zero_buffer

__all__ = ["ProgressRing", "FarmRing", "LockRing", "RECORD_HEADER"]

#: Per-record framing: little-endian uint32 payload length.
RECORD_HEADER = struct.Struct("<I")


class _ByteRing:
    """Shared byte-buffer mechanics: wrap-around reads and writes."""

    _DDSLINT_EXEMPT = {
        "_buffer": (
            "byte ranges are owned exclusively by the writer: producers "
            "CAS-reserve disjoint [tail, tail+size) spans before copying "
            "(ProgressRing) or hold the ring lock (LockRing)"
        ),
    }

    def __init__(self, capacity: int) -> None:
        if capacity <= RECORD_HEADER.size:
            raise ValueError("capacity too small for a single record")
        self.capacity = capacity
        self._buffer = zero_buffer(capacity)

    def _write_at(self, offset: int, data: bytes) -> None:
        pos = offset % self.capacity
        end = pos + len(data)
        if end <= self.capacity:
            self._buffer[pos:end] = data  # ddslint: disable=DDS201 -- callers yield before invoking; the range was CAS-reserved or is lock-held
        else:
            first = self.capacity - pos
            self._buffer[pos:] = data[:first]  # ddslint: disable=DDS201 -- callers yield before invoking; the range was CAS-reserved or is lock-held
            self._buffer[: end - self.capacity] = data[first:]  # ddslint: disable=DDS201 -- callers yield before invoking; the range was CAS-reserved or is lock-held

    def _read_at(self, offset: int, size: int) -> bytes:
        pos = offset % self.capacity
        end = pos + size
        if end <= self.capacity:
            return bytes(self._buffer[pos:end])
        return bytes(self._buffer[pos:]) + bytes(
            self._buffer[: end - self.capacity]
        )

    @staticmethod
    def record_size(payload: bytes) -> int:
        """Bytes a payload occupies on the ring, including framing."""
        return RECORD_HEADER.size + len(payload)

    def _split_records(self, start: int, end: int) -> List[bytes]:
        """Parse the length-prefixed records in ``[start, end)``."""
        records: List[bytes] = []
        offset = start
        while offset < end:
            (length,) = RECORD_HEADER.unpack(
                self._read_at(offset, RECORD_HEADER.size)
            )
            offset += RECORD_HEADER.size
            records.append(self._read_at(offset, length))
            offset += length
        if offset != end:
            raise RuntimeError("corrupt ring: records overrun the batch")
        return records


class ProgressRing(_ByteRing):
    """DDS's progress-pointer lock-free MPSC ring (Figure 8).

    ``max_progress`` is the paper's *maximum allowable progress* hyper-
    parameter ``M``: the largest amount of unconsumed data producers may
    accumulate, which bounds the batch the consumer picks up in one go.
    """

    def __init__(self, capacity: int, max_progress: Optional[int] = None):
        super().__init__(capacity)
        if max_progress is None:
            max_progress = capacity
        if not 0 < max_progress <= capacity:
            raise ValueError("max_progress must be in (0, capacity]")
        self.max_progress = max_progress
        # Monotonic byte offsets; buffer indices are offsets mod capacity.
        # Physical layout note (Figure 7): progress precedes tail so one
        # DMA read fetches both for the consumer's equality check.
        self._progress = AtomicCounter(0)
        self._tail = AtomicCounter(0)
        self._head = AtomicCounter(0)

    # ------------------------------------------------------------------
    # producer side (any thread) — Figure 8a
    # ------------------------------------------------------------------
    def try_enqueue(self, payload: bytes) -> bool:
        """Insert one record; False means RETRY (batch limit reached)."""
        size = self.record_size(payload)
        if size > self.max_progress:
            raise ValueError(
                f"record of {size} bytes exceeds max_progress "
                f"{self.max_progress}"
            )
        while True:
            tail = self._tail.load()
            head = self._head.load()
            if tail - head + size > self.max_progress:
                return False  # insertions are outpacing consumption
            if self._tail.compare_and_swap(tail, tail + size):
                break
            # Another producer reserved first; re-check and retry the CAS.
        # Each reservation owns a disjoint byte range, so the write key is
        # per-offset: concurrent producers' copies commute.
        yield_point("ring.write_header", ("ringbuf", id(self), tail))
        self._write_at(tail, RECORD_HEADER.pack(len(payload)))
        yield_point("ring.write_payload", ("ringbuf", id(self), tail))
        self._write_at(tail + RECORD_HEADER.size, payload)
        self._progress.fetch_add(size)
        return True

    # ------------------------------------------------------------------
    # consumer side (single thread) — Figure 8b
    # ------------------------------------------------------------------
    def try_consume(self) -> Optional[List[bytes]]:
        """Drain the current batch; None means RETRY (or empty).

        The load order is the critical order highlighted in Figure 8b:
        progress first, then tail.  If they are equal, every reservation
        up to tail has been fully written, so the whole region is safe to
        read in one pass.
        """
        progress = self._progress.load()
        tail = self._tail.load()
        head = self._head.load()
        if progress != tail or tail == head:
            return None
        yield_point("ring.read_batch", ("ringbuf", id(self), "read"))
        records = self._split_records(head, tail)
        self._head.store(tail)
        return records

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_bytes(self) -> int:
        """Reserved-but-unconsumed bytes (tail - head)."""
        return self._tail.load() - self._head.load()

    @property
    def pointers(self) -> tuple:
        """(head, progress, tail) snapshot, for tests and invariants."""
        return (self._head.load(), self._progress.load(), self._tail.load())


class FarmRing:
    """FaRM-style ring: per-slot completion flags, one message at a time.

    Producers reserve a fixed-size slot, write the payload, then set the
    slot's flag.  The consumer polls the flag at the head slot; after
    reading a message it *releases* the slot by clearing the flag (the
    extra DMA write the paper charges this design for).
    """

    _DDSLINT_EXEMPT = {
        "_payloads": (
            "slot ownership: the producer that won the tail CAS is the "
            "only writer of its slot until the flag publishes it; the "
            "consumer clears it only after observing the flag"
        ),
        "_head": (
            "single-consumer field: only try_consume advances it"
        ),
    }

    def __init__(self, slots: int, slot_size: int = 256) -> None:
        if slots < 1:
            raise ValueError("need at least one slot")
        if slot_size <= RECORD_HEADER.size:
            raise ValueError("slot_size too small for a record")
        self.slots = slots
        self.slot_size = slot_size
        self._payloads: List[Optional[bytes]] = [None] * slots
        self._flags = [AtomicCounter(0) for _ in range(slots)]
        self._tail = AtomicCounter(0)
        self._released = AtomicCounter(0)  # messages released by consumer
        self._head = 0  # single consumer

    def try_enqueue(self, payload: bytes) -> bool:
        """Insert one message; False when the ring is full."""
        if RECORD_HEADER.size + len(payload) > self.slot_size:
            raise ValueError("payload exceeds slot size")
        while True:
            tail = self._tail.load()
            if tail - self._released.load() >= self.slots:
                return False  # ring full: oldest slot not yet released
            if self._tail.compare_and_swap(tail, tail + 1):
                break
        slot = tail % self.slots
        yield_point("farm.write_slot", ("farmslot", id(self), slot))
        self._payloads[slot] = payload
        self._flags[slot].store(1)
        return True

    def try_consume(self) -> Optional[bytes]:
        """Pop exactly one message (no batching), or None if empty."""
        slot = self._head % self.slots
        if self._flags[slot].load() != 1:
            return None
        yield_point("farm.read_slot", ("farmslot", id(self), slot))
        payload = self._payloads[slot]
        self._payloads[slot] = None
        self._flags[slot].store(0)  # release: the per-message DMA write
        self._released.fetch_add(1)
        self._head += 1
        return payload


class LockRing(_ByteRing):
    """A mutex-guarded ring: the lock-based baseline of Figure 17."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._lock = threading.Lock()
        self._head = 0
        self._tail = 0

    def try_enqueue(self, payload: bytes) -> bool:
        """Insert one record under the ring lock."""
        size = self.record_size(payload)
        if size > self.capacity:
            raise ValueError("record exceeds ring capacity")
        # Schedule point *outside* the lock: the critical section has no
        # yield points, so the virtual scheduler never parks a lock holder.
        yield_point("lockring.enqueue", ("lockring", id(self)))
        with self._lock:
            if self._tail - self._head + size > self.capacity:
                return False
            self._write_at(self._tail, RECORD_HEADER.pack(len(payload)))
            self._write_at(self._tail + RECORD_HEADER.size, payload)
            self._tail += size
            return True

    def try_consume(self) -> Optional[List[bytes]]:
        """Drain all queued records under the ring lock."""
        yield_point("lockring.consume", ("lockring", id(self)))
        with self._lock:
            if self._tail == self._head:
                return None
            records = self._split_records(self._head, self._tail)
            self._head = self._tail
            return records
