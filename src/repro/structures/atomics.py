"""Emulated atomic primitives.

The DDS ring buffers coordinate producers and the consumer with
compare-and-swap and atomic loads (§4.1, Figure 8).  CPython exposes no
hardware CAS, so :class:`AtomicCounter` emulates one with a private mutex
confined to the single read-modify-write step.  The algorithms built on
top remain lock-free in the paper's sense: no lock is ever held across a
message insertion or consumption, so a stalled thread cannot block others
for longer than one pointer update.

Every operation announces itself to the deterministic interleaving
harness via :func:`repro.concurrency.hooks.yield_point` *before* taking
the internal mutex — the yield is the schedule point, the mutex-guarded
body is the indivisible linearization step.  In production no scheduler
is installed and the hook is one global read.
"""

from __future__ import annotations

import threading

from repro.concurrency.hooks import yield_point

__all__ = ["AtomicCounter"]


class AtomicCounter:
    """A 64-bit-style atomic integer with load / CAS / fetch-add."""

    __slots__ = ("_value", "_lock", "_key")

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()
        self._key = ("atomic", id(self))

    def load(self) -> int:
        """Atomic read of the current value.

        A single attribute read is indivisible under the GIL, so no
        mutex is needed — the ``yield_point`` remains the schedule point
        the interleaving harness interposes on.  Only the
        read-modify-write operations below take the mutex.
        """
        yield_point("atomic.load", self._key)
        return self._value

    def store(self, value: int) -> None:
        """Atomic write (single-writer pointers, e.g. the ring head).

        Like :meth:`load`, a single attribute write is GIL-indivisible;
        the mutex is reserved for read-modify-write steps.
        """
        yield_point("atomic.store", self._key)
        self._value = value

    def compare_and_swap(self, expected: int, new: int) -> bool:
        """Set to ``new`` iff currently ``expected``; True on success."""
        yield_point("atomic.cas", self._key)
        with self._lock:
            if self._value != expected:
                return False
            self._value = new
            return True

    def fetch_add(self, delta: int) -> int:
        """Atomically add ``delta``; returns the *previous* value."""
        yield_point("atomic.fetch_add", self._key)
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicCounter({self.load()})"
