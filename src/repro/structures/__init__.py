"""Concurrent data structures from the DDS paper, implemented for real.

Ring buffers (§4.1), the three-tail response buffer (§4.3), the cuckoo
cache table (§6.1), and the pre-allocated DMA buffer pool (§6.2).
"""

from .atomics import AtomicCounter
from .cuckoo import CacheTableStats, CuckooCacheTable
from .memory import BufferPool, DmaBuffer, PoolStats
from .response import PreallocatedResponse, ResponseBuffer, ResponseStatus
from .rings import RECORD_HEADER, FarmRing, LockRing, ProgressRing

__all__ = [
    "AtomicCounter",
    "BufferPool",
    "CacheTableStats",
    "CuckooCacheTable",
    "DmaBuffer",
    "FarmRing",
    "LockRing",
    "PoolStats",
    "PreallocatedResponse",
    "ProgressRing",
    "RECORD_HEADER",
    "ResponseBuffer",
    "ResponseStatus",
]
