"""Pre-allocated DMA-accessible buffer pool (§6.2, Figure 12).

The offload engine never allocates on the data path: it reserves a pool
of huge pages up front and carves read buffers from it.  Each buffer is
sized to hold both the read data and the (indirect) packet placeholders,
which is what lets the engine pass the same memory to the storage driver
as the I/O destination and to the traffic director as the packet payload
— zero copies end to end.

The pool is a size-class slab allocator: power-of-two classes with
per-class freelists, carving fresh slabs from the remaining region only
when a freelist is empty.  ``allocate`` returning None signals pool
exhaustion, which the engine treats as backpressure (the request falls
back to the host, like a full context ring).

Concurrency: the pool is shared between the offload engine (allocate on
intake) and the completion path (release), so freelist edits and the
stats counters run under a pool mutex — like :class:`~repro.structures.
rings.LockRing`, the critical section contains no yield points, and the
``yield_point`` schedule hook sits *outside* the lock so the
deterministic interleaving harness can context-switch between competing
allocators without parking a lock holder.  Double release is detected
under the same lock, closing the check-then-act window a racing pair of
``release()`` calls would otherwise have.
"""

from __future__ import annotations

import mmap
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.concurrency.hooks import yield_point

__all__ = ["PoolStats", "DmaBuffer", "BufferPool", "zero_buffer"]

#: Buffers at or above this size are backed by anonymous mmap.
_MMAP_THRESHOLD = 1 << 20

ZeroBuffer = Union[bytearray, mmap.mmap]


def zero_buffer(size: int) -> ZeroBuffer:
    """A zero-filled writable buffer supporting slice reads and writes.

    Large buffers (disk images, host rings) are backed by anonymous mmap:
    the kernel hands out lazily-faulted zero pages, so a multi-hundred-MB
    "allocation" costs microseconds and only pages actually written ever
    consume memory.  Small buffers stay plain ``bytearray``.
    """
    if size >= _MMAP_THRESHOLD:
        return mmap.mmap(-1, size)
    return bytearray(size)


@dataclass
class PoolStats:
    """Allocation counters for a buffer pool (mutated under its lock)."""

    allocations: int = 0
    frees: int = 0
    failures: int = 0
    bytes_in_use: int = 0
    peak_bytes: int = 0


class DmaBuffer:
    """A leased buffer: ``size`` requested bytes inside a ``class_size`` slab."""

    __slots__ = ("pool", "class_size", "size", "data", "_free")

    def __init__(self, pool: "BufferPool", class_size: int, size: int):
        self.pool = pool
        self.class_size = class_size
        self.size = size
        self.data = bytearray(class_size)
        self._free = False

    def release(self) -> None:
        """Return the buffer to its pool (idempotence is an error)."""
        self.pool._reclaim(self)


class BufferPool:
    """Fixed-budget size-class allocator over a pre-registered region."""

    def __init__(
        self,
        total_bytes: int,
        min_class: int = 512,
        max_class: int = 1 << 20,
    ) -> None:
        if total_bytes < min_class:
            raise ValueError("pool smaller than the minimum size class")
        if min_class & (min_class - 1) or max_class & (max_class - 1):
            raise ValueError("size classes must be powers of two")
        if min_class > max_class:
            raise ValueError("min_class must not exceed max_class")
        self.total_bytes = total_bytes
        self.min_class = min_class
        self.max_class = max_class
        self._remaining = total_bytes
        self._freelists: Dict[int, List[DmaBuffer]] = {}
        self._lock = threading.Lock()
        self._key = ("pool", id(self))
        self.stats = PoolStats()

    def class_for(self, size: int) -> int:
        """Smallest size class that fits ``size`` bytes."""
        if size < 1:
            raise ValueError("size must be positive")
        if size > self.max_class:
            raise ValueError(
                f"request of {size} bytes exceeds max class {self.max_class}"
            )
        cls = self.min_class
        while cls < size:
            cls <<= 1
        return cls

    def allocate(self, size: int) -> Optional[DmaBuffer]:
        """Lease a buffer of at least ``size`` bytes; None when exhausted."""
        cls = self.class_for(size)
        yield_point("pool.alloc", self._key)
        with self._lock:
            freelist = self._freelists.setdefault(cls, [])
            if freelist:
                buffer = freelist.pop()
                buffer.size = size
                buffer._free = False
            elif self._remaining >= cls:
                self._remaining -= cls
                buffer = DmaBuffer(self, cls, size)
            else:
                self.stats.failures += 1
                return None
            self.stats.allocations += 1
            self.stats.bytes_in_use += cls
            self.stats.peak_bytes = max(
                self.stats.peak_bytes, self.stats.bytes_in_use
            )
            return buffer

    def _reclaim(self, buffer: DmaBuffer) -> None:
        yield_point("pool.reclaim", self._key)
        with self._lock:
            if buffer._free:
                raise RuntimeError("buffer released twice")
            buffer._free = True
            self._freelists.setdefault(buffer.class_size, []).append(
                buffer
            )
            self.stats.frees += 1
            self.stats.bytes_in_use -= buffer.class_size

    @property
    def bytes_available(self) -> int:
        """Uncarved bytes plus bytes parked on freelists."""
        yield_point("pool.available", self._key)
        with self._lock:
            parked = sum(
                cls * len(buffers)
                for cls, buffers in self._freelists.items()
            )
            return self._remaining + parked
