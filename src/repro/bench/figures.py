"""Regenerate the paper's figures from the command line.

``python -m repro.bench.figures``            — every figure + ablations
``python -m repro.bench.figures fig14 fig17`` — a subset

Each figure's driver lives in ``benchmarks/`` (they are also the
pytest-benchmark suite); this module locates that directory, imports the
drivers, and runs them.  Tables print to stdout and are persisted under
``benchmarks/results/``.
"""

from __future__ import annotations

import importlib
import os
import sys
import time
from typing import Dict, List, Tuple

__all__ = ["FIGURES", "regenerate", "main"]

#: figure name -> (benchmark module, driver callables inside it).
FIGURES: Dict[str, Tuple[str, List[str]]] = {
    "fig02": ("test_fig02_pageserver_cpu", ["run_figure"]),
    "fig04": ("test_fig04_echo_rtt", ["run_figure"]),
    "fig05": ("test_fig05_faster_rmw", ["run_figure"]),
    "fig11": ("test_fig11_pep_transport", ["run_figure"]),
    "fig14": ("test_fig14_cpu_savings", ["run_reads", "run_writes"]),
    "fig15": ("test_fig15_latency", ["run_reads", "run_writes"]),
    "fig16": ("test_fig16_ten_solutions", ["run_figure"]),
    "fig17": ("test_fig17_ring_buffer", ["run_figure"]),
    "fig18": ("test_fig18_file_io", ["run_figure"]),
    "fig19": ("test_fig19_tldk_split", ["run_figure"]),
    "fig20": ("test_fig20_host_vs_dpu_tldk", ["run_figure"]),
    "fig21": ("test_fig21_director_scaling", ["run_figure"]),
    "fig22": ("test_fig22_cache_table", ["run_figure"]),
    "fig23": ("test_fig23_zero_copy", ["run_figure"]),
    "fig24": ("test_fig24_pageserver", ["run_figure"]),
    "fig25": ("test_fig25_faster_cpu", ["run_figure"]),
    "fig26": ("test_fig26_faster_latency", ["run_figure"]),
    "ablations": (
        "test_ablation_ring_design",
        ["run_max_progress", "run_pointer_layout"],
    ),
    "ablations-offload": (
        "test_ablation_offload_limits",
        ["run_context_ring", "run_chaining"],
    ),
    "extensions": (
        "test_ext_accelerators",
        ["run_compression", "run_pushdown"],
    ),
    "extensions-cache": (
        "test_ext_cache_tenancy",
        ["run_cache", "run_tenancy"],
    ),
}


def _benchmarks_dir() -> str:
    """Locate the benchmarks/ directory next to the repo's src tree."""
    here = os.path.dirname(os.path.abspath(__file__))
    for candidate in (
        os.path.normpath(os.path.join(here, "..", "..", "..", "benchmarks")),
        os.path.join(os.getcwd(), "benchmarks"),
    ):
        if os.path.isdir(candidate):
            return candidate
    raise FileNotFoundError(
        "cannot locate the benchmarks/ directory; run from the repo root"
    )


def regenerate(names: List[str]) -> None:
    """Run the drivers for the named figures."""
    bench_dir = _benchmarks_dir()
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    for name in names:
        if name not in FIGURES:
            raise SystemExit(
                f"unknown figure {name!r}; choose from "
                f"{', '.join(sorted(FIGURES))}"
            )
        module_name, drivers = FIGURES[name]
        module = importlib.import_module(module_name)
        for driver in drivers:
            start = time.time()
            getattr(module, driver)()
            print(f"[{name}.{driver} took {time.time() - start:.1f}s]")


def main(argv: List[str] = None) -> None:
    """CLI entry point."""
    argv = sys.argv[1:] if argv is None else argv
    names = argv if argv else list(FIGURES)
    regenerate(names)


if __name__ == "__main__":
    main()
