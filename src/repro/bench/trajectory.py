"""The machine-readable performance trajectory (``BENCH_<name>.json``).

Every PR leaves a perf record: this module runs pinned workloads —
the Figure 16 peak-throughput sweep, the 4-shard scale-out run, the
chaos shard-kill recovery, and the replicated-failover run (replication
tax + availability curve) — and emits one JSON file per workload with
the engine's events/sec, wall time, and peak simulated IOPS.  CI runs
the same workloads at ``--mode smoke`` scale and fails when events/sec
regresses against the committed baselines (see ``--check``).

Metric definitions
------------------
``events``
    :attr:`~repro.sim.engine.Environment.scheduled_count` summed over
    every simulation the workload runs.  Each schedule operation
    consumes exactly one sequence number, so the count is comparable
    across engine versions — a faster engine shows up as a shorter wall
    time for the *same* event count.
``events_per_sec``
    ``events / wall_seconds`` — the engine-throughput headline.
``calibration_eps``
    Operations/sec of a fixed pure-Python loop that never touches the
    engine.  Dividing ``events_per_sec`` by ``calibration_eps`` gives a
    machine-speed-normalized figure, which is what ``--check`` compares
    so a slower CI runner does not read as an engine regression (and an
    engine regression cannot hide behind a faster one).

Usage
-----
::

    python -m repro.bench.trajectory                  # full, repo-root JSONs
    python -m repro.bench.trajectory --mode smoke --out bench_out
    python -m repro.bench.trajectory --check . --out bench_out
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

__all__ = [
    "WORKLOADS",
    "calibrate",
    "run_workload",
    "write_bench",
    "load_bench",
    "check_regressions",
    "main",
]

#: Repository root (…/src/repro/bench/trajectory.py -> three parents up).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Smoke runs must stay within a CI-friendly budget; full runs match the
#: committed benchmark figures' scale.
_SCALES = ("smoke", "full")


def calibrate(iterations: int = 300_000) -> float:
    """Machine-speed anchor: ops/sec of a fixed engine-free Python loop.

    Deliberately does *not* exercise the DES engine — if it did, an
    engine regression would slow the anchor too and normalize itself
    away.  The loop mixes dict, list, and arithmetic work in proportions
    roughly matching model code.
    """
    table: Dict[int, int] = {}
    acc = 0
    items: List[int] = []
    start = time.perf_counter()
    for i in range(iterations):
        table[i & 1023] = i
        acc += table.get((i * 7) & 1023, 0)
        items.append(i)
        if len(items) > 64:
            items.clear()
    elapsed = time.perf_counter() - start
    return iterations / elapsed if elapsed > 0 else float("inf")


# ----------------------------------------------------------------------
# pinned workloads
# ----------------------------------------------------------------------
def _run_fig16(mode: str) -> dict:
    """The Figure 16 ten-solution peak-throughput sweep (reduced: three
    representative solutions spanning the chart's range)."""
    from .harness import find_peak

    if mode == "full":
        kinds = [
            "baseline",
            "smb-direct",
            "redy-dds",
            "dds-files",
            "dds-offload",
            "dds-offload-rdma",
        ]
        total_requests = 6000
    else:
        kinds = ["baseline", "dds-offload"]
        total_requests = 1500
    start = {"dds-offload": 200_000.0}
    events = 0
    peaks = {}

    def tally(result):
        nonlocal events
        events += result.events

    wall_start = time.perf_counter()
    for kind in kinds:
        peak = find_peak(
            kind,
            start_iops=start.get(kind, 100_000.0),
            total_requests=total_requests,
            max_outstanding=160,
            on_result=tally,
        )
        peaks[kind] = peak.achieved_iops
    wall = time.perf_counter() - wall_start
    return {
        "wall_seconds": wall,
        "events": events,
        "peak_iops": max(peaks.values()),
        "detail": {"peaks": peaks, "total_requests": total_requests},
    }


def _run_scaleout(mode: str) -> dict:
    """Directed reads against a consistent-hash 4-shard deployment."""
    from ..core.client import ClientConfig, WorkloadClient
    from ..core.messages import IoRequest, OpCode
    from ..hardware.nic import NetworkLink
    from ..sim import Environment
    from ..storage.disk import RamDisk, SpdkBdev
    from ..storage.filesystem import DdsFileSystem
    from ..topology.sharding import ShardedOffloadServer

    io_size = 1024
    files = 32
    file_bytes = 4 << 20
    total_requests = 12_000 if mode == "full" else 3000

    wall_start = time.perf_counter()
    env = Environment()
    disk = RamDisk(files * file_bytes + (64 << 20))
    fs = DdsFileSystem(env, SpdkBdev(env, disk))
    fs.create_directory("bench")
    file_ids = []
    for index in range(files):
        file_id = fs.create_file("bench", f"shard-file-{index}")
        fs.preallocate(file_id, file_bytes)
        file_ids.append(file_id)
    link = NetworkLink(env)
    server = ShardedOffloadServer(env, link, fs, shard_count=4)
    config = ClientConfig(
        offered_iops=4e6,
        total_requests=total_requests,
        io_size=io_size,
        batch=4,
        connections=16,
        max_outstanding=192,
        file_size=file_bytes,
        seed=7,
    )
    slots = file_bytes // io_size

    def random_read(request_id, rng):
        file_id = file_ids[rng.randrange(len(file_ids))]
        offset = rng.randrange(slots) * io_size
        return IoRequest(OpCode.READ, request_id, file_id, offset, io_size)

    client = WorkloadClient(
        env, server, file_ids[0], config, request_factory=random_read
    )
    result = client.run()
    wall = time.perf_counter() - wall_start
    return {
        "wall_seconds": wall,
        "events": env.scheduled_count,
        "peak_iops": result.achieved_iops,
        "detail": {
            "shards": 4,
            "total_requests": total_requests,
            "p99_us": result.p99 * 1e6,
        },
    }


def _run_chaos(mode: str) -> dict:
    """Shard-kill recovery: a 4-shard run with one shard dark mid-run."""
    from ..core.client import ClientConfig, DdsClient
    from ..core.messages import IoRequest, OpCode
    from ..faults import FaultInjector, FaultPlan, ShardKill
    from ..hardware.nic import NetworkLink
    from ..sim import Environment
    from ..storage.disk import RamDisk, SpdkBdev
    from ..storage.filesystem import DdsFileSystem
    from ..topology.sharding import ShardedOffloadServer

    io_size = 1024
    files = 16
    file_bytes = 1 << 20
    slots = file_bytes // io_size
    total_requests = 4800 if mode == "full" else 1200

    wall_start = time.perf_counter()
    env = Environment()
    disk = RamDisk(files * file_bytes + (64 << 20))
    fs = DdsFileSystem(env, SpdkBdev(env, disk))
    fs.create_directory("chaos")
    file_ids = []
    for index in range(files):
        file_id = fs.create_file("chaos", f"file-{index}")
        fs.preallocate(file_id, file_bytes)
        file_ids.append(file_id)
    link = NetworkLink(env)
    server = ShardedOffloadServer(env, link, fs, shard_count=4)
    server.enable_resilience()
    plan = FaultPlan(
        seed=13,
        events=(ShardKill(at=2e-3, down_for=3e-3, shard=1),),
    )
    FaultInjector(env, server, plan).arm()

    def factory(request_id, rng):
        if request_id % 4 == 0:
            ordinal = request_id // 4
            file_id = file_ids[ordinal % files]
            offset = ((ordinal // files) % slots) * io_size
            payload = request_id.to_bytes(8, "little") * (io_size // 8)
            return IoRequest(
                OpCode.WRITE, request_id, file_id, offset, io_size, payload
            )
        file_id = file_ids[rng.randrange(files)]
        offset = rng.randrange(slots) * io_size
        return IoRequest(OpCode.READ, request_id, file_id, offset, io_size)

    config = ClientConfig(
        offered_iops=1.2e6,
        total_requests=total_requests,
        io_size=io_size,
        batch=4,
        connections=8,
        max_outstanding=160,
        file_size=file_bytes,
        seed=13,
    )
    client = DdsClient(
        env, server, file_ids[0], config, request_factory=factory
    )
    result = client.run()
    wall = time.perf_counter() - wall_start
    return {
        "wall_seconds": wall,
        "events": env.scheduled_count,
        "peak_iops": result.achieved_iops,
        "detail": {
            "total_requests": total_requests,
            "retries": result.retries,
            "failed_requests": result.failed_requests,
        },
    }


def _run_replication(mode: str) -> dict:
    """Replicated shard groups: the replication tax and the failover.

    Two measurements in one record:

    * **tax** — the same write-heavy no-fault workload against a plain
      4-shard deployment and a replicated one; the peak-IOPS ratio is
      the price of the synchronous quorum hop on every write.
    * **failover** — the replicated deployment takes the chaos
      shard-kill; the detail records dead-keyspace acks per half-ms of
      the outage (``zero_dark_window`` says none of them was silent)
      and the runtime invariant checker's verdict.
    """
    from ..core.client import ClientConfig, DdsClient, WorkloadClient
    from ..core.messages import IoRequest, OpCode
    from ..faults import (
        FaultInjector,
        FaultPlan,
        ReplicationInvariantChecker,
        ShardKill,
    )
    from ..hardware.nic import NetworkLink
    from ..sim import Environment
    from ..storage.disk import RamDisk, SpdkBdev
    from ..storage.filesystem import DdsFileSystem
    from ..topology.sharding import ShardedOffloadServer

    io_size = 1024
    files = 16
    file_bytes = 1 << 20
    slots = file_bytes // io_size
    tax_requests = 6000 if mode == "full" else 1500
    kill_at, down_for = 2e-3, 3e-3
    # 400k offered IOPS for 2400 requests keeps load on the wire for
    # 6 ms — past the end of the 2–5 ms outage in both modes, so the
    # availability curve is fully populated.
    failover_requests = 2400

    def build(env):
        disk = RamDisk(files * file_bytes + (64 << 20))
        fs = DdsFileSystem(env, SpdkBdev(env, disk))
        fs.create_directory("bench")
        file_ids = []
        for index in range(files):
            file_id = fs.create_file("bench", f"repl-file-{index}")
            fs.preallocate(file_id, file_bytes)
            file_ids.append(file_id)
        server = ShardedOffloadServer(
            env, NetworkLink(env), fs, shard_count=4
        )
        return server, file_ids

    def factory_for(file_ids):
        def factory(request_id, rng):
            if request_id % 2 == 0:  # write-heavy: the tax is per write
                ordinal = request_id // 2
                file_id = file_ids[ordinal % files]
                offset = ((ordinal // files) % slots) * io_size
                payload = request_id.to_bytes(8, "little") * (io_size // 8)
                return IoRequest(
                    OpCode.WRITE, request_id, file_id, offset, io_size,
                    payload,
                )
            file_id = file_ids[rng.randrange(files)]
            offset = rng.randrange(slots) * io_size
            return IoRequest(
                OpCode.READ, request_id, file_id, offset, io_size
            )

        return factory

    wall_start = time.perf_counter()
    events = 0

    # -- replication tax: plain vs replicated, no faults ---------------
    tax_iops = {}
    for variant in ("plain", "replicated"):
        env = Environment()
        server, file_ids = build(env)
        if variant == "replicated":
            server.enable_replication()
        config = ClientConfig(
            offered_iops=1.2e6,
            total_requests=tax_requests,
            io_size=io_size,
            batch=4,
            connections=8,
            max_outstanding=160,
            file_size=file_bytes,
            seed=7,
        )
        client = WorkloadClient(
            env, server, file_ids[0], config,
            request_factory=factory_for(file_ids),
        )
        tax_iops[variant] = client.run().achieved_iops
        events += env.scheduled_count

    # -- failover availability under a shard kill ----------------------
    env = Environment()
    server, file_ids = build(env)
    dedup = server.enable_resilience()
    checker = ReplicationInvariantChecker(env)
    replicator = server.enable_replication(checker)
    plan = FaultPlan(
        seed=13,
        events=(ShardKill(at=kill_at, down_for=down_for, shard=2),),
    )
    injector = FaultInjector(env, server, plan).arm()
    acks = []

    class _Timeline:
        def on_issue(self, request):
            checker.on_issue(request)

        def on_ack(self, request, response):
            checker.on_ack(request, response)
            if response.ok:
                acks.append((env.now, request.file_id))

        def on_give_up(self, request):
            checker.on_give_up(request)

    config = ClientConfig(
        offered_iops=400e3,
        total_requests=failover_requests,
        io_size=io_size,
        batch=4,
        connections=16,
        max_outstanding=512,
        file_size=file_bytes,
        seed=13,
    )
    client = DdsClient(
        env, server, file_ids[0], config,
        request_factory=factory_for(file_ids), observer=_Timeline(),
    )
    result = client.run()
    # Bounded drain until the injector logs the recovery: anti-entropy
    # catch-up outlasts the workload, and the resilience layer keeps
    # the event queue populated forever (never drain with a bare run).
    for _ in range(120):
        if any(r.kind == "shard-recover" for r in injector.fault_log):
            break
        env.run(until=env.timeout(1e-3))
    env.run(until=env.timeout(1e-3))
    events += env.scheduled_count
    wall = time.perf_counter() - wall_start

    dead_files = frozenset(
        file_id for file_id in file_ids
        if server.shard_map.owner(file_id) == 2
    )
    window = 5e-4
    dead_acks = [0] * int(down_for / window)
    for stamp, file_id in acks:
        if file_id in dead_files and kill_at <= stamp < kill_at + down_for:
            dead_acks[int((stamp - kill_at) / window)] += 1
    report = checker.check(server, dedup=dedup)
    plain, replicated = tax_iops["plain"], tax_iops["replicated"]
    return {
        "wall_seconds": wall,
        "events": events,
        "peak_iops": replicated,
        "detail": {
            "tax": {
                "plain_iops": round(plain, 1),
                "replicated_iops": round(replicated, 1),
                "tax_pct": round(100.0 * (1.0 - replicated / plain), 2),
                "total_requests": tax_requests,
            },
            "failover": {
                "dead_acks_per_half_ms": dead_acks,
                "zero_dark_window": all(c > 0 for c in dead_acks),
                "violations": len(checker.violations),
                "report_ok": report.ok,
                "failed_requests": result.failed_requests,
                "handoffs": replicator.handoffs,
                "solo_acks": replicator.solo_acks,
                "mirrored_writes": replicator.mirrored_writes,
                "catchup_replays": replicator.catchup_replays,
            },
        },
    }


def _run_resharding(mode: str) -> dict:
    """Elastic resharding under load: grow 2→3, drain back, stay live.

    Three measurements in one record:

    * **migration** — bytes/sec through the relay+copy plane for the
      add and the drain migration, with dirty-recopy counts;
    * **dark window** — moved-file acks bucketed per half-ms across
      each migration window; ``zero_dark_window`` says every bucket in
      which traffic was still offered saw at least one ack, i.e. no
      file ever went silent around its cutover;
    * **cost curve** — achieved IOPS per phase (steady / add-migration
      / drain-migration / post) plus a no-reshard control run of the
      same workload; ``reshard_tax_pct`` is the end-to-end throughput
      price of performing both topology changes under load.
    """
    from ..core.client import ClientConfig, DdsClient
    from ..core.messages import IoRequest, OpCode
    from ..faults import ReplicationInvariantChecker
    from ..hardware.nic import NetworkLink
    from ..sim import Environment
    from ..storage.disk import RamDisk, SpdkBdev
    from ..storage.filesystem import DdsFileSystem
    from ..topology.sharding import ShardedOffloadServer

    io_size = 1024
    files = 16
    file_bytes = 64 << 10
    slots = file_bytes // io_size
    # Moderate offered load on 2 shards: saturation starves the copy
    # plane and the migrations would run after traffic, measuring
    # nothing (see tests/test_resharding.py).
    offered = 150e3
    total_requests = 6000 if mode == "full" else 3000
    add_at, drain_gap = 1e-3, 3e-4
    window = 5e-4

    def build(env):
        disk = RamDisk(files * file_bytes + (64 << 20))
        fs = DdsFileSystem(env, SpdkBdev(env, disk))
        fs.create_directory("bench")
        file_ids = []
        for index in range(files):
            file_id = fs.create_file("bench", f"reshard-file-{index}")
            fs.preallocate(file_id, file_bytes)
            file_ids.append(file_id)
        server = ShardedOffloadServer(
            env, NetworkLink(env), fs, shard_count=2
        )
        return server, file_ids

    def factory_for(file_ids):
        def factory(request_id, rng):
            if request_id % 4 == 0:
                ordinal = request_id // 4
                file_id = file_ids[ordinal % files]
                offset = ((ordinal // files) % slots) * io_size
                payload = request_id.to_bytes(8, "little") * (io_size // 8)
                return IoRequest(
                    OpCode.WRITE, request_id, file_id, offset, io_size,
                    payload,
                )
            file_id = file_ids[rng.randrange(files)]
            offset = rng.randrange(slots) * io_size
            return IoRequest(
                OpCode.READ, request_id, file_id, offset, io_size
            )

        return factory

    def config():
        return ClientConfig(
            offered_iops=offered,
            total_requests=total_requests,
            io_size=io_size,
            batch=4,
            connections=16,
            max_outstanding=512,
            file_size=file_bytes,
            seed=17,
        )

    wall_start = time.perf_counter()
    events = 0

    # -- control: identical workload, fixed 2-shard topology -----------
    env = Environment()
    server, file_ids = build(env)
    server.enable_resilience()
    server.enable_replication()
    control_client = DdsClient(
        env, server, file_ids[0], config(),
        request_factory=factory_for(file_ids),
    )
    control_iops = control_client.run().achieved_iops
    events += env.scheduled_count

    # -- live reshard: add a shard mid-workload, then drain it ---------
    env = Environment()
    server, file_ids = build(env)
    dedup = server.enable_resilience()
    checker = ReplicationInvariantChecker(env)
    server.enable_replication(checker)
    resharder = server.enable_resharding()
    acks = []

    class _Timeline:
        def on_issue(self, request):
            checker.on_issue(request)

        def on_ack(self, request, response):
            checker.on_ack(request, response)
            if response.ok:
                acks.append((env.now, request.file_id))

        def on_give_up(self, request):
            checker.on_give_up(request)

    marks = {}

    def control_process():
        yield env.timeout(add_at)
        index = yield from server.add_shard()
        marks["added"] = index
        yield env.timeout(drain_gap)
        yield from server.drain_shard(index)
        marks["drained"] = index

    env.process(control_process())
    client = DdsClient(
        env, server, file_ids[0], config(),
        request_factory=factory_for(file_ids), observer=_Timeline(),
    )
    result = client.run()
    # Bounded drain: the drain-side resize backfills the re-paired
    # backup device-timed, and the resilience layer keeps the event
    # queue populated forever (never drain with a bare run).
    for _ in range(400):
        if "drained" in marks:
            break
        env.run(until=env.timeout(1e-3))
    env.run(until=env.timeout(1e-3))
    events += env.scheduled_count
    wall = time.perf_counter() - wall_start

    reshard_iops = result.achieved_iops
    last_ack = max(stamp for stamp, _ in acks)

    migrations = []
    dark_free = True
    for record in resharder.history:
        span = record["end"] - record["start"]
        # Bucket moved-file acks across the migration window; only
        # buckets where traffic was still offered can demand an ack.
        measurable_end = min(record["end"], last_ack)
        buckets = [0] * max(1, int((measurable_end - record["start"]) / window))
        for stamp, file_id in acks:
            if (
                file_id in record["files"]
                and record["start"] <= stamp < measurable_end
            ):
                index = min(
                    len(buckets) - 1,
                    int((stamp - record["start"]) / window),
                )
                buckets[index] += 1
        dark_free = dark_free and all(count > 0 for count in buckets)
        migrations.append({
            "kind": record["kind"],
            "files": len(record["files"]),
            "bytes": record["bytes"],
            "duration_ms": round(span * 1e3, 3),
            "throughput_mb_s": round(
                record["bytes"] / span / 1e6, 2
            ) if span > 0 else 0.0,
            "moved_acks_per_half_ms": buckets,
        })

    # Phase cost curve: achieved IOPS inside each timeline segment.
    add_rec = resharder.history[0]
    drain_rec = resharder.history[1]
    boundaries = [
        ("steady", 0.0, add_rec["start"]),
        ("add_migration", add_rec["start"], add_rec["end"]),
        ("between", add_rec["end"], drain_rec["start"]),
        ("drain_migration", drain_rec["start"], min(drain_rec["end"], last_ack)),
        ("post", min(drain_rec["end"], last_ack), last_ack),
    ]
    phases = []
    for name, start, end in boundaries:
        span = end - start
        if span <= 0:
            continue
        count = sum(1 for stamp, _ in acks if start <= stamp < end)
        phases.append({
            "phase": name,
            "duration_ms": round(span * 1e3, 3),
            "achieved_iops": round(count / span, 1),
        })

    report = checker.check(server, dedup=dedup)
    return {
        "wall_seconds": wall,
        "events": events,
        "peak_iops": reshard_iops,
        "detail": {
            "control_iops": round(control_iops, 1),
            "reshard_iops": round(reshard_iops, 1),
            "reshard_tax_pct": round(
                100.0 * (1.0 - reshard_iops / control_iops), 2
            ),
            "zero_dark_window": dark_free,
            "migrations": migrations,
            "cost_curve": phases,
            "files_moved": resharder.files_moved,
            "bytes_copied": resharder.bytes_copied,
            "dirty_recopies": resharder.dirty_recopies,
            "cutovers": resharder.cutovers,
            "leftover_pins": server.shard_map.pinned_files,
            "violations": len(checker.violations),
            "report_ok": report.ok,
            "failed_requests": result.failed_requests,
            "total_requests": total_requests,
        },
    }


def _run_pushdown(mode: str) -> dict:
    """Verified-pushdown placement sweep: operator pipelines × placements.

    Every cell runs the *same verified bytecode* through the
    :class:`~repro.pushdown.engine.PushdownEngine` — only where it
    executes changes: the client host core (``ship-all``), the DPU Arm
    cores (``dpu-software``), or the RXP accelerator with the software
    engine handling non-regex stages over the survivors (``dpu-accel``).
    The detail records, per cell, the simulated scan time, bytes on the
    wire, and DPU/client core busy-seconds — the paper's pushdown story
    is the wire-bytes and client-core columns collapsing as operators
    move device-side.  Every cell cross-checks rows and (where the
    pipeline aggregates) the accumulator registers against the table's
    ground truth, so a perf figure can never come from a wrong answer.
    """
    from ..pushdown.scan import (
        PIPELINES,
        PLACEMENTS,
        PipelineScanner,
        canonical_pipeline,
    )
    from ..sim import Environment

    pages = 64 if mode == "full" else 12
    selectivity = 0.05

    wall_start = time.perf_counter()
    events = 0
    cells: Dict[str, dict] = {}
    best_records_per_sec = 0.0
    for pipeline_name in PIPELINES:
        for placement in PLACEMENTS:
            env = Environment()
            scanner = PipelineScanner(
                env,
                canonical_pipeline(pipeline_name),
                pages=pages,
                selectivity=selectivity,
                placement=placement,
                seed=55,
            )
            proc = env.process(scanner.scan_table())
            env.run(until=proc)
            selected = proc.value
            assert len(selected) == scanner.expected_hits
            if scanner.has_aggregate:
                assert scanner.acc[0] == scanner.expected_sum
                assert scanner.acc[1] == scanner.expected_hits
                assert scanner.acc[2] == scanner.expected_max_weight
            events += env.scheduled_count
            records = pages * 64  # RECORDS_PER_PAGE
            best_records_per_sec = max(
                best_records_per_sec, records / env.now
            )
            cells[f"{pipeline_name}/{placement}"] = {
                "scan_ms": round(env.now * 1e3, 4),
                "rows": len(selected),
                "wire_bytes": scanner.wire_bytes,
                "dpu_core_ms": round(scanner.dpu_core.busy_time * 1e3, 4),
                "client_core_ms": round(
                    scanner.client_core.busy_time * 1e3, 4
                ),
            }
    wall = time.perf_counter() - wall_start

    ship = cells["filter-project-agg/ship-all"]["wire_bytes"]
    accel = cells["filter-project-agg/dpu-accel"]["wire_bytes"]
    return {
        "wall_seconds": wall,
        "events": events,
        "peak_iops": best_records_per_sec,
        "detail": {
            "pages": pages,
            "selectivity": selectivity,
            "wire_reduction_agg": round(ship / accel, 1),
            "cells": cells,
        },
    }


def _run_overload(mode: str) -> dict:
    """Graceful degradation under open-loop overload (DESIGN §15).

    Two measurements against the same capacity-limited deployment (one
    shard, 64 KiB reads — the SSD/link path saturates at ~52K IOPS, so
    overload is affordable to simulate):

    * **goodput-vs-offered curve** — an open-loop tenant population
      sweeps multiples of capacity twice: OFF (stock 8-attempt retries,
      no dedup, no QoS — the metastable configuration) and ON (dedup +
      retry budget + the tenant QoS gate).  The OFF curve *collapses*
      past saturation — retries amplify offered load and goodput falls
      as demand rises — while the ON curve stays flat at the admission
      cap.  The acceptance bar: ON goodput at 2x capacity >= 80% of ON
      peak.
    * **flash crowd** — a 5x spike for 6 ms over a 0.8x-capacity base
      load.  The detail records goodput before / during / after and
      ``recovery`` (post-crowd goodput over the pre-crowd demand).  OFF
      stays collapsed long after the crowd ends (the metastable
      signature); ON must recover to >= 95%.
    """
    from ..core.retry import RetryBudget, RetryPolicy
    from ..hardware.nic import NetworkLink
    from ..sim import Environment
    from ..storage.disk import RamDisk, SpdkBdev
    from ..storage.filesystem import DdsFileSystem
    from ..topology.qos import QosConfig
    from ..topology.sharding import ShardedOffloadServer
    from ..workload import FlashCrowd, OpenLoopTrafficEngine, TenantSpec

    io_size = 64 << 10
    files = 8
    file_bytes = 1 << 20
    capacity = 52_000.0  # measured single-shard 64KiB-read saturation
    if mode == "full":
        multipliers = (0.5, 1.0, 1.5, 2.0, 3.0)
        horizon = 15e-3
        flash_horizon = 30e-3
    else:
        multipliers = (1.0, 2.0)
        horizon = 8e-3
        flash_horizon = 22e-3
    crowd_start, crowd_len = 8e-3, 6e-3

    def build(env):
        disk = RamDisk(files * file_bytes + (64 << 20))
        fs = DdsFileSystem(env, SpdkBdev(env, disk))
        fs.create_directory("bench")
        file_ids = []
        for index in range(files):
            file_id = fs.create_file("bench", f"ovl-file-{index}")
            fs.preallocate(file_id, file_bytes)
            file_ids.append(file_id)
        server = ShardedOffloadServer(
            env, NetworkLink(env), fs, shard_count=1
        )
        return server, file_ids

    def tenant_specs(total_rate):
        # Two tenant classes: three interactive accounts (20% of the
        # load, 4x DRR weight, latency-sensitive) and one batch whale.
        specs = [
            TenantSpec(
                f"int-{i}", i, rate=total_rate * 0.2 / 3, weight=4.0,
                slo_p99=5e-3,
            )
            for i in range(3)
        ]
        specs.append(
            TenantSpec("batch-0", 3, rate=total_rate * 0.8, weight=1.0)
        )
        return specs

    def drive(total_rate, defenses, run_horizon, events=()):
        env = Environment()
        server, file_ids = build(env)
        engine = OpenLoopTrafficEngine(
            env, server, tenant_specs(total_rate), file_ids,
            horizon=run_horizon, io_size=io_size, file_bytes=file_bytes,
            seed=31, events=events,
            retry_policy=RetryPolicy(max_attempts=8, timeout=2e-3),
            retry_budget=(
                RetryBudget(capacity=32.0, refill_ratio=0.1)
                if defenses else None
            ),
        )
        gate = None
        if defenses:
            server.enable_resilience()
            gate = server.enable_qos(QosConfig(
                global_rate=0.9 * capacity, global_burst=32.0,
                sojourn_target=2e-3,
                weights={f"int-{i}": 4.0 for i in range(3)},
                tenant_of=engine.tenant_for_flow,
            ))
        result = engine.run()
        return env, gate, result

    def class_p99_ms(result):
        merged = {}
        for name, outcome in result.tenants.items():
            merged.setdefault(name.split("-")[0], []).extend(
                outcome.latencies
            )
        out = {}
        for klass, latencies in sorted(merged.items()):
            latencies.sort()
            index = min(
                len(latencies) - 1,
                max(0, int(round(0.99 * len(latencies))) - 1),
            )
            out[klass] = round(latencies[index] * 1e3, 3) if latencies else 0.0
        return out

    wall_start = time.perf_counter()
    events = 0
    curve = {"off": [], "on": []}
    class_p99 = {}
    for defenses, key in ((False, "off"), (True, "on")):
        for mult in multipliers:
            env, gate, result = drive(mult * capacity, defenses, horizon)
            events += env.scheduled_count
            shed = gate.totals.shed if gate is not None else 0
            curve[key].append({
                "multiplier": mult,
                "offered_iops": round(mult * capacity, 1),
                "goodput_iops": round(result.acked / horizon, 1),
                "p99_ms": round(result.p99 * 1e3, 3),
                "retries": result.retries,
                "shed_rate": round(shed / max(1, result.offered), 4),
                "amplification": round(result.amplification, 3),
            })
            if defenses and mult == 2.0:
                class_p99 = class_p99_ms(result)

    def window(acks, lo, hi):
        return sum(1 for t in acks if lo <= t < hi) / (hi - lo)

    crowd = FlashCrowd(
        start=crowd_start, duration=crowd_len, multiplier=5.0
    )
    base_rate = 0.8 * capacity
    flash = {}
    for defenses, key in ((False, "off"), (True, "on")):
        env, _gate, result = drive(
            base_rate, defenses, flash_horizon, events=(crowd,)
        )
        events += env.scheduled_count
        pre = window(result.ack_times, 2e-3, crowd_start)
        during = window(
            result.ack_times, crowd_start, crowd_start + crowd_len
        )
        post = window(
            result.ack_times, crowd_start + crowd_len + 4e-3, flash_horizon
        )
        flash[key] = {
            "pre_iops": round(pre, 1),
            "during_iops": round(during, 1),
            "post_iops": round(post, 1),
            # Post-crowd goodput over pre-crowd *demand*: the demand
            # denominator keeps a lucky Poisson draw in the short pre
            # window from skewing the ratio.
            "recovery": round(post / min(pre, base_rate), 3),
            "p99_ms": round(result.p99 * 1e3, 3),
            "retries": result.retries,
        }
    wall = time.perf_counter() - wall_start

    on_peak = max(point["goodput_iops"] for point in curve["on"])
    on_at_2x = next(
        point["goodput_iops"]
        for point in curve["on"] if point["multiplier"] == 2.0
    )
    off_floor = min(
        point["goodput_iops"]
        for point in curve["off"] if point["multiplier"] >= 2.0
    )
    return {
        "wall_seconds": wall,
        "events": events,
        "peak_iops": on_peak,
        "detail": {
            "capacity_iops": capacity,
            "io_size": io_size,
            "shards": 1,
            "horizon_ms": round(horizon * 1e3, 1),
            "curve": curve,
            "on_goodput_2x_pct_of_peak": round(
                100.0 * on_at_2x / on_peak, 1
            ),
            "off_collapse_pct_of_peak": round(
                100.0 * off_floor
                / max(p["goodput_iops"] for p in curve["off"]),
                1,
            ),
            "tenant_class_p99_ms_at_2x": class_p99,
            "flash_crowd": flash,
        },
    }


WORKLOADS: Dict[str, Callable[[str], dict]] = {
    "fig16": _run_fig16,
    "scaleout": _run_scaleout,
    "chaos": _run_chaos,
    "replication": _run_replication,
    "resharding": _run_resharding,
    "pushdown": _run_pushdown,
    "overload": _run_overload,
}


# ----------------------------------------------------------------------
# record plumbing
# ----------------------------------------------------------------------
def run_workload(name: str, mode: str = "full") -> dict:
    """Run one pinned workload and return its trajectory record."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}")
    if mode not in _SCALES:
        raise ValueError(f"mode must be one of {_SCALES}")
    raw = WORKLOADS[name](mode)
    wall = raw["wall_seconds"]
    events = raw["events"]
    record = {
        "schema": 1,
        "name": name,
        "mode": mode,
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "peak_iops": round(raw["peak_iops"], 1),
        "calibration_eps": round(calibrate(), 1),
        "python": "%d.%d" % sys.version_info[:2],
        "detail": raw.get("detail", {}),
    }
    return record


def write_bench(record: dict, out_dir: Path) -> Path:
    """Write one record to ``<out_dir>/BENCH_<name>.json``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{record['name']}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(name: str, directory: Path) -> Optional[dict]:
    path = directory / f"BENCH_{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def normalized_eps(record: dict) -> float:
    """Events/sec divided by the machine-speed anchor (dimensionless)."""
    calibration = record.get("calibration_eps") or 0.0
    if calibration <= 0:
        return 0.0
    return record["events_per_sec"] / calibration


def check_regressions(
    fresh: Dict[str, dict],
    baseline_dir: Path,
    threshold: float = 0.20,
) -> List[str]:
    """Compare fresh records against committed baselines.

    Returns human-readable failure strings for every workload whose
    machine-normalized events/sec dropped more than ``threshold``
    relative to its committed baseline.  Missing baselines are skipped
    (the first PR to add a workload has nothing to compare against).
    """
    failures = []
    for name, record in fresh.items():
        baseline = load_bench(name, baseline_dir)
        if baseline is None:
            continue
        base_norm = normalized_eps(baseline)
        new_norm = normalized_eps(record)
        if base_norm <= 0:
            continue
        ratio = new_norm / base_norm
        if ratio < 1.0 - threshold:
            failures.append(
                f"{name}: normalized events/sec fell to {ratio:.2%} of "
                f"baseline ({record['events_per_sec']:.0f} ev/s vs "
                f"{baseline['events_per_sec']:.0f} ev/s at "
                f"{record['calibration_eps']:.0f} vs "
                f"{baseline['calibration_eps']:.0f} calibration ops/s)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.trajectory",
        description="Run the pinned perf-trajectory workloads.",
    )
    parser.add_argument(
        "--mode", choices=_SCALES, default="full",
        help="workload scale (smoke keeps CI fast)",
    )
    parser.add_argument(
        "--only", default=None,
        help="comma-separated subset of workloads "
        f"(default: all of {', '.join(WORKLOADS)})",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT,
        help="directory for BENCH_<name>.json (default: repo root)",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE_DIR",
        help="compare against committed baselines in this directory and "
        "exit non-zero on >20%% normalized events/sec regression",
    )
    args = parser.parse_args(argv)

    names = list(WORKLOADS) if args.only is None else [
        n.strip() for n in args.only.split(",") if n.strip()
    ]
    fresh = {}
    for name in names:
        record = run_workload(name, mode=args.mode)
        path = write_bench(record, args.out)
        print(
            f"{name}: {record['events']} events in "
            f"{record['wall_seconds']:.2f}s = "
            f"{record['events_per_sec']:.0f} ev/s "
            f"(peak {record['peak_iops']:.0f} IOPS) -> {path}"
        )
        fresh[name] = record

    if args.check is not None:
        failures = check_regressions(fresh, args.check)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("regression check passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
