"""Echo-latency experiments: Figures 4, 19, and 20.

Three related microbenchmarks measure where a TCP message is answered:

* **Figure 4** — a client's message is echoed by the *host* (the normal
  path through the NIC, PCIe, and the kernel stack) or directly by the
  *DPU*; answering at the NIC roughly halves the round trip.
* **Figure 19** — TCP-splitting echo on the DPU: through the SoC's Linux
  kernel stack (slower than not offloading at all!) versus through the
  optimized TLDK userspace stack (~3x lower than Linux-on-DPU, ~2.5x
  lower than the host answer).
* **Figure 20** — TLDK on the host versus TLDK on the DPU as message
  size grows: the host's fat cores win for small messages, but for large
  (memory-intensive) messages the DPU wins by avoiding the NIC-to-host
  round trip and enjoying faster on-board memory.

The latency compositions run on the simulator (client process, link,
responder process) so queueing under load is also measurable; constants
are local to this module and anchored to the paper's reported numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..hardware.cpu import CpuCore
from ..hardware.nic import NetworkLink
from ..hardware.specs import MICROSECOND
from ..sim import Environment

__all__ = ["EchoResult", "EchoBench", "RESPONDERS"]

#: Where the echo can be answered and through which stack.
RESPONDERS = (
    "host-os",      # Fig 4 host / Fig 19 vanilla: kernel TCP on the host
    "dpu-raw",      # Fig 4 DPU: answered at the NIC by a DPDK-style loop
    "dpu-linux",    # Fig 19: TCP splitting via the SoC's Linux stack
    "dpu-tldk",     # Fig 19/20: TCP splitting via userspace TLDK
    "host-tldk",    # Fig 20: TLDK on a Linux host
)

# ----------------------------------------------------------------------
# per-responder cost composition (one-way processing of one message)
# ----------------------------------------------------------------------
# Host kernel stack: NIC->host forward + interrupt/syscall path.
_HOST_OS_PER_MSG = 7.0 * MICROSECOND      # fixed kernel path (per direction)
_HOST_OS_PER_BYTE = 0.50e-9               # copies through the kernel
_HOST_FORWARD = 3.0 * MICROSECOND         # PCIe hop NIC<->host (per direction)

# Raw DPDK-style echo on the DPU: poll-mode, no TCP state.
_DPU_RAW_PER_MSG = 3.2 * MICROSECOND
_DPU_RAW_PER_BYTE = 0.30e-9

# Linux kernel TCP on the wimpy Arm cores (Fig 19: worse than the host).
_DPU_LINUX_PER_MSG = 16.0 * MICROSECOND
_DPU_LINUX_PER_BYTE = 0.80e-9

# TLDK userspace TCP on the DPU (Fig 19: ~1/3 of Linux-on-DPU).
_DPU_TLDK_PER_MSG = 5.0 * MICROSECOND
_DPU_TLDK_PER_BYTE = 0.25e-9

# TLDK on the host (Fig 20): fast cores, but each message crosses PCIe
# to the host and back, and host DRAM is effectively slower per byte for
# NIC-adjacent processing [44, 63].
_HOST_TLDK_PER_MSG = 1.2 * MICROSECOND
_HOST_TLDK_PER_BYTE = 0.50e-9


@dataclass
class EchoResult:
    """One echo measurement point."""

    responder: str
    message_bytes: int
    rtt: float
    server_latency: float

    @property
    def rtt_us(self) -> float:
        return self.rtt / MICROSECOND


class EchoBench:
    """TCP echo between a client and a server with a BF-2 DPU."""

    def __init__(self, env: Environment = None) -> None:
        self.env = env if env is not None else Environment()
        self.link = NetworkLink(self.env)
        self.dpu_core = CpuCore(self.env, speed=1.0, name="dpu-echo")
        # Note: per-message constants above are expressed as *wall* time
        # on their own processor, so the core here only provides queueing
        # (speed 1.0 keeps the charge equal to the wall constant).

    # ------------------------------------------------------------------
    # per-responder one-way processing time
    # ------------------------------------------------------------------
    @staticmethod
    def processing_time(responder: str, size: int) -> float:
        """One-way, unloaded processing time for one message."""
        if responder == "host-os":
            return (
                _HOST_FORWARD + _HOST_OS_PER_MSG + size * _HOST_OS_PER_BYTE
            )
        if responder == "dpu-raw":
            return _DPU_RAW_PER_MSG + size * _DPU_RAW_PER_BYTE
        if responder == "dpu-linux":
            return _DPU_LINUX_PER_MSG + size * _DPU_LINUX_PER_BYTE
        if responder == "dpu-tldk":
            return _DPU_TLDK_PER_MSG + size * _DPU_TLDK_PER_BYTE
        if responder == "host-tldk":
            return (
                _HOST_FORWARD + _HOST_TLDK_PER_MSG + size * _HOST_TLDK_PER_BYTE
            )
        raise ValueError(f"unknown responder: {responder!r}")

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def measure(self, responder: str, size: int) -> EchoResult:
        """Round-trip one echo message and report RTT."""
        env = self.env
        start = env.now
        server_time = [0.0]

        def exchange() -> Generator:
            yield from self.link.transmit("client_to_server", size)
            arrive = env.now
            # Receive-side processing, echo, send-side processing.
            yield from self.dpu_core.execute(
                self.processing_time(responder, size)
            )
            yield from self.dpu_core.execute(
                self.processing_time(responder, size)
            )
            server_time[0] = env.now - arrive
            yield from self.link.transmit("server_to_client", size)

        proc = env.process(exchange())
        env.run(until=proc)
        return EchoResult(
            responder=responder,
            message_bytes=size,
            rtt=env.now - start,
            server_latency=server_time[0],
        )

    def series(self, responder: str, sizes: List[int]) -> List[EchoResult]:
        """Measure a size sweep with a fresh clock per point."""
        results = []
        for size in sizes:
            bench = EchoBench(Environment())
            results.append(bench.measure(responder, size))
        return results
