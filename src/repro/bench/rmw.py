"""Figure 5: FASTER YCSB-RMW throughput on the host vs. on the DPU.

N worker threads run read-modify-write operations back-to-back against
an in-memory FASTER instance.  On the host, threads scale across the
EPYC cores; on the BF-2 the pool is capped at 8 wimpy Arm cores and the
RMW's random memory traffic is further penalized (small caches), which
is what makes offloading *update* workloads to the DPU a bad idea —
the motivation for DDS's partial-offloading split (§2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..apps.faster import FasterKv
from ..apps.ycsb import YcsbWorkload
from ..hardware.cpu import CpuPool
from ..hardware.specs import DPU_CPU
from ..sim import Environment

__all__ = ["RmwResult", "run_rmw_scaling"]

#: Figure 5 anchor: FASTER runs up to ~4.5x slower on the DPU.  Beyond
#: the 0.35x core-speed ratio, the A72's small caches multiply the cost
#: of RMW's random memory traffic.
DPU_MEMORY_COST_SCALE = 6.0


@dataclass
class RmwResult:
    """One Figure 5 measurement point."""

    platform: str
    threads: int
    throughput: float  # RMW ops per second


def run_rmw_scaling(
    platform: str,
    threads: int,
    records: int = 10_000,
    ops_per_thread: int = 2_000,
    seed: int = 31,
) -> RmwResult:
    """Measure RMW throughput with ``threads`` workers on one platform."""
    if platform not in ("host", "dpu"):
        raise ValueError(f"unknown platform: {platform!r}")
    env = Environment()
    if platform == "host":
        pool = CpuPool(env, cores=48, speed=1.0, name="host")
        memory_scale = 1.0
    else:
        # The DPU has only 8 cores: requesting more threads just queues.
        pool = CpuPool(
            env, cores=DPU_CPU.cores, speed=DPU_CPU.speed, name="dpu"
        )
        memory_scale = DPU_MEMORY_COST_SCALE
    kv = FasterKv(
        env,
        pool,
        memory_budget=max(records * 32, 1 << 16),
        memory_cost_scale=memory_scale,
    )
    workload = YcsbWorkload(records, mix="RMW", seed=seed)
    for key, _value in workload.load_keys():
        kv.load(key, 0)

    def worker(worker_seed: int) -> Generator:
        local = YcsbWorkload(records, mix="RMW", seed=worker_seed)
        for op in local.ops(ops_per_thread):
            yield from kv.rmw(op.key)

    workers: List = [
        env.process(worker(seed + 100 + i)) for i in range(threads)
    ]
    done = env.all_of(workers)
    env.run(until=done)
    total_ops = threads * ops_per_thread
    return RmwResult(
        platform=platform,
        threads=threads,
        throughput=total_ops / env.now if env.now > 0 else 0.0,
    )
