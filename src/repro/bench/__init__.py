"""Benchmark harness: cluster builder, experiment runner, echo bench."""

from .echo import RESPONDERS, EchoBench, EchoResult
from .rmw import RmwResult, run_rmw_scaling
from .harness import (
    SOLUTIONS,
    ExperimentResult,
    build_cluster,
    find_peak,
    run_io_experiment,
    sweep,
)

__all__ = [
    "EchoBench",
    "RmwResult",
    "run_rmw_scaling",
    "EchoResult",
    "ExperimentResult",
    "RESPONDERS",
    "SOLUTIONS",
    "build_cluster",
    "find_peak",
    "run_io_experiment",
    "sweep",
]
