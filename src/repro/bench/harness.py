"""Experiment harness: build a cluster, drive a workload, measure.

One entry point, :func:`run_io_experiment`, serves every throughput /
latency / CPU figure (14, 15, 16, 23, 24): it assembles the simulated
cluster for a named solution, runs the §8.1 random-I/O client against
it, and reports achieved IOPS, latency percentiles, and cores consumed
on host, DPU, and client.

Solution names live in :data:`repro.topology.registry.SOLUTIONS` — the
single source of truth: each name maps to a declarative
:class:`~repro.topology.spec.DeploymentSpec`, and the registry builds
the wired server from the spec.  :data:`SOLUTIONS` here is the ten
headline names charted in Figure 16, in chart order; the registry also
carries the ablations (``dds-files-copy``, ``dds-offload-copy``) and
the multi-DPU sharded deployments (``dds-offload-shard2`` / ``-shard4``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..core.client import ClientConfig, ClientResult, WorkloadClient
from ..core.server import StorageServerBase
from ..hardware.nic import NetworkLink
from ..sim import Environment
from ..storage.disk import RamDisk, SpdkBdev
from ..storage.filesystem import DdsFileSystem
from ..topology.registry import build_server, headline_solutions, resolve
from ..topology.spec import DeploymentSpec

__all__ = [
    "SOLUTIONS",
    "ExperimentResult",
    "build_cluster",
    "run_io_experiment",
    "sweep",
    "find_peak",
]

#: The ten Figure 16 solutions, chart order (from the registry).
SOLUTIONS = headline_solutions()

Solution = Union[str, DeploymentSpec]


@dataclass
class ExperimentResult:
    """Everything one experiment point reports."""

    kind: str
    offered_iops: float
    achieved_iops: float
    elapsed: float
    p50: float
    p99: float
    mean_latency: float
    host_cores: float
    dpu_cores: float
    client_cores: float
    latencies: List[float] = field(repr=False, default_factory=list)
    #: Engine occurrences scheduled during this experiment (the
    #: numerator of the perf trajectory's events/sec; see
    #: :mod:`repro.bench.trajectory`).
    events: int = 0

    @property
    def total_cores(self) -> float:
        """Client + server host cores (Figure 16b's metric)."""
        return self.host_cores + self.client_cores


@dataclass
class Cluster:
    """A freshly-built simulated cluster ready for a workload."""

    env: Environment
    server: StorageServerBase
    filesystem: DdsFileSystem
    file_id: int


def build_cluster(
    kind: Solution,
    db_bytes: int = 192 << 20,
    disk_bytes: Optional[int] = None,
) -> Cluster:
    """Assemble disk, filesystem, link, and server for one solution.

    ``kind`` is a registered solution name or a
    :class:`~repro.topology.spec.DeploymentSpec` directly.  The benchmark
    database is ``db_bytes`` of preallocated file (the paper uses a
    128 GB database; we scale it down — random cold reads behave
    identically since nothing is cached anywhere).
    """
    spec = resolve(kind)
    env = Environment()
    disk = RamDisk(disk_bytes if disk_bytes else db_bytes + (64 << 20))
    fs = DdsFileSystem(env, SpdkBdev(env, disk))
    fs.create_directory("bench")
    file_id = fs.create_file("bench", "database")
    fs.preallocate(file_id, db_bytes)
    link = NetworkLink(env)
    server = build_server(spec, env, link, fs)
    return Cluster(env=env, server=server, filesystem=fs, file_id=file_id)


def run_io_experiment(
    kind: Solution,
    offered_iops: float,
    total_requests: int = 15_000,
    io_size: int = 1024,
    read_fraction: float = 1.0,
    batch: int = 4,
    max_outstanding: int = 128,
    db_bytes: int = 192 << 20,
    seed: int = 42,
) -> ExperimentResult:
    """Run the §8.1 random-I/O workload against one solution."""
    cluster = build_cluster(kind, db_bytes=db_bytes)
    config = ClientConfig(
        offered_iops=offered_iops,
        total_requests=total_requests,
        io_size=io_size,
        read_fraction=read_fraction,
        batch=batch,
        max_outstanding=max_outstanding,
        file_size=db_bytes,
        seed=seed,
    )
    client = WorkloadClient(cluster.env, cluster.server, cluster.file_id, config)
    result: ClientResult = client.run()
    server = cluster.server
    client_cores = result.client_cores
    extra = getattr(server, "client_extra_cores", None)
    if extra is not None:
        client_cores += extra()
    return ExperimentResult(
        kind=resolve(kind).name,
        offered_iops=offered_iops,
        achieved_iops=result.achieved_iops,
        elapsed=result.elapsed,
        p50=result.p50,
        p99=result.p99,
        mean_latency=result.mean_latency,
        host_cores=server.host_cores(result.elapsed),
        dpu_cores=server.dpu_cores(result.elapsed),
        client_cores=client_cores,
        latencies=result.latencies,
        events=cluster.env.scheduled_count,
    )


def sweep(
    kind: Solution,
    offered_points: List[float],
    **kwargs,
) -> List[ExperimentResult]:
    """Run one experiment per offered-load point."""
    return [
        run_io_experiment(kind, offered, **kwargs)
        for offered in offered_points
    ]


def find_peak(
    kind: Solution,
    start_iops: float = 200_000.0,
    factor: float = 1.6,
    tolerance: float = 0.05,
    max_rounds: int = 8,
    on_result=None,
    **kwargs,
) -> ExperimentResult:
    """Increase offered load until achieved throughput stops growing.

    Returns the measurement at the peak (Figure 16 reports peak
    throughput and the CPU/latency observed there).  ``on_result`` (if
    given) observes every intermediate measurement — the trajectory
    harness uses it to total event counts across the whole search.
    """
    best: Optional[ExperimentResult] = None
    offered = start_iops
    for _ in range(max_rounds):
        result = run_io_experiment(kind, offered, **kwargs)
        if on_result is not None:
            on_result(result)
        if best is not None and result.achieved_iops < best.achieved_iops * (
            1 + tolerance
        ):
            if result.achieved_iops > best.achieved_iops:
                best = result
            break
        best = result
        offered *= factor
    return best
