"""A DPU-memory read cache for the offload engine (a §10 extension).

The paper notes DDS "can be used to cache data" the way Xenic [59] uses
DPU memory (§10).  This extension adds an LRU page cache, bounded by
the BF-2's on-board DRAM budget, in front of the offload engine's file
reads: a hit serves the response straight from DPU memory (no SSD I/O
at all), pushing read throughput past the device ceiling for skewed
workloads while keeping the miss path identical to stock DDS.

The cache stores real bytes, so correctness (including invalidation on
writes) is testable, and its capacity accounting models the paper's
constraint that DPU memory is small (§2: 16 GB on BF-2, an order of
magnitude below what host-side caches get).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generator, List

from ..core.api import ReadOp
from ..hardware.cpu import CpuCore
from ..hardware.specs import MICROSECOND
from ..sim import Environment, SeededRng
from ..storage.disk import RamDisk, SpdkBdev
from ..storage.filesystem import DdsFileSystem
from ..sim import ZipfGenerator

__all__ = ["DpuReadCache", "CachedReadResult", "run_dpu_cache_experiment"]


class DpuReadCache:
    """LRU cache over (file id, offset, size) extents in DPU memory."""

    #: DPU-memory access time for a cache hit (on-board DDR4).
    HIT_TIME = 1.5 * MICROSECOND
    #: Arm-core time to probe/update the cache per operation.
    PROBE_COST = 0.08 * MICROSECOND

    def __init__(
        self,
        env: Environment,
        core: CpuCore,
        capacity_bytes: int,
    ) -> None:
        if capacity_bytes < 1:
            raise ValueError("cache capacity must be positive")
        self.env = env
        self.core = core
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[tuple, bytes]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def bytes_cached(self) -> int:
        return self._bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @staticmethod
    def _key(read_op: ReadOp) -> tuple:
        return (read_op.file_id, read_op.offset, read_op.size)

    def lookup(self, read_op: ReadOp) -> Generator:
        """Probe the cache; returns the bytes or None (charges the core)."""
        yield from self.core.execute(self.PROBE_COST)
        key = self._key(read_op)
        data = self._entries.get(key)
        if data is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        yield self.env.timeout(self.HIT_TIME)
        return data

    def fill(self, read_op: ReadOp, data: bytes) -> None:
        """Insert after a miss, evicting LRU extents to fit."""
        key = self._key(read_op)
        if key in self._entries:
            return
        if len(data) > self.capacity_bytes:
            return  # never cache something bigger than the budget
        while self._bytes + len(data) > self.capacity_bytes:
            _old_key, old_data = self._entries.popitem(last=False)
            self._bytes -= len(old_data)
            self.evictions += 1
        self._entries[key] = data
        self._bytes += len(data)

    def invalidate_range(
        self, file_id: int, offset: int, size: int
    ) -> int:
        """Drop every cached extent overlapping a written range."""
        end = offset + size
        stale = [
            key
            for key in self._entries
            if key[0] == file_id and key[1] < end and key[1] + key[2] > offset
        ]
        for key in stale:
            data = self._entries.pop(key)
            self._bytes -= len(data)
            self.invalidations += 1
        return len(stale)


@dataclass
class CachedReadResult:
    """Outcome of one DPU-cache experiment."""

    cache_bytes: int
    hit_rate: float
    throughput: float
    mean_latency: float
    ssd_reads: int


def run_dpu_cache_experiment(
    cache_bytes: int,
    pages: int = 512,
    page_bytes: int = 4096,
    reads: int = 4000,
    concurrency: int = 48,
    theta: float = 0.99,
    seed: int = 61,
) -> CachedReadResult:
    """Zipfian reads through an offload path with a DPU read cache.

    ``cache_bytes=0`` disables the cache (stock DDS).  The skew makes a
    small DPU cache absorb most of the traffic — the scenario where DPU
    memory, though small, pays off.
    """
    env = Environment()
    fs = DdsFileSystem(
        env, SpdkBdev(env, RamDisk(pages * page_bytes + (32 << 20)))
    )
    fs.create_directory("cached")
    file_id = fs.create_file("cached", "pages")
    for page_id in range(pages):
        fs.write_sync(
            file_id,
            page_id * page_bytes,
            page_id.to_bytes(8, "little") * (page_bytes // 8),
        )
    core = CpuCore(env, speed=0.35, name="engine")
    spdk_core = CpuCore(env, speed=0.35, name="spdk")
    cache = (
        DpuReadCache(env, core, cache_bytes) if cache_bytes > 0 else None
    )
    rng = SeededRng(seed)
    zipf = ZipfGenerator(pages, theta=theta, rng=rng)
    latencies: List[float] = []

    def serve_read(page_id: int) -> Generator:
        read_op = ReadOp(file_id, page_id * page_bytes, page_bytes)
        if cache is not None:
            data = yield from cache.lookup(read_op)
            if data is not None:
                return data
        yield from spdk_core.execute(0.35e-6)
        data = yield env.process(
            fs.read(file_id, read_op.offset, read_op.size)
        )
        if cache is not None:
            cache.fill(read_op, data)
        return data

    def worker(count: int) -> Generator:
        for _ in range(count):
            page_id = zipf.draw()
            start = env.now
            data = yield env.process(serve_read(page_id))
            latencies.append(env.now - start)
            assert data[:8] == page_id.to_bytes(8, "little")

    per_worker = reads // concurrency
    workers = [env.process(worker(per_worker)) for _ in range(concurrency)]
    env.run(until=env.all_of(workers))
    total = per_worker * concurrency
    return CachedReadResult(
        cache_bytes=cache_bytes,
        hit_rate=cache.hit_rate if cache else 0.0,
        throughput=total / env.now,
        mean_latency=sum(latencies) / len(latencies),
        ssd_reads=fs.bdev.device.stats.reads,
    )
