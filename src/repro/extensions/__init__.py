"""Future-work extensions the paper sketches in §11, implemented.

Hardware-accelerator models (compression, regex) with real data
transforms, compressed page serving on the DPU, and string-operator
pushdown using the regex engine.
"""

from .accelerators import (
    ARM_SOFTWARE_COMPRESSION,
    ARM_SOFTWARE_REGEX,
    BF2_COMPRESSION,
    BF2_REGEX,
    AcceleratorSpec,
    HardwareAccelerator,
    compile_pattern,
    compress_page,
    decompress_page,
    regex_scan,
)
from .dpu_cache import (
    CachedReadResult,
    DpuReadCache,
    run_dpu_cache_experiment,
)
from .multitenancy import (
    DrrScheduler,
    FairnessResult,
    TenantStats,
    run_multitenant_experiment,
)
from .compressed_storage import (
    CompressedPageStore,
    CompressedReadResult,
    run_compressed_read_experiment,
)
# The pushdown names are resolved lazily (PEP 562): repro.pushdown.scan
# imports .accelerators from this package, so importing .pushdown (now a
# shim over repro.pushdown.scan) eagerly here would complete the cycle.
_PUSHDOWN_NAMES = frozenset(
    {"MODES", "PushdownScanner", "ScanResult", "run_pushdown_experiment"}
)


def __getattr__(name: str) -> object:
    if name in _PUSHDOWN_NAMES:
        from . import pushdown

        return getattr(pushdown, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ARM_SOFTWARE_COMPRESSION",
    "CachedReadResult",
    "DpuReadCache",
    "DrrScheduler",
    "FairnessResult",
    "TenantStats",
    "run_dpu_cache_experiment",
    "run_multitenant_experiment",
    "ARM_SOFTWARE_REGEX",
    "AcceleratorSpec",
    "BF2_COMPRESSION",
    "BF2_REGEX",
    "CompressedPageStore",
    "CompressedReadResult",
    "HardwareAccelerator",
    "MODES",
    "PushdownScanner",
    "ScanResult",
    "compile_pattern",
    "compress_page",
    "decompress_page",
    "regex_scan",
    "run_compressed_read_experiment",
    "run_pushdown_experiment",
]
