"""Compressed page serving on the DPU (a §11 future-work extension).

Pages are stored zlib-compressed in the DDS filesystem; an offloaded
GetPage decompresses *on the DPU* before responding, so the host never
touches the page and the SSD reads fewer bytes.  Three ways to pay for
the decompression:

* ``accel``    — the BF-2 deflate engine (hardware, multi-GB/s);
* ``software`` — the same zlib on an Arm core (slow: §2's point that
  only accelerators make compute-heavy data-path work viable on a DPU);
* ``none``     — store pages uncompressed (the §8/§9 default), as the
  baseline for the trade-off.

Bytes are real: pages are compressed with real zlib at load time, read
back through the filesystem, decompressed, and verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from ..hardware.cpu import CpuCore
from ..hardware.specs import DPU_CPU
from ..sim import Environment, SeededRng
from ..storage.disk import RamDisk, SpdkBdev
from ..storage.filesystem import DdsFileSystem
from .accelerators import (
    ARM_SOFTWARE_COMPRESSION,
    BF2_COMPRESSION,
    HardwareAccelerator,
    compress_page,
    decompress_page,
)

__all__ = ["CompressedPageStore", "CompressedReadResult",
           "run_compressed_read_experiment"]

PAGE_BYTES = 8192


def _make_page(page_id: int, rng: SeededRng, redundancy: float) -> bytes:
    """A page with tunable compressibility.

    ``redundancy`` is the fraction of the page filled with a repeating
    motif (compresses well); the rest is random (incompressible).
    """
    repeated = int(PAGE_BYTES * redundancy)
    motif = (page_id % 251).to_bytes(1, "little") * repeated
    noise = bytes(rng.getrandbits(8) for _ in range(PAGE_BYTES - repeated))
    return motif + noise


@dataclass
class _PageEntry:
    offset: int
    stored_bytes: int
    compressed: bool


class CompressedPageStore:
    """A page store whose on-disk representation may be compressed."""

    def __init__(
        self,
        env: Environment,
        pages: int = 256,
        mode: str = "accel",
        redundancy: float = 0.8,
        seed: int = 77,
    ) -> None:
        if mode not in ("accel", "software", "none"):
            raise ValueError(f"unknown mode: {mode!r}")
        self.env = env
        self.mode = mode
        self.pages = pages
        rng = SeededRng(seed)
        self.fs = DdsFileSystem(
            env, SpdkBdev(env, RamDisk(pages * PAGE_BYTES + (32 << 20)))
        )
        self.fs.create_directory("compressed")
        self.file_id = self.fs.create_file("compressed", "pages")
        self.spdk_core = CpuCore(env, speed=DPU_CPU.speed, name="spdk")
        if mode == "accel":
            self.engine = HardwareAccelerator(env, BF2_COMPRESSION)
        elif mode == "software":
            self.engine = HardwareAccelerator(
                env,
                ARM_SOFTWARE_COMPRESSION,
                software_core=CpuCore(env, speed=DPU_CPU.speed, name="arm"),
            )
        else:
            self.engine = None
        self._directory: Dict[int, _PageEntry] = {}
        self._expected: Dict[int, bytes] = {}
        self._load(rng, redundancy)

    # ------------------------------------------------------------------
    # load phase (setup time, not measured)
    # ------------------------------------------------------------------
    def _load(self, rng: SeededRng, redundancy: float) -> None:
        cursor = 0
        for page_id in range(self.pages):
            page = _make_page(page_id, rng, redundancy)
            self._expected[page_id] = page
            if self.mode == "none":
                stored = page
                compressed = False
            else:
                stored = compress_page(page)
                compressed = True
                if len(stored) >= PAGE_BYTES:  # incompressible: keep raw
                    stored = page
                    compressed = False
            self.fs.write_sync(self.file_id, cursor, stored)
            self._directory[page_id] = _PageEntry(
                cursor, len(stored), compressed
            )
            cursor += len(stored)
        self.stored_bytes = cursor

    @property
    def compression_ratio(self) -> float:
        """Logical bytes per stored byte."""
        return self.pages * PAGE_BYTES / self.stored_bytes

    # ------------------------------------------------------------------
    # offloaded read path
    # ------------------------------------------------------------------
    def read_page(self, page_id: int) -> Generator:
        """Read (and decompress) one page entirely on the DPU."""
        entry = self._directory.get(page_id)
        if entry is None:
            raise KeyError(f"no such page: {page_id}")
        yield from self.spdk_core.execute(0.35e-6)
        stored = yield self.env.process(
            self.fs.read(self.file_id, entry.offset, entry.stored_bytes)
        )
        if entry.compressed:
            if self.engine is None:
                raise RuntimeError("compressed page without an engine")
            yield from self.engine.process(entry.stored_bytes)
            page = decompress_page(stored)
        else:
            page = stored
        return page

    def verify(self, page_id: int, page: bytes) -> bool:
        """Data-integrity check against the loaded image."""
        return self._expected[page_id] == page


@dataclass
class CompressedReadResult:
    """Outcome of one compressed-read experiment."""

    mode: str
    throughput: float          # pages/s
    mean_latency: float
    compression_ratio: float
    ssd_bytes_per_page: float  # bytes actually read from the device


def run_compressed_read_experiment(
    mode: str,
    pages: int = 192,
    reads: int = 1500,
    concurrency: int = 32,
    redundancy: float = 0.8,
    seed: int = 77,
) -> CompressedReadResult:
    """Random page reads through the compressed store at one mode."""
    env = Environment()
    store = CompressedPageStore(
        env, pages=pages, mode=mode, redundancy=redundancy, seed=seed
    )
    rng = SeededRng(seed + 1)
    latencies: List[float] = []
    read_bytes_before = store.fs.bdev.device.stats.read_bytes

    def worker(count: int) -> Generator:
        for _ in range(count):
            page_id = rng.randrange(pages)
            start = env.now
            page = yield env.process(store.read_page(page_id))
            latencies.append(env.now - start)
            assert store.verify(page_id, page)

    per_worker = reads // concurrency
    workers = [env.process(worker(per_worker)) for _ in range(concurrency)]
    done = env.all_of(workers)
    env.run(until=done)
    total = per_worker * concurrency
    ssd_bytes = store.fs.bdev.device.stats.read_bytes - read_bytes_before
    return CompressedReadResult(
        mode=mode,
        throughput=total / env.now,
        mean_latency=sum(latencies) / len(latencies),
        compression_ratio=store.compression_ratio,
        ssd_bytes_per_page=ssd_bytes / total,
    )
