"""DPU hardware accelerators (§2's fourth component, §11's future work).

BlueField-class DPUs harden compute-heavy data-path tasks — compression,
encryption, regular-expression matching — in on-board engines that are
"orders of magnitude faster" than running the same work on the Arm cores
(§2).  The paper leaves exploiting them to future work (§11); this
module implements that extension on the simulation substrate:

* :class:`HardwareAccelerator` — an engine with a fixed job-setup
  latency, a streaming bandwidth, and a bounded number of channels.
* Real transforms: compression is real ``zlib``; regex matching is real
  ``re``.  Only *time* is modelled — the accelerator charges engine time
  instead of Arm-core time for the same bytes and results.

Specs are anchored to public BlueField-2 figures: the deflate engine
sustains multiple GB/s, the RXP regex engine is rated for tens of Gbps
of pattern matching, and an Arm core manages a small fraction of either.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from typing import Generator, List, Optional, Pattern, Tuple

from ..hardware.cpu import CpuCore
from ..hardware.specs import GIB, MICROSECOND
from ..sim import Environment, Resource

__all__ = [
    "AcceleratorSpec",
    "HardwareAccelerator",
    "BF2_COMPRESSION",
    "BF2_REGEX",
    "ARM_SOFTWARE_COMPRESSION",
    "ARM_SOFTWARE_REGEX",
    "compress_page",
    "decompress_page",
    "regex_scan",
]


@dataclass(frozen=True)
class AcceleratorSpec:
    """One hardware engine: setup cost, streaming rate, channels."""

    name: str
    setup_latency: float   # per-job submission/completion overhead
    bandwidth: float       # bytes/s streamed through the engine
    channels: int          # concurrent jobs


#: BF-2 deflate engine: multi-GB/s compression/decompression in hardware.
BF2_COMPRESSION = AcceleratorSpec(
    name="bf2-deflate",
    setup_latency=4 * MICROSECOND,
    bandwidth=8 * GIB,
    channels=2,
)

#: BF-2 RXP regular-expression engine.
BF2_REGEX = AcceleratorSpec(
    name="bf2-rxp",
    setup_latency=3 * MICROSECOND,
    bandwidth=5 * GIB,
    channels=2,
)

#: The same work on one Arm core (host-equivalent per-byte costs; the
#: accelerator advantage is one-to-two orders of magnitude, §2).
ARM_SOFTWARE_COMPRESSION = AcceleratorSpec(
    name="arm-zlib",
    setup_latency=1 * MICROSECOND,
    bandwidth=0.12 * GIB,
    channels=1,
)

ARM_SOFTWARE_REGEX = AcceleratorSpec(
    name="arm-re",
    setup_latency=0.5 * MICROSECOND,
    bandwidth=0.25 * GIB,
    channels=1,
)


class HardwareAccelerator:
    """A shared on-board engine; jobs hold a channel for their duration.

    ``software_core`` turns the instance into a software fallback: the
    job occupies the given Arm core instead of a hardware channel, so
    comparisons charge the right resource either way.
    """

    def __init__(
        self,
        env: Environment,
        spec: AcceleratorSpec,
        software_core: Optional[CpuCore] = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self.software_core = software_core
        self._channels = Resource(env, capacity=spec.channels)
        self.jobs = 0
        self.bytes_processed = 0

    def job_time(self, nbytes: int) -> float:
        """Unloaded service time for one job of ``nbytes``."""
        return self.spec.setup_latency + nbytes / self.spec.bandwidth

    def process(self, nbytes: int) -> Generator:
        """Run one job through the engine (or the fallback core)."""
        if nbytes < 0:
            raise ValueError("job size must be non-negative")
        if self.software_core is not None:
            # Software path: the Arm core is busy for the whole job.
            # job_time is wall time on that core; convert to the core's
            # host-equivalent charge.
            yield from self.software_core.execute(
                self.job_time(nbytes) * self.software_core.speed
            )
        else:
            grant = self._channels.request()
            yield grant
            try:
                yield self.env.timeout(self.job_time(nbytes))
            finally:
                self._channels.release()
        self.jobs += 1
        self.bytes_processed += nbytes


# ----------------------------------------------------------------------
# real data transforms (the accelerator models only their *time*)
# ----------------------------------------------------------------------

def compress_page(page: bytes, level: int = 1) -> bytes:
    """Deflate one page (real zlib)."""
    return zlib.compress(page, level)


def decompress_page(blob: bytes) -> bytes:
    """Inflate one page (real zlib)."""
    return zlib.decompress(blob)


def regex_scan(
    data: bytes, pattern: Pattern, record_size: int
) -> List[Tuple[int, bytes]]:
    """Scan fixed-size records for a pattern; returns (index, record).

    This is the string-operator pushdown §11 suggests for the RXP
    engine: evaluation happens where the data is, and only matching
    records travel.
    """
    if record_size <= 0:
        raise ValueError("record_size must be positive")
    matches = []
    for index in range(0, len(data) - record_size + 1, record_size):
        record = data[index : index + record_size]
        if pattern.search(record):
            matches.append((index // record_size, record))
    return matches


def compile_pattern(expression: bytes) -> Pattern:
    """Compile a byte regex for scanning."""
    return re.compile(expression)
