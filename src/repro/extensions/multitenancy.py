"""Multi-tenant isolation on the traffic director (a §10 extension).

Gimbal [52] shows that SmartNIC-attached storage needs fairness
machinery when tenants share the device; the paper cites it as the way
to "extend DDS to better support multi-tenancy" (§10).  This extension
adds a *deficit round-robin* (DRR) scheduler in front of the offload
engine: each tenant's requests queue separately, and the scheduler
dispatches in byte-weighted rounds, so an aggressive tenant cannot
starve a light one of device time.

Implementation is a real DRR (per-tenant FIFOs, quanta, deficits)
running as a simulation process; the experiment contrasts it with the
unscheduled FIFO that stock DDS effectively has.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Generator, List, Optional

from ..sim import Environment, Event, SeededRng, Store

__all__ = [
    "TenantStats",
    "DrrScheduler",
    "FairnessResult",
    "run_multitenant_experiment",
]


@dataclass
class TenantStats:
    """Per-tenant accounting."""

    submitted: int = 0
    dispatched: int = 0
    bytes_dispatched: int = 0
    latencies: List[float] = field(default_factory=list, repr=False)

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> float:
        return max(self.latencies) if self.latencies else 0.0


class DrrScheduler:
    """Deficit round-robin over per-tenant request queues.

    ``submit(tenant, cost_bytes)`` enqueues one request and returns an
    event that triggers when the scheduler dispatches it.  ``weights``
    scale each tenant's quantum (equal shares by default).
    """

    def __init__(
        self,
        env: Environment,
        tenants: List[str],
        quantum_bytes: int = 8192,
        weights: Optional[Dict[str, float]] = None,
        fifo: bool = False,
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        if quantum_bytes < 1:
            raise ValueError("quantum must be positive")
        self.env = env
        self.tenants = list(tenants)
        self.quantum_bytes = quantum_bytes
        self.weights = {t: 1.0 for t in tenants}
        if weights:
            self.weights.update(weights)
        self.fifo = fifo
        self.stats: Dict[str, TenantStats] = {
            t: TenantStats() for t in tenants
        }
        self._queues: Dict[str, Deque] = {t: deque() for t in tenants}
        self._deficits: Dict[str, float] = {t: 0.0 for t in tenants}
        self._fifo_queue: Deque = deque()
        self._wakeup: Store = Store(env)

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def submit(self, tenant: str, cost_bytes: int) -> Event:
        """Enqueue one request; the event fires at dispatch time."""
        if tenant not in self._queues:
            raise ValueError(f"unknown tenant: {tenant!r}")
        if cost_bytes < 1:
            raise ValueError("cost must be positive")
        grant = self.env.event()
        entry = (tenant, cost_bytes, grant, self.env.now)
        if self.fifo:
            self._fifo_queue.append(entry)
        else:
            self._queues[tenant].append(entry)
        self.stats[tenant].submitted += 1
        self._wakeup.try_put(True)
        return grant

    def add_tenant(self, tenant: str, weight: float = 1.0) -> None:
        """Admit a new tenant mid-run with a fresh queue and zero
        deficit (no credit for time before it existed)."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if tenant in self._queues:
            raise ValueError(f"tenant already registered: {tenant!r}")
        self.tenants.append(tenant)
        self.weights[tenant] = weight
        self.stats[tenant] = TenantStats()
        self._queues[tenant] = deque()
        self._deficits[tenant] = 0.0

    def remove_tenant(self, tenant: str) -> int:
        """Retire a tenant; returns how many queued requests were
        dropped (their grant events never fire).  Stats are kept."""
        if tenant not in self._queues:
            raise ValueError(f"unknown tenant: {tenant!r}")
        dropped = len(self._queues.pop(tenant))
        self.tenants.remove(tenant)
        self.weights.pop(tenant)
        self._deficits.pop(tenant)
        return dropped

    @property
    def backlog(self) -> int:
        if self.fifo:
            return len(self._fifo_queue)
        return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------
    def run(self, service: Callable[[str, int], Generator]) -> None:
        """Start the dispatch process; ``service(tenant, bytes)`` is the
        downstream work each dispatched request performs."""
        self.env.process(self._loop(service))

    def _loop(self, service) -> Generator:
        while True:
            # Wakeup tokens can be stale (one per submit, possibly more
            # than the work left), so re-check the backlog after waking.
            while self.backlog == 0:
                yield self._wakeup.get()
            if self.fifo:
                tenant, cost, grant, submitted = self._fifo_queue.popleft()
                yield from self._dispatch(
                    tenant, cost, grant, submitted, service
                )
                continue
            # One DRR round over tenants with queued work.  Snapshot
            # the roster: service generators may add or remove tenants
            # mid-round (removed ones are skipped via the .get guard,
            # added ones wait for the next round).
            for tenant in list(self.tenants):
                queue = self._queues.get(tenant)
                if queue is None:
                    continue
                if not queue:
                    self._deficits[tenant] = 0.0  # no banking while idle
                    continue
                self._deficits[tenant] += (
                    self.quantum_bytes * self.weights[tenant]
                )
                while (
                    queue
                    and tenant in self._queues  # not removed mid-burst
                    and queue[0][1] <= self._deficits[tenant]
                ):
                    _tenant, cost, grant, submitted = queue.popleft()
                    self._deficits[tenant] -= cost
                    yield from self._dispatch(
                        tenant, cost, grant, submitted, service
                    )
                if not queue and tenant in self._deficits:
                    # Forfeit leftover credit the moment the backlog
                    # empties — not at the next busy round — so an idle
                    # stretch can never bank a quantum remainder.
                    self._deficits[tenant] = 0.0

    def _dispatch(
        self, tenant, cost, grant, submitted, service
    ) -> Generator:
        yield from service(tenant, cost)
        stats = self.stats[tenant]
        stats.dispatched += 1
        stats.bytes_dispatched += cost
        stats.latencies.append(self.env.now - submitted)
        grant.succeed()


@dataclass
class FairnessResult:
    """Outcome of the two-tenant contention experiment.

    The decisive number is the light tenant's *worst* latency: under
    FIFO its first request during the burst waits for the whole burst
    (head-of-line blocking); under DRR it is dispatched within one
    round regardless of the heavy backlog.
    """

    scheduler: str
    light_mean_latency: float
    light_max_latency: float
    heavy_mean_latency: float
    light_throughput: float
    heavy_throughput: float


def run_multitenant_experiment(
    scheduler: str,
    duration: float = 0.05,
    light_rate: float = 5_000.0,
    heavy_burst: int = 2_000,
    request_bytes: int = 4096,
    service_time: float = 10e-6,
    seed: int = 71,
) -> FairnessResult:
    """A light interactive tenant vs. a heavy bursty tenant.

    The heavy tenant dumps a deep burst at t=0; the light tenant issues
    a steady trickle.  ``scheduler`` is ``"fifo"`` (stock: the burst
    queues ahead of everything) or ``"drr"`` (isolation).
    """
    if scheduler not in ("fifo", "drr"):
        raise ValueError(f"unknown scheduler: {scheduler!r}")
    env = Environment()
    rng = SeededRng(seed)
    drr = DrrScheduler(
        env, ["light", "heavy"], fifo=(scheduler == "fifo")
    )

    def service(_tenant: str, _cost: int) -> Generator:
        yield env.timeout(service_time)

    drr.run(service)

    def heavy() -> Generator:
        grants = [
            drr.submit("heavy", request_bytes) for _ in range(heavy_burst)
        ]
        yield env.all_of(grants)

    def light() -> Generator:
        while env.now < duration:
            yield env.timeout(rng.exponential(1 / light_rate))
            grant = drr.submit("light", request_bytes)
            yield grant

    env.process(heavy())
    env.process(light())
    env.run(until=duration)
    light_stats = drr.stats["light"]
    heavy_stats = drr.stats["heavy"]
    return FairnessResult(
        scheduler=scheduler,
        light_mean_latency=light_stats.mean_latency,
        light_max_latency=light_stats.max_latency,
        heavy_mean_latency=heavy_stats.mean_latency,
        light_throughput=light_stats.dispatched / duration,
        heavy_throughput=heavy_stats.dispatched / duration,
    )
