"""String-operator pushdown to the DPU (a §11 future-work extension).

Compatibility shim: the implementation moved to
:mod:`repro.pushdown.scan` when offload programs became a verified
bytecode DSL (ROADMAP item 5) — the scanner's regex operator is now
admitted through :func:`repro.pushdown.verifier.verify` like any other
offload program, and the general pipeline scanners live next to it.
The three legacy placements and their cost model are unchanged
(pinned by ``tests/test_pushdown_golden.py``):

* ``ship-all``  — today's split: the storage server ships every page to
  the compute node, which filters locally (network pays for all bytes);
* ``dpu-software`` — the DPU scans with ``re`` on an Arm core before
  shipping matches only (network saved, Arm cores burned);
* ``dpu-regex``    — the DPU scans with the RXP engine (network saved,
  Arm cores idle).
"""

from __future__ import annotations

from ..pushdown.scan import (
    MODES,
    PAGE_BYTES,
    RECORD_BYTES,
    RECORDS_PER_PAGE,
    PushdownScanner,
    ScanResult,
    _make_record,
    run_pushdown_experiment,
)

__all__ = ["ScanResult", "PushdownScanner", "run_pushdown_experiment"]
