"""String-operator pushdown to the DPU (a §11 future-work extension).

§10/§11: full query pushdown is hard on wimpy DPU cores, but the
hardware regex engine can evaluate *string operators* where the data
lives.  This extension scans fixed-size records against a byte regex in
three placements:

* ``ship-all``  — today's split: the storage server ships every page to
  the compute node, which filters locally (network pays for all bytes);
* ``dpu-software`` — the DPU scans with ``re`` on an Arm core before
  shipping matches only (network saved, Arm cores burned);
* ``dpu-regex``    — the DPU scans with the RXP engine (network saved,
  Arm cores idle).

Filtering is real (``re`` over the RamDisk bytes); the accelerator
models who pays for the scan time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..hardware.cpu import CpuCore
from ..hardware.nic import NetworkLink
from ..hardware.specs import DPU_CPU
from ..sim import Environment, SeededRng
from ..storage.disk import RamDisk, SpdkBdev
from ..storage.filesystem import DdsFileSystem
from .accelerators import (
    ARM_SOFTWARE_REGEX,
    BF2_REGEX,
    HardwareAccelerator,
    compile_pattern,
    regex_scan,
)

__all__ = ["ScanResult", "PushdownScanner", "run_pushdown_experiment"]

RECORD_BYTES = 128
PAGE_BYTES = 8192
RECORDS_PER_PAGE = PAGE_BYTES // RECORD_BYTES

MODES = ("ship-all", "dpu-software", "dpu-regex")


def _make_record(index: int, rng: SeededRng, hit: bool) -> bytes:
    """A record that may contain the needle the query searches for."""
    body = bytes(97 + rng.randrange(26) for _ in range(RECORD_BYTES - 24))
    marker = b"needle-%08d" % index if hit else b"chaff--%08d" % index
    return (marker + body)[:RECORD_BYTES].ljust(RECORD_BYTES, b".")


class PushdownScanner:
    """A table of records in the DDS filesystem plus a scan operator."""

    def __init__(
        self,
        env: Environment,
        pages: int = 128,
        selectivity: float = 0.05,
        mode: str = "dpu-regex",
        seed: int = 55,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode: {mode!r}")
        if not 0 <= selectivity <= 1:
            raise ValueError("selectivity must be in [0, 1]")
        self.env = env
        self.mode = mode
        self.pages = pages
        self.link = NetworkLink(env)
        self.fs = DdsFileSystem(
            env, SpdkBdev(env, RamDisk(pages * PAGE_BYTES + (32 << 20)))
        )
        self.fs.create_directory("table")
        self.file_id = self.fs.create_file("table", "records")
        self.spdk_core = CpuCore(env, speed=DPU_CPU.speed, name="spdk")
        self.scan_core = CpuCore(env, speed=DPU_CPU.speed, name="scan")
        if mode == "dpu-regex":
            self.engine: Optional[HardwareAccelerator] = HardwareAccelerator(
                env, BF2_REGEX
            )
        elif mode == "dpu-software":
            self.engine = HardwareAccelerator(
                env, ARM_SOFTWARE_REGEX, software_core=self.scan_core
            )
        else:
            self.engine = None
        rng = SeededRng(seed)
        self.expected_hits = 0
        for page_id in range(pages):
            records = []
            for slot in range(RECORDS_PER_PAGE):
                hit = rng.random() < selectivity
                self.expected_hits += hit
                records.append(
                    _make_record(page_id * RECORDS_PER_PAGE + slot, rng, hit)
                )
            self.fs.write_sync(
                self.file_id, page_id * PAGE_BYTES, b"".join(records)
            )
        self.pattern = compile_pattern(rb"needle-\d{8}")
        self.wire_bytes = 0

    # ------------------------------------------------------------------
    # scan
    # ------------------------------------------------------------------
    def scan_page(self, page_id: int) -> Generator:
        """Scan one page; returns the matching records at the client."""
        yield from self.spdk_core.execute(0.35e-6)
        page = yield self.env.process(
            self.fs.read(self.file_id, page_id * PAGE_BYTES, PAGE_BYTES)
        )
        if self.mode == "ship-all":
            # Ship the whole page; the compute node filters.
            yield from self.link.transmit("server_to_client", PAGE_BYTES)
            self.wire_bytes += PAGE_BYTES
            return regex_scan(page, self.pattern, RECORD_BYTES)
        # Pushdown: evaluate on the DPU, ship matches only.
        yield from self.engine.process(PAGE_BYTES)
        matches = regex_scan(page, self.pattern, RECORD_BYTES)
        payload = len(matches) * RECORD_BYTES
        if payload:
            yield from self.link.transmit("server_to_client", payload)
        self.wire_bytes += payload
        return matches

    def scan_table(self, concurrency: int = 16) -> Generator:
        """Scan every page; returns all matches."""
        results: List[Tuple[int, bytes]] = []

        def worker(page_ids):
            for page_id in page_ids:
                matches = yield self.env.process(self.scan_page(page_id))
                results.extend(matches)

        chunks = [
            list(range(start, self.pages, concurrency))
            for start in range(concurrency)
        ]
        workers = [self.env.process(worker(chunk)) for chunk in chunks]
        yield self.env.all_of(workers)
        return results


@dataclass
class ScanResult:
    """Outcome of one pushdown experiment."""

    mode: str
    scan_seconds: float
    matches: int
    wire_bytes: int
    arm_core_seconds: float


def run_pushdown_experiment(
    mode: str,
    pages: int = 128,
    selectivity: float = 0.05,
    seed: int = 55,
) -> ScanResult:
    """Full-table scan at one operator placement."""
    env = Environment()
    scanner = PushdownScanner(
        env, pages=pages, selectivity=selectivity, mode=mode, seed=seed
    )
    proc = env.process(scanner.scan_table())
    env.run(until=proc)
    matches = proc.value
    assert len(matches) == scanner.expected_hits
    assert all(record.startswith(b"needle-") for _idx, record in matches)
    return ScanResult(
        mode=mode,
        scan_seconds=env.now,
        matches=len(matches),
        wire_bytes=scanner.wire_bytes,
        arm_core_seconds=scanner.scan_core.busy_time,
    )
