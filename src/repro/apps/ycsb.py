"""YCSB workload generator [24] for the KV-service experiments (§9.2).

Standard workload mixes over a fixed key space with a pluggable request
distribution (uniform, as in the paper's §9.2 read benchmark, or
Zipfian).  Each draw yields an operation tuple the KV driver executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..sim import SeededRng, ZipfGenerator

__all__ = ["YcsbWorkload", "WORKLOAD_MIXES"]

#: Operation mixes of the classic YCSB workloads (read, update, rmw).
WORKLOAD_MIXES = {
    "A": {"read": 0.5, "update": 0.5, "rmw": 0.0},
    "B": {"read": 0.95, "update": 0.05, "rmw": 0.0},
    "C": {"read": 1.0, "update": 0.0, "rmw": 0.0},
    "F": {"read": 0.5, "update": 0.0, "rmw": 0.5},
    "RMW": {"read": 0.0, "update": 0.0, "rmw": 1.0},  # Figure 5's benchmark
}


@dataclass
class YcsbOp:
    """One generated operation."""

    kind: str  # "read" | "update" | "rmw"
    key: int
    value: Optional[bytes] = None


class YcsbWorkload:
    """Generates YCSB operations with 8-byte keys and 8-byte values."""

    KEY_BYTES = 8
    VALUE_BYTES = 8

    def __init__(
        self,
        records: int,
        mix: str = "C",
        distribution: str = "uniform",
        theta: float = 0.99,
        seed: int = 7,
    ) -> None:
        if records < 1:
            raise ValueError("need at least one record")
        if mix not in WORKLOAD_MIXES:
            raise ValueError(
                f"unknown mix {mix!r}; choose from {sorted(WORKLOAD_MIXES)}"
            )
        if distribution not in ("uniform", "zipfian"):
            raise ValueError(f"unknown distribution: {distribution!r}")
        self.records = records
        self.mix = mix
        self.distribution = distribution
        self.rng = SeededRng(seed)
        self._zipf = (
            ZipfGenerator(records, theta=theta, rng=self.rng.spawn("zipf"))
            if distribution == "zipfian"
            else None
        )
        self._weights = WORKLOAD_MIXES[mix]

    def draw_key(self) -> int:
        """One key from the configured distribution."""
        if self._zipf is not None:
            return self._zipf.draw()
        return self.rng.randrange(self.records)

    def draw_op(self) -> YcsbOp:
        """One operation from the configured mix."""
        key = self.draw_key()
        roll = self.rng.random()
        if roll < self._weights["read"]:
            return YcsbOp("read", key)
        if roll < self._weights["read"] + self._weights["update"]:
            return YcsbOp("update", key, self._value_for(key))
        return YcsbOp("rmw", key)

    def _value_for(self, key: int) -> bytes:
        return (key & 0xFFFFFFFFFFFFFFFF).to_bytes(self.VALUE_BYTES, "little")

    def ops(self, count: int) -> Iterator[YcsbOp]:
        """A finite stream of operations."""
        for _ in range(count):
            yield self.draw_op()

    def load_keys(self) -> Iterator[Tuple[int, bytes]]:
        """The initial-load phase: every key with its seed value."""
        for key in range(self.records):
            yield key, self._value_for(key)
