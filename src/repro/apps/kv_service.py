"""The disaggregated FASTER service (§9.2, Figures 25-26).

A server machine runs :class:`~repro.apps.faster.FasterKv` with most
records on storage; a client machine sends YCSB reads over the network.
Two deployments:

* **baseline** — the server receives each GET over Windows sockets, runs
  the FASTER read path, and reaches records through an IDevice on the OS
  filesystem.
* **dds** — the IDevice is reimplemented with the DDS front-end library,
  and the offload API caches ``{key -> (file id, offset, size)}`` on
  every log flush (cache-on-write parses the flushed page's records), so
  the traffic director serves GETs for on-disk records entirely from the
  DPU.  GETs for in-memory records — which only the host can see — fall
  back to the host over the split connection.

Requests ride the shared wire format with ``tag`` carrying the key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..core.api import OffloadCallbacks, ReadOp, WriteOp
from ..core.client import ClientConfig, ClientResult, WorkloadClient
from ..core.messages import IoRequest, IoResponse, OpCode
from ..core.server import BaselineServer, DdsOffloadServer
from ..hardware.nic import NetworkLink
from ..hardware.specs import HOST_APP_NET, MICROSECOND, NVME_1TB
from ..hardware.ssd import NvmeDevice
from ..sim import Environment, Event, SeededRng
from ..storage.disk import RamDisk, SpdkBdev
from ..storage.filesystem import DdsFileSystem
from .faster import RECORD, DdsFileDevice, FasterKv, OsFileDevice
from .ycsb import YcsbWorkload

__all__ = [
    "kv_offload_callbacks",
    "KvCluster",
    "build_kv_cluster",
    "run_kv_experiment",
    "KvExperimentResult",
]


def kv_offload_callbacks(kv_file_id: int) -> OffloadCallbacks:
    """The §9.2 offload plan: ~360 lines in the paper, four functions here.

    * cache-on-write parses each flushed log page and caches
      ``{key -> (file id, offset, record size)}``;
    * invalidate-on-read drops entries for records the host pulled back
      (it may modify them in memory);
    * the predicate offloads GETs whose key is cached;
    * the function turns a cached entry into a file read.
    """

    def cache(write_op: WriteOp) -> List[Tuple[int, tuple]]:
        page = write_op.context
        if page is None:
            return []
        items = []
        for start in range(0, len(page) - RECORD.size + 1, RECORD.size):
            key, _value = RECORD.unpack_from(page, start)
            items.append(
                (key, (write_op.file_id, write_op.offset + start, RECORD.size))
            )
        return items

    def invalidate(read_op: ReadOp) -> List[int]:
        # The host is pulling records back (e.g., for RMW); it knows the
        # key embedded at the read offset — here derived from the record
        # itself not being available, we conservatively drop nothing for
        # pure-read workloads and let per-key invalidation happen through
        # explicit deletes in the host path.
        return []

    def off_pred(
        requests: Sequence[IoRequest], table
    ) -> Tuple[List[IoRequest], List[IoRequest]]:
        host: List[IoRequest] = []
        dpu: List[IoRequest] = []
        for request in requests:
            if request.op is OpCode.READ and request.tag in table:
                dpu.append(request)
            else:
                host.append(request)
        return host, dpu

    def off_func(request: IoRequest, table) -> Optional[ReadOp]:
        entry = table.lookup(request.tag)
        if entry is None:
            return None
        file_id, offset, size = entry
        return ReadOp(file_id, offset, size)

    return OffloadCallbacks(
        off_pred=off_pred,
        off_func=off_func,
        cache=cache,
        invalidate=invalidate,
    )


class _CompletionRouter:
    """Resolves DDS-library completions back to waiting IDevice calls."""

    def __init__(self, env: Environment, library, group) -> None:
        self.env = env
        self.library = library
        self.group = group
        self._waiters: Dict[int, Event] = {}
        env.process(self._pump())

    def wait_for(self, request_id: int) -> Event:
        event = self.env.event()
        self._waiters[request_id] = event
        return event

    def _pump(self) -> Generator:
        from ..core.file_library import PollMode

        while True:
            completion = yield self.env.process(
                self.library.poll_wait(self.group, PollMode.SLEEPING)
            )
            request_id, ok, data = completion
            waiter = self._waiters.pop(request_id, None)
            if waiter is not None:
                waiter.succeed(IoResponse(request_id, ok, data))


@dataclass
class KvCluster:
    """A ready-to-drive disaggregated KV deployment."""

    env: Environment
    server: object
    kv: FasterKv
    workload: YcsbWorkload
    kv_file_id: int


def build_kv_cluster(
    kind: str,
    records: int = 400_000,
    memory_budget: int = 256 << 10,
    seed: int = 11,
) -> KvCluster:
    """Assemble the §9.2 setup: most records flushed to storage.

    ``kind`` is ``"baseline"`` or ``"dds"``.  With the default sizing,
    ~96% of records live on disk, as in the paper's memory-constrained
    configuration.  The device uses a small-read NVMe profile: 16-byte
    record reads complete faster than the 1 KiB transfers of §8 (the
    paper's 970 K op/s peak implies ~1 M small-read device IOPS).
    """
    if kind not in ("baseline", "dds"):
        raise ValueError(f"unknown KV deployment: {kind!r}")
    import dataclasses

    env = Environment()
    disk = RamDisk(max(records * RECORD.size * 2, 64 << 20))
    small_read_spec = dataclasses.replace(
        NVME_1TB, name="nvme-1tb-small-reads", read_latency=60 * MICROSECOND
    )
    device_model = NvmeDevice(env, small_read_spec)
    fs = DdsFileSystem(env, SpdkBdev(env, disk, device=device_model))
    fs.create_directory("faster")
    kv_file_id = fs.create_file("faster", "hybrid-log")
    link = NetworkLink(env)
    workload = YcsbWorkload(records, mix="C", seed=seed)

    if kind == "baseline":
        kv_holder: List[FasterKv] = []

        def handler(request: IoRequest) -> Generator:
            if request.op is OpCode.WRITE:
                value = int.from_bytes(request.payload[:8], "little")
                yield env.process(kv_holder[0].upsert(request.tag, value))
                return IoResponse(request.request_id, True)
            value = yield env.process(kv_holder[0].read(request.tag))
            if value is None:
                return IoResponse(request.request_id, False)
            return IoResponse(
                request.request_id, True, RECORD.pack(request.tag, value)
            )

        # FASTER's remote layer is a full data-system network module,
        # heavier than the §8.1 benchmark app's messaging.
        server = BaselineServer(
            env, link, fs, app_handler=handler, app_net_spec=HOST_APP_NET
        )
        device = OsFileDevice(server.osfs, kv_file_id)
        kv = FasterKv(env, server.host_pool, memory_budget, device=device)
        kv_holder.append(kv)
        loader = _load(kv, workload, fs, kv_file_id, cache_table=None)
    else:
        kv_holder = []
        server_holder = []

        def handler(request: IoRequest) -> Generator:
            if request.op is OpCode.WRITE:
                # Upsert: the new version lives on the in-memory tail, so
                # any cached disk location for this key is now stale --
                # the integration drops it (it is re-cached by
                # cache-on-write when the tail flushes, §9.2).
                value = int.from_bytes(request.payload[:8], "little")
                yield env.process(kv_holder[0].upsert(request.tag, value))
                server_holder[0].cache_table.delete(request.tag)
                return IoResponse(request.request_id, True)
            value = yield env.process(kv_holder[0].read(request.tag))
            if value is None:
                return IoResponse(request.request_id, False)
            return IoResponse(
                request.request_id, True, RECORD.pack(request.tag, value)
            )

        callbacks = kv_offload_callbacks(kv_file_id)
        server = DdsOffloadServer(
            env, link, fs, callbacks=callbacks, host_app=handler
        )
        server_holder.append(server)
        group = server.library.create_poll()
        server.library.poll_add(group, kv_file_id)
        router = _CompletionRouter(env, server.library, group)
        device = DdsFileDevice(server.library, kv_file_id, router)
        kv = FasterKv(env, server.host_pool, memory_budget, device=device)
        kv_holder.append(kv)
        loader = _load(
            kv, workload, fs, kv_file_id, cache_table=server.cache_table
        )
    for _ in loader:
        pass
    return KvCluster(
        env=env,
        server=server,
        kv=kv,
        workload=workload,
        kv_file_id=kv_file_id,
    )


def _load(kv, workload, fs, kv_file_id, cache_table):
    """Load phase: populate the store, persisting flushed pages for real.

    Flushed pages are written into the filesystem with zero simulated
    time, and (in the DDS deployment) their records are cached exactly
    as the runtime cache-on-write hook would.
    """
    callbacks = (
        kv_offload_callbacks(kv_file_id) if cache_table is not None else None
    )
    for key, value_bytes in workload.load_keys():
        flushed = kv.load(key, int.from_bytes(value_bytes, "little"))
        if flushed is not None:
            offset, page = flushed
            fs.write_sync(kv_file_id, offset, page)
            if cache_table is not None:
                items = callbacks.cache(
                    WriteOp(kv_file_id, offset, len(page), context=page)
                )
                for item_key, item in items:
                    cache_table.insert(item_key, item)
        yield


@dataclass
class KvExperimentResult:
    """One Figure 25/26 measurement point."""

    kind: str
    offered_ops: float
    achieved_ops: float
    p50: float
    p99: float
    host_cores: float
    dpu_cores: float
    offloaded_fraction: float


def run_kv_experiment(
    kind: str,
    offered_ops: float,
    total_requests: int = 10_000,
    records: int = 400_000,
    memory_budget: int = 256 << 10,
    batch: int = 4,
    max_outstanding: int = 128,
    read_fraction: float = 1.0,
    seed: int = 11,
) -> KvExperimentResult:
    """Drive a YCSB workload at one offered rate.

    ``read_fraction=1.0`` is the paper's uniform-read benchmark;
    lower values mix in upserts (YCSB-B at 0.95, YCSB-A at 0.5), which
    always execute on the host and invalidate the written key's cache
    entry.
    """
    cluster = build_kv_cluster(
        kind, records=records, memory_budget=memory_budget, seed=seed
    )
    request_rng = SeededRng(seed + 1)

    def factory(request_id: int, _rng) -> IoRequest:
        key = cluster.workload.draw_key()
        if request_rng.random() < read_fraction:
            return IoRequest(
                OpCode.READ,
                request_id,
                cluster.kv_file_id,
                0,
                RECORD.size,
                tag=key,
            )
        return IoRequest(
            OpCode.WRITE,
            request_id,
            cluster.kv_file_id,
            0,
            8,
            request_id.to_bytes(8, "little"),
            tag=key,
        )

    config = ClientConfig(
        offered_iops=offered_ops,
        total_requests=total_requests,
        io_size=RECORD.size,
        batch=batch,
        max_outstanding=max_outstanding,
        seed=request_rng.randrange(1 << 30),
    )
    client = WorkloadClient(
        cluster.env,
        cluster.server,
        cluster.kv_file_id,
        config,
        request_factory=factory,
    )
    result: ClientResult = client.run()
    server = cluster.server
    offloaded = 0.0
    director = getattr(server, "director", None)
    if director is not None and (
        director.requests_offloaded + director.requests_to_host
    ):
        offloaded = director.requests_offloaded / (
            director.requests_offloaded + director.requests_to_host
        )
    return KvExperimentResult(
        kind=kind,
        offered_ops=offered_ops,
        achieved_ops=result.achieved_iops,
        p50=result.p50,
        p99=result.p99,
        host_cores=server.host_cores(result.elapsed),
        dpu_cores=server.dpu_cores(result.elapsed),
        offloaded_fraction=offloaded,
    )
