"""A FASTER-like key-value store [20] for the §9.2 integration.

FASTER stores records in a *hybrid log* that spans memory and secondary
storage.  The in-memory tail supports in-place updates; behind it lies a
read-only in-memory region, and everything older is flushed to storage
through the ``IDevice`` abstraction.  A hash index maps keys to their
latest record address in the log.

This module implements the store for real — records are bytes on a
log whose disk portion lives in the DDS filesystem — plus the CPU cost
model that Figure 5 (host vs DPU RMW throughput) and Figures 25/26
(disaggregated service) are driven by.

Record layout on the log: ``key(8) | value(8)`` (the paper's YCSB setup
uses 8 B keys and 8 B values).
"""

from __future__ import annotations

import struct
from typing import Callable, Generator, Optional, Union

from ..core.file_library import DdsFileLibrary
from ..hardware.cpu import CpuCore, CpuPool
from ..hardware.specs import MICROSECOND
from ..sim import Environment
from ..storage.osfs import OsFileSystem

__all__ = ["RECORD", "FasterKv", "OsFileDevice", "DdsFileDevice"]

#: On-log record encoding.
RECORD = struct.Struct("<QQ")


class OsFileDevice:
    """IDevice over the OS filesystem (FASTER's default storage)."""

    def __init__(self, osfs: OsFileSystem, file_id: int) -> None:
        self.osfs = osfs
        self.file_id = file_id

    def read(self, offset: int, size: int) -> Generator:
        """Read log bytes through the OS filesystem."""
        data = yield self.osfs.env.process(
            self.osfs.read(self.file_id, offset, size)
        )
        return data

    def write(self, offset: int, data: bytes) -> Generator:
        """Flush log bytes through the OS filesystem."""
        yield self.osfs.env.process(
            self.osfs.write(self.file_id, offset, data)
        )


class DdsFileDevice:
    """IDevice implemented with the DDS front-end library (§9.2).

    The paper's integration point: ~360 lines of code replace the
    Windows-file IDevice with DDS's library, and flushes flowing through
    the DPU file service populate the cache table via cache-on-write.
    """

    def __init__(
        self,
        library: DdsFileLibrary,
        file_id: int,
        completion_router,
    ) -> None:
        self.library = library
        self.file_id = file_id
        self._router = completion_router

    def read(self, offset: int, size: int) -> Generator:
        """Read log bytes via the DDS library (executed on the DPU)."""
        request_id = yield from self.library.read_file(
            self.file_id, offset, size
        )
        response = yield self._router.wait_for(request_id)
        return response.data

    def write(self, offset: int, data: bytes) -> Generator:
        """Flush log bytes via the DDS library; cache-on-write fires."""
        request_id = yield from self.library.write_file(
            self.file_id, offset, data
        )
        yield self._router.wait_for(request_id)


class FasterKv:
    """Hash index + hybrid log with in-place updates on the mutable tail."""

    #: CPU cost model (host-core-seconds per operation component),
    #: calibrated to FASTER's reported in-memory throughput scale.
    INDEX_COST = 0.25 * MICROSECOND
    INPLACE_COST = 0.30 * MICROSECOND
    APPEND_COST = 0.40 * MICROSECOND
    #: Extra per-byte memory traffic during RMW (reads+writes the value).
    MEMORY_COST_PER_BYTE = 0.002 * MICROSECOND

    #: Fraction of the in-memory region that is mutable (FASTER default).
    MUTABLE_FRACTION = 0.9
    #: Flush granularity to the device.
    PAGE_BYTES = 1 << 15

    def __init__(
        self,
        env: Environment,
        cpu: Union[CpuCore, CpuPool],
        memory_budget: int,
        device=None,
        on_flush: Optional[Callable[[int, bytes], None]] = None,
        memory_cost_scale: float = 1.0,
    ) -> None:
        if memory_budget < 2 * self.PAGE_BYTES:
            raise ValueError("memory budget below two log pages")
        self.env = env
        self.cpu = cpu
        # Figure 5: RMW's random-access memory traffic hurts far more on
        # the DPU's small-cache A72 cores than raw core speed implies.
        self.memory_cost_scale = memory_cost_scale
        self.memory_budget = memory_budget
        self.device = device
        self.on_flush = on_flush
        self.index: dict = {}
        self.tail_address = 0
        self.head_address = 0          # memory/disk boundary
        self._memory_log = bytearray()  # [head_address, tail_address)
        self._flushing = False          # one flush in flight at a time
        self.reads = 0
        self.reads_from_disk = 0
        self.upserts = 0
        self.rmws = 0
        self.flushes = 0

    # ------------------------------------------------------------------
    # region boundaries
    # ------------------------------------------------------------------
    @property
    def read_only_address(self) -> int:
        """Start of the mutable region: in-place updates above this."""
        mutable = int(self.memory_budget * self.MUTABLE_FRACTION)
        return max(self.head_address, self.tail_address - mutable)

    @property
    def bytes_in_memory(self) -> int:
        return self.tail_address - self.head_address

    def _address_in_memory(self, address: int) -> bool:
        return address >= self.head_address

    def _memory_record(self, address: int) -> tuple:
        start = address - self.head_address
        key, value = RECORD.unpack_from(self._memory_log, start)
        return key, value

    def _write_memory_record(self, address: int, key: int, value: int):
        start = address - self.head_address
        RECORD.pack_into(self._memory_log, start, key, value)

    # ------------------------------------------------------------------
    # operations (simulation-process generators)
    # ------------------------------------------------------------------
    def read(self, key: int) -> Generator:
        """Look up ``key``; returns the value or None."""
        yield from self.cpu.execute(self.INDEX_COST)
        self.reads += 1
        address = self.index.get(key)
        if address is None:
            return None
        if self._address_in_memory(address):
            _key, value = self._memory_record(address)
            return value
        if self.device is None:
            raise RuntimeError("record on disk but no IDevice attached")
        self.reads_from_disk += 1
        data = yield from self.device.read(address, RECORD.size)
        _key, value = RECORD.unpack(data)
        return value

    def upsert(self, key: int, value: int) -> Generator:
        """Insert or blind-update ``key``."""
        yield from self.cpu.execute(self.INDEX_COST)
        self.upserts += 1
        address = self.index.get(key)
        if address is not None and address >= self.read_only_address:
            # Hot record on the mutable tail: update in place.
            yield from self.cpu.execute(
                self.INPLACE_COST
                + RECORD.size * self.MEMORY_COST_PER_BYTE * self.memory_cost_scale
            )
            self._write_memory_record(address, key, value)
            return
        yield from self._append(key, value)

    def rmw(self, key: int, update: Callable[[int], int] = None) -> Generator:
        """Read-modify-write: the YCSB RMW operation of Figure 5."""
        yield from self.cpu.execute(self.INDEX_COST)
        self.rmws += 1
        update = update if update is not None else (lambda v: v + 1)
        address = self.index.get(key)
        if address is not None and address >= self.read_only_address:
            yield from self.cpu.execute(
                self.INPLACE_COST
                + 2 * RECORD.size * self.MEMORY_COST_PER_BYTE * self.memory_cost_scale
            )
            _key, value = self._memory_record(address)
            self._write_memory_record(address, key, update(value))
            return
        if address is None:
            current = 0
        elif self._address_in_memory(address):
            _key, current = self._memory_record(address)
        else:
            if self.device is None:
                raise RuntimeError("record on disk but no IDevice attached")
            self.reads_from_disk += 1
            data = yield from self.device.read(address, RECORD.size)
            _key, current = RECORD.unpack(data)
        yield from self._append(key, update(current))

    def _append(self, key: int, value: int) -> Generator:
        yield from self.cpu.execute(
            self.APPEND_COST + RECORD.size * self.MEMORY_COST_PER_BYTE * self.memory_cost_scale
        )
        address = self.tail_address
        self._memory_log.extend(RECORD.pack(key, value))
        self.tail_address += RECORD.size
        self.index[key] = address
        if self.bytes_in_memory > self.memory_budget and not self._flushing:
            yield from self._flush_page()

    def _flush_page(self) -> Generator:
        """Evict the oldest in-memory page to the device.

        At most one flush is in flight: without the guard, overlapping
        appends would both flush (and doubly advance past) the same
        page, losing the records behind it.  Appends arriving during a
        flush let memory exceed the budget transiently; the next append
        flushes again.
        """
        self._flushing = True
        try:
            page = bytes(self._memory_log[: self.PAGE_BYTES])
            offset = self.head_address
            if self.device is not None:
                yield from self.device.write(offset, page)
            if self.on_flush is not None:
                self.on_flush(offset, page)
            del self._memory_log[: self.PAGE_BYTES]
            self.head_address += len(page)
            self.flushes += 1
        finally:
            self._flushing = False

    # ------------------------------------------------------------------
    # bulk load (no simulated time; used to set up experiments)
    # ------------------------------------------------------------------
    def load(self, key: int, value: int) -> Optional[tuple]:
        """Synchronously append one record; returns a flushed page if the
        memory budget overflowed (the caller persists it)."""
        address = self.tail_address
        self._memory_log.extend(RECORD.pack(key, value))
        self.tail_address += RECORD.size
        self.index[key] = address
        if self.bytes_in_memory > self.memory_budget:
            page = bytes(self._memory_log[: self.PAGE_BYTES])
            offset = self.head_address
            del self._memory_log[: self.PAGE_BYTES]
            self.head_address += len(page)
            self.flushes += 1
            if self.on_flush is not None:
                self.on_flush(offset, page)
            return offset, page
        return None
