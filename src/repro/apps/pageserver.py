"""A Hyperscale-like page server (§9.1, Figures 2 and 24).

The page server stores a partition of the database in an RBPEX file on
local SSDs and continuously *replays log records* fetched from the log
server to refresh pages.  Compute servers send **GetPage@LSN** requests
on cache misses: the returned page must reflect all updates up to the
requested LSN.

Pages are 8 KiB and self-describing: the first 16 bytes hold
``page_lsn(8) | page_id(8)``, which is what the cache-on-write hook
parses.  The DDS integration (the paper's "hundreds of lines"):

* ``Cache`` — on every RBPEX write, cache ``{page_id -> (lsn, offset)}``;
* ``Invalidate`` — when the host reads a page to replay log onto it,
  drop its entry so remote reads of the in-flux page divert to the host;
* ``OffPred`` — offload a GetPage@LSN iff the cached LSN >= requested;
* ``OffFunc`` — build the RBPEX read from the cached offset.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..core.api import OffloadCallbacks, ReadOp, WriteOp
from ..core.client import ClientConfig, ClientResult, WorkloadClient
from ..core.messages import IoRequest, IoResponse, OpCode
from ..core.server import BaselineServer, DdsOffloadServer
from ..hardware.cpu import CpuCore
from ..hardware.nic import NetworkLink
from ..hardware.specs import HOST_APP_NET, MICROSECOND
from ..sim import Environment, SeededRng
from ..storage.disk import RamDisk, SpdkBdev
from ..storage.filesystem import DdsFileSystem

__all__ = [
    "PAGE_BYTES",
    "PAGE_HEADER",
    "make_page",
    "parse_page_header",
    "pageserver_callbacks",
    "PageServerCluster",
    "build_pageserver_cluster",
    "run_pageserver_experiment",
    "PageServerResult",
]

PAGE_BYTES = 8192
PAGE_HEADER = struct.Struct("<QQ")  # page_lsn, page_id


def make_page(page_id: int, lsn: int) -> bytes:
    """Materialize one page image with its self-describing header."""
    header = PAGE_HEADER.pack(lsn, page_id)
    return header + bytes(PAGE_BYTES - PAGE_HEADER.size)


def parse_page_header(page: bytes) -> Tuple[int, int]:
    """(lsn, page_id) from a page image."""
    return PAGE_HEADER.unpack_from(page)


def pageserver_callbacks(rbpex_file_id: int) -> OffloadCallbacks:
    """The §9.1 offload plan for GetPage@LSN."""

    def cache(write_op: WriteOp) -> List[Tuple[tuple, tuple]]:
        page = write_op.context
        if page is None or len(page) < PAGE_HEADER.size:
            return []
        items = []
        # A write may carry several pages (log replay batches them).
        for start in range(0, len(page) - PAGE_BYTES + 1, PAGE_BYTES):
            lsn, page_id = PAGE_HEADER.unpack_from(page, start)
            items.append(
                (("page", page_id), (lsn, write_op.offset + start))
            )
        return items

    def invalidate(read_op: ReadOp) -> List[tuple]:
        # The host reads pages only to replay log onto them; every page
        # in the range is about to be stale.
        first = read_op.offset // PAGE_BYTES
        last = (read_op.offset + max(read_op.size, 1) - 1) // PAGE_BYTES
        return [("page", page_id) for page_id in range(first, last + 1)]

    def off_pred(
        requests: Sequence[IoRequest], table
    ) -> Tuple[List[IoRequest], List[IoRequest]]:
        host: List[IoRequest] = []
        dpu: List[IoRequest] = []
        for request in requests:
            entry = None
            if request.op is OpCode.READ:
                entry = table.lookup(("page", request.offset // PAGE_BYTES))
            # Offload iff the cached page is fresh enough for the
            # requested LSN (request.tag).
            if entry is not None and entry[0] >= request.tag:
                dpu.append(request)
            else:
                host.append(request)
        return host, dpu

    def off_func(request: IoRequest, table) -> Optional[ReadOp]:
        entry = table.lookup(("page", request.offset // PAGE_BYTES))
        if entry is None or entry[0] < request.tag:
            return None
        _lsn, offset = entry
        return ReadOp(request.file_id, offset, PAGE_BYTES)

    return OffloadCallbacks(
        off_pred=off_pred,
        off_func=off_func,
        cache=cache,
        invalidate=invalidate,
    )


class _PageServerApp:
    """Host-side page-server logic shared by both deployments.

    Tracks per-page LSNs, runs the log-replay loop, and answers
    GetPage@LSN requests that reach the host (waiting for replay when
    the requested LSN is ahead of the page).
    """

    #: Serialized SQL-stack work per served page (the I/O dispatch /
    #: completion thread), which caps the baseline's page rate.
    SQL_DISPATCH_COST = 6.0 * MICROSECOND
    #: Parallel SQL-stack work per served page (buffer manager, checks).
    SQL_PAGE_COST = 8.0 * MICROSECOND
    #: CPU to apply one log record to a page.
    REPLAY_APPLY_COST = 4.0 * MICROSECOND

    def __init__(
        self,
        env: Environment,
        host_pool,
        rbpex_file_id: int,
        pages: int,
        read_page,
        write_page,
        rng: SeededRng,
    ) -> None:
        self.env = env
        self.host_pool = host_pool
        self.rbpex_file_id = rbpex_file_id
        self.pages = pages
        self.read_page = read_page    # generator: (offset, size) -> bytes
        self.write_page = write_page  # generator: (offset, data) -> None
        self.rng = rng
        self.page_lsns: Dict[int, int] = {p: 0 for p in range(pages)}
        self.current_lsn = 0
        self.dispatch_core = CpuCore(env, speed=1.0, name="sql-dispatch")
        self._lsn_waiters: List[tuple] = []
        self.pages_served = 0
        self.records_replayed = 0

    # ------------------------------------------------------------------
    # log replay
    # ------------------------------------------------------------------
    def start_replay(self, records_per_second: float) -> None:
        """Continuously replay log records onto random pages."""
        if records_per_second > 0:
            self.env.process(self._replay_loop(records_per_second))

    def start_replay_from(self, log_server, max_batch: int = 32) -> None:
        """Replay from a :class:`~repro.apps.compute.LogServer` feed.

        The full §9.1 wiring: log records are pulled in batches over the
        network and applied in LSN order.
        """
        self.env.process(self._replay_from_log(log_server, max_batch))

    def _replay_from_log(self, log_server, max_batch: int) -> Generator:
        while True:
            batch = yield self.env.process(log_server.pull_batch(max_batch))
            for record in batch:
                self.current_lsn = max(self.current_lsn, record.lsn)
                yield self.env.process(
                    self._replay_one(record.page_id, record.lsn)
                )

    def _replay_loop(self, rate: float) -> Generator:
        while True:
            yield self.env.timeout(self.rng.exponential(1.0 / rate))
            page_id = self.rng.randrange(self.pages)
            self.current_lsn += 1
            lsn = self.current_lsn
            yield self.env.process(self._replay_one(page_id, lsn))

    def _replay_one(self, page_id: int, lsn: int) -> Generator:
        offset = page_id * PAGE_BYTES
        # Read the page (invalidate-on-read fires in the file service),
        # apply the record, write it back (cache-on-write re-caches it).
        yield self.env.process(self.read_page(offset, PAGE_BYTES))
        yield from self.host_pool.execute(self.REPLAY_APPLY_COST)
        yield self.env.process(
            self.write_page(offset, make_page(page_id, lsn))
        )
        self.page_lsns[page_id] = lsn
        self.records_replayed += 1
        still_waiting = []
        for waited_page, waited_lsn, event in self._lsn_waiters:
            if waited_page == page_id and lsn >= waited_lsn:
                event.succeed()
            else:
                still_waiting.append((waited_page, waited_lsn, event))
        self._lsn_waiters = still_waiting

    # ------------------------------------------------------------------
    # GetPage@LSN (host path)
    # ------------------------------------------------------------------
    def get_page(self, request: IoRequest) -> Generator:
        """Serve one GetPage@LSN on the host."""
        page_id = request.offset // PAGE_BYTES
        wanted_lsn = request.tag
        yield from self.dispatch_core.execute(self.SQL_DISPATCH_COST)
        yield from self.host_pool.execute(self.SQL_PAGE_COST)
        if self.page_lsns.get(page_id, 0) < wanted_lsn:
            # The page is behind the requested LSN: wait for replay.
            gate = self.env.event()
            self._lsn_waiters.append((page_id, wanted_lsn, gate))
            yield gate
        data = yield self.env.process(
            self.read_page(page_id * PAGE_BYTES, PAGE_BYTES)
        )
        self.pages_served += 1
        return IoResponse(request.request_id, True, data)


@dataclass
class PageServerCluster:
    """A ready-to-drive page-server deployment."""

    env: Environment
    server: object
    app: _PageServerApp
    rbpex_file_id: int
    pages: int


def build_pageserver_cluster(
    kind: str,
    pages: int = 16_384,  # 128 MiB partition (scaled-down 128 GB)
    replay_rate: float = 2_000.0,
    seed: int = 23,
) -> PageServerCluster:
    """Assemble the §9.1 setup: RBPEX on local SSD, replay, GetPage@LSN."""
    if kind not in ("baseline", "dds"):
        raise ValueError(f"unknown page-server deployment: {kind!r}")
    env = Environment()
    disk = RamDisk(pages * PAGE_BYTES + (64 << 20))
    fs = DdsFileSystem(env, SpdkBdev(env, disk))
    fs.create_directory("rbpex")
    rbpex = fs.create_file("rbpex", "data")
    # Materialize every page at LSN 0.
    fs.preallocate(rbpex, pages * PAGE_BYTES)
    for page_id in range(pages):
        fs.write_sync(
            rbpex,
            page_id * PAGE_BYTES,
            PAGE_HEADER.pack(0, page_id),
        )
    link = NetworkLink(env)
    rng = SeededRng(seed)

    if kind == "baseline":
        app_holder: List[_PageServerApp] = []

        def handler(request: IoRequest) -> Generator:
            response = yield env.process(app_holder[0].get_page(request))
            return response

        server = BaselineServer(
            env, link, fs, app_handler=handler, app_net_spec=HOST_APP_NET
        )

        def read_page(offset, size):
            return server.osfs.read(rbpex, offset, size)

        def write_page(offset, data):
            return server.osfs.write(rbpex, offset, data)

        app = _PageServerApp(
            env, server.host_pool, rbpex, pages, read_page, write_page, rng
        )
        app_holder.append(app)
    else:
        app_holder = []

        def handler(request: IoRequest) -> Generator:
            response = yield env.process(app_holder[0].get_page(request))
            return response

        callbacks = pageserver_callbacks(rbpex)
        server = DdsOffloadServer(
            env, link, fs, callbacks=callbacks, host_app=handler
        )
        from .kv_service import _CompletionRouter

        group = server.library.create_poll()
        server.library.poll_add(group, rbpex)
        router = _CompletionRouter(env, server.library, group)

        def read_page(offset, size):
            def op():
                request_id = yield from server.library.read_file(
                    rbpex, offset, size
                )
                response = yield router.wait_for(request_id)
                return response.data

            return op()

        def write_page(offset, data):
            def op():
                request_id = yield from server.library.write_file(
                    rbpex, offset, data
                )
                yield router.wait_for(request_id)

            return op()

        app = _PageServerApp(
            env, server.host_pool, rbpex, pages, read_page, write_page, rng
        )
        app_holder.append(app)
        # Seed the cache table: every page is clean at LSN 0.
        for page_id in range(pages):
            server.cache_table.insert(
                ("page", page_id), (0, page_id * PAGE_BYTES)
            )
    app.start_replay(replay_rate)
    return PageServerCluster(
        env=env, server=server, app=app, rbpex_file_id=rbpex, pages=pages
    )


@dataclass
class PageServerResult:
    """One Figure 2/24 measurement point."""

    kind: str
    offered_pages: float
    achieved_pages: float
    p50: float
    p99: float
    host_cores: float
    dpu_cores: float
    offloaded_fraction: float
    breakdown: Dict[str, float]


def run_pageserver_experiment(
    kind: str,
    offered_pages: float,
    total_requests: int = 6_000,
    pages: int = 16_384,
    replay_rate: float = 2_000.0,
    batch: int = 2,
    max_outstanding: int = 128,
    seed: int = 23,
) -> PageServerResult:
    """Drive GetPage@LSN traffic at one offered rate.

    Requests ask for the page's current LSN (the common case: the
    compute server read the log up to what the page server replayed);
    pages being replayed at that instant divert to the host.
    """
    cluster = build_pageserver_cluster(
        kind, pages=pages, replay_rate=replay_rate, seed=seed
    )
    app = cluster.app
    rng = SeededRng(seed + 1)

    def factory(request_id: int, _rng) -> IoRequest:
        page_id = rng.randrange(cluster.pages)
        wanted = app.page_lsns.get(page_id, 0)
        return IoRequest(
            OpCode.READ,
            request_id,
            cluster.rbpex_file_id,
            page_id * PAGE_BYTES,
            PAGE_BYTES,
            tag=wanted,
        )

    config = ClientConfig(
        offered_iops=offered_pages,
        total_requests=total_requests,
        io_size=PAGE_BYTES,
        batch=batch,
        max_outstanding=max_outstanding,
        seed=seed + 2,
    )
    client = WorkloadClient(
        cluster.env,
        cluster.server,
        cluster.rbpex_file_id,
        config,
        request_factory=factory,
    )
    result: ClientResult = client.run()
    server = cluster.server
    elapsed = result.elapsed
    breakdown: Dict[str, float] = {}
    if kind == "baseline":
        breakdown = {
            "dbms-network": server.app_net.cores_consumed(elapsed),
            "os-network": server.os_tcp.cores_consumed(elapsed),
            "filesystem": server.osfs.layer.cores_consumed(elapsed)
            + server.osfs.serializer.utilization(elapsed),
            "dbms-other": server.app_other.cores_consumed(elapsed)
            + app.dispatch_core.utilization(elapsed),
        }
    offloaded = 0.0
    director = getattr(server, "director", None)
    if director is not None and (
        director.requests_offloaded + director.requests_to_host
    ):
        offloaded = director.requests_offloaded / (
            director.requests_offloaded + director.requests_to_host
        )
    host_cores = server.host_cores(elapsed)
    if kind == "baseline":
        host_cores += app.dispatch_core.utilization(elapsed)
    return PageServerResult(
        kind=kind,
        offered_pages=offered_pages,
        achieved_pages=result.achieved_iops,
        p50=result.p50,
        p99=result.p99,
        host_cores=host_cores,
        dpu_cores=server.dpu_cores(elapsed),
        offloaded_fraction=offloaded,
        breakdown=breakdown,
    )
