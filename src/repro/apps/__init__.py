"""Production-system integrations (§9): page server and FASTER KV."""

from .compute import ComputeServer, LogRecord, LogServer
from .faster import RECORD, DdsFileDevice, FasterKv, OsFileDevice
from .kv_service import (
    KvCluster,
    KvExperimentResult,
    build_kv_cluster,
    kv_offload_callbacks,
    run_kv_experiment,
)
from .pageserver import (
    PAGE_BYTES,
    PAGE_HEADER,
    PageServerCluster,
    PageServerResult,
    build_pageserver_cluster,
    make_page,
    pageserver_callbacks,
    parse_page_header,
    run_pageserver_experiment,
)
from .ycsb import WORKLOAD_MIXES, YcsbWorkload

__all__ = [
    "ComputeServer",
    "DdsFileDevice",
    "LogRecord",
    "LogServer",
    "FasterKv",
    "KvCluster",
    "KvExperimentResult",
    "OsFileDevice",
    "PAGE_BYTES",
    "PAGE_HEADER",
    "PageServerCluster",
    "PageServerResult",
    "RECORD",
    "WORKLOAD_MIXES",
    "YcsbWorkload",
    "build_kv_cluster",
    "build_pageserver_cluster",
    "kv_offload_callbacks",
    "make_page",
    "pageserver_callbacks",
    "parse_page_header",
    "run_kv_experiment",
    "run_pageserver_experiment",
]
