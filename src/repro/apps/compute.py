"""Log server and compute server for the §9.1 architecture.

The paper's Hyperscale-like deployment has three machines: a *compute
server* executing queries over a buffer pool, a *page server* storing
the partition, and a *log server* that decouples logging from data
storage.  The primary ships log to the log server; page servers pull
record batches from it for replay; compute servers send GetPage@LSN
only on buffer-pool misses.

:class:`LogServer` produces a totally-ordered log and serves batched
pulls (each pull pays one network round trip on the shared link).
:class:`ComputeServer` wraps a storage server with an LRU buffer pool:
hits are memory-speed, misses become GetPage@LSN requests tagged with
the compute server's *applied LSN* — the freshness contract §9.1's
offload predicate enforces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..core.messages import IoRequest, IoResponse, OpCode
from ..hardware.nic import NetworkLink
from ..hardware.specs import MICROSECOND
from ..net.packet import FiveTuple
from ..sim import Environment, SeededRng, Store
from .pageserver import PAGE_BYTES

__all__ = ["LogRecord", "LogServer", "ComputeServer"]


@dataclass(frozen=True)
class LogRecord:
    """One log record: which page it touches and its LSN."""

    lsn: int
    page_id: int
    payload_bytes: int = 96  # typical small log record


class LogServer:
    """Orders the primary's log and serves batched pulls to replayers."""

    #: Network cost of one pull (request + response headers).
    PULL_OVERHEAD_BYTES = 64

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        pages: int,
        record_rate: float,
        seed: int = 41,
    ) -> None:
        if record_rate < 0:
            raise ValueError("record rate must be non-negative")
        self.env = env
        self.link = link
        self.pages = pages
        self.record_rate = record_rate
        self.rng = SeededRng(seed)
        self.head_lsn = 0           # newest record produced
        self._queue: Store = Store(env)
        self.records_produced = 0
        self.records_shipped = 0
        if record_rate > 0:
            env.process(self._producer())

    def _producer(self) -> Generator:
        """The primary's log stream arriving at the log server."""
        while True:
            yield self.env.timeout(self.rng.exponential(1 / self.record_rate))
            self.head_lsn += 1
            record = LogRecord(
                lsn=self.head_lsn,
                page_id=self.rng.randrange(self.pages),
            )
            self._queue.try_put(record)
            self.records_produced += 1

    def pull_batch(self, max_records: int = 32) -> Generator:
        """One page-server pull: blocks until at least one record.

        Returns up to ``max_records`` in LSN order, charging the network
        for the shipped bytes.
        """
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        first = yield self._queue.get()
        batch: List[LogRecord] = [first]
        while len(batch) < max_records:
            record = self._queue.try_get()
            if record is None:
                break
            batch.append(record)
        shipped = self.PULL_OVERHEAD_BYTES + sum(
            r.payload_bytes for r in batch
        )
        yield from self.link.transmit("server_to_client", shipped)
        self.records_shipped += len(batch)
        return batch


class ComputeServer:
    """A compute node: LRU buffer pool in front of GetPage@LSN misses."""

    #: CPU-free memory access time for a buffer-pool hit.
    HIT_TIME = 0.5 * MICROSECOND

    def __init__(
        self,
        env: Environment,
        storage_server,
        rbpex_file_id: int,
        pool_pages: int,
        applied_lsn_of=None,
        flow: Optional[FiveTuple] = None,
    ) -> None:
        if pool_pages < 1:
            raise ValueError("buffer pool needs at least one page")
        self.env = env
        self.storage_server = storage_server
        self.rbpex_file_id = rbpex_file_id
        self.pool_pages = pool_pages
        #: Callable returning the LSN this compute server has observed
        #: from the log (what a GetPage@LSN request demands).  Defaults
        #: to 0 (any page version acceptable).
        self.applied_lsn_of = applied_lsn_of or (lambda page_id: 0)
        self.flow = flow or FiveTuple("10.0.0.3", 41_000, "10.0.0.1", 5000)
        self._pool: "OrderedDict[int, bytes]" = OrderedDict()
        self._next_request_id = 1
        self.hits = 0
        self.misses = 0
        self.failed_fetches = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def invalidate(self, page_id: int) -> None:
        """Drop a cached page (e.g., after observing a log record)."""
        self._pool.pop(page_id, None)

    def access(self, page_id: int) -> Generator:
        """Read one page through the buffer pool; returns its bytes."""
        cached = self._pool.get(page_id)
        if cached is not None:
            self._pool.move_to_end(page_id)
            self.hits += 1
            yield self.env.timeout(self.HIT_TIME)
            return cached
        self.misses += 1
        page = yield from self._fetch(page_id)
        if page is not None:
            self._pool[page_id] = page
            if len(self._pool) > self.pool_pages:
                self._pool.popitem(last=False)  # evict LRU
        return page

    def _fetch(self, page_id: int) -> Generator:
        request = IoRequest(
            OpCode.READ,
            self._take_request_id(),
            self.rbpex_file_id,
            page_id * PAGE_BYTES,
            PAGE_BYTES,
            tag=self.applied_lsn_of(page_id),
        )
        responses: List[IoResponse] = []
        done = self.storage_server.submit(
            self.flow, [request], responses.append
        )
        yield done
        response = responses[0]
        if not response.ok:
            self.failed_fetches += 1
            return None
        return response.data

    def _take_request_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id
