"""The open-loop traffic engine: population-scale load against a server.

One simulation process per tenant walks that tenant's arrival stream
(:mod:`repro.workload.arrivals`) and fires each request the moment its
arrival time comes up — *without* waiting for earlier requests to
complete.  That open loop is the defining property: a saturated server
does not slow the offered load down, it just grows queues, times out
clients, and (without defenses) breeds retry storms.  Closed-loop
clients physically cannot produce that regime, which is why every
pre-overload bench missed it.

Retries follow the same :class:`~repro.core.retry.RetryPolicy` contract
as :class:`~repro.core.client.DdsClient` — per-attempt timeout,
exponential backoff with seeded jitter, harder backoff after an
explicit THROTTLED shed — and an optional shared
:class:`~repro.core.retry.RetryBudget` caps the aggregate retry volume
across the whole population.

Determinism: every draw (arrival gaps, file popularity, offsets,
backoff jitter) comes from per-tenant streams spawned off one seed, so
a run is replayable bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence

from ..core.messages import IoRequest, IoResponse, OpCode
from ..hardware.cpu import CpuPool
from ..hardware.specs import HOST_CPU
from ..net.packet import FiveTuple
from ..sim import Environment, SeededRng, ZipfGenerator
from .arrivals import DiurnalCurve, FlashCrowd, RateCurve
from .tenants import TenantSpec, population_users

__all__ = ["OpenLoopTrafficEngine", "TenantOutcome", "TrafficResult"]


@dataclass
class TenantOutcome:
    """One tenant's measured slice of a traffic run."""

    name: str
    offered: int = 0
    acked: int = 0
    failed: int = 0
    throttled: int = 0
    retries: int = 0
    latencies: List[float] = field(default_factory=list, repr=False)

    def percentile(self, p: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(
            len(ordered) - 1, max(0, int(round(p / 100 * len(ordered))) - 1)
        )
        return ordered[index]

    @property
    def p99(self) -> float:
        return self.percentile(99)


@dataclass
class TrafficResult:
    """Aggregate outcome of one engine run."""

    elapsed: float
    users: int
    offered: int = 0
    acked: int = 0
    failed: int = 0
    throttled_responses: int = 0
    retries: int = 0
    budget_denied: int = 0
    duplicates: int = 0
    errors: int = 0
    #: Acks that arrived after the client had already given up.
    late_acks: int = 0
    ack_times: List[float] = field(default_factory=list, repr=False)
    tenants: Dict[str, TenantOutcome] = field(default_factory=dict)

    @property
    def goodput(self) -> float:
        """Client-perceived acked throughput (unique acks / elapsed)."""
        return self.acked / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def amplification(self) -> float:
        """Messages sent per demanded request (1.0 = no retries)."""
        if self.offered == 0:
            return 0.0
        return (self.offered + self.retries) / self.offered

    def goodput_curve(self, bucket: float = 1e-3) -> List[float]:
        """Acked IOPS per ``bucket``-second window since run start."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        if not self.ack_times:
            return []
        buckets = int(self.elapsed / bucket) + 1
        counts = [0] * buckets
        for t in self.ack_times:
            index = int(t / bucket)
            if 0 <= index < buckets:
                counts[index] += 1
        return [count / bucket for count in counts]

    def percentile(self, p: float) -> float:
        """Population-wide latency percentile."""
        merged: List[float] = []
        for outcome in self.tenants.values():
            merged.extend(outcome.latencies)
        if not merged:
            return 0.0
        merged.sort()
        index = min(
            len(merged) - 1, max(0, int(round(p / 100 * len(merged))) - 1)
        )
        return merged[index]

    @property
    def p99(self) -> float:
        return self.percentile(99)


class _TenantState:
    """Per-tenant runtime: RNG streams, flow identity, popularity."""

    __slots__ = ("spec", "rng", "flow", "zipf", "curve", "outcome")

    def __init__(
        self,
        spec: TenantSpec,
        rng: SeededRng,
        flow: FiveTuple,
        zipf: Optional[ZipfGenerator],
        curve: RateCurve,
    ) -> None:
        self.spec = spec
        self.rng = rng
        self.flow = flow
        self.zipf = zipf
        self.curve = curve
        self.outcome = TenantOutcome(spec.name)


class OpenLoopTrafficEngine:
    """Drive a tenant population against a storage server, open loop.

    ``diurnal`` and ``events`` modulate *every* tenant's base rate (the
    flash crowd hits the whole population, as real ones do).  With a
    ``retry_policy`` each request is retried like a chaos client's;
    ``retry_budget`` (shared across all tenants) bounds the storm.
    ``observer`` speaks the client-observer protocol
    (``on_issue``/``on_ack``/``on_give_up``) — wire the
    :class:`~repro.faults.overload.OverloadInvariantChecker` here.
    """

    def __init__(
        self,
        env: Environment,
        server,
        tenants: Sequence[TenantSpec],
        file_ids: Sequence[int],
        horizon: float,
        io_size: int = 1024,
        file_bytes: int = 1 << 20,
        seed: int = 11,
        diurnal: Optional[DiurnalCurve] = None,
        events: Sequence[FlashCrowd] = (),
        retry_policy=None,
        retry_budget=None,
        observer=None,
        drain: float = 5e-3,
        id_base: int = 1,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if not tenants:
            raise ValueError("need at least one tenant")
        if not file_ids:
            raise ValueError("need at least one file id")
        self.env = env
        self.server = server
        self.horizon = horizon
        self.io_size = io_size
        self.file_bytes = file_bytes
        self.drain = drain
        self.retry_policy = retry_policy
        self.retry_budget = retry_budget
        self.observer = observer
        self.rng = SeededRng(seed)
        self.client_pool = CpuPool(env, HOST_CPU, name="traffic-engine")
        self._file_ids = list(file_ids)
        self._slots = max(1, file_bytes // io_size)
        self._next_id = id_base
        self._started = False
        self._start_time = 0.0
        # aggregate counters
        self.offered = 0
        self.acked = 0
        self.failed = 0
        self.throttled_responses = 0
        self.retries = 0
        self.budget_denied = 0
        self.duplicates = 0
        self.errors = 0
        self.late_acks = 0
        self.ack_times: List[float] = []
        self._states: List[_TenantState] = []
        self._flow_tenants: Dict[object, str] = {}
        self._specs_by_name: Dict[str, TenantSpec] = {}
        for spec in tenants:
            state = self._build_state(spec, diurnal, events)
            self._states.append(state)
            self._specs_by_name[spec.name] = spec

    def _build_state(
        self,
        spec: TenantSpec,
        diurnal: Optional[DiurnalCurve],
        events: Sequence[FlashCrowd],
    ) -> _TenantState:
        rng = self.rng.spawn(spec.name)
        # One flow per tenant, unique endpoint: the QoS gate classifies
        # tenants by client endpoint, and RSS spreads them over shards.
        index = spec.index
        flow = FiveTuple(
            f"10.{(index >> 8) & 255}.{index & 255}.2",
            40_000 + (index % 20_000),
            "10.0.0.1",
            5000,
        )
        self._flow_tenants[(flow.client_ip, flow.client_port)] = spec.name
        zipf = None
        if spec.zipf_theta > 0 and len(self._file_ids) > 1:
            zipf = ZipfGenerator(
                len(self._file_ids), theta=spec.zipf_theta, rng=rng
            )
        curve = RateCurve(spec.rate, diurnal=diurnal, events=events)
        return _TenantState(spec, rng, flow, zipf, curve)

    # ------------------------------------------------------------------
    # tenant classification (for the QoS gate and the checker)
    # ------------------------------------------------------------------
    def tenant_for_flow(self, flow: FiveTuple) -> str:
        """Flow → tenant name; pass as ``QosConfig.tenant_of``."""
        return self._flow_tenants.get(
            (flow.client_ip, flow.client_port),
            f"{flow.client_ip}:{flow.client_port}",
        )

    def tenant_for_request(self, request: IoRequest) -> str:
        """Request → tenant name (requests are tagged with the tenant
        index); pass as the checker's ``tenant_of``."""
        index = request.tag
        if 0 <= index < len(self._states):
            return self._states[index].spec.name
        return f"tenant-{index}"

    # ------------------------------------------------------------------
    # request generation
    # ------------------------------------------------------------------
    def _make_request(self, state: _TenantState) -> IoRequest:
        spec = state.spec
        rng = state.rng
        if state.zipf is not None:
            # Per-tenant rotation: every tenant is Zipf-skewed, but
            # their hottest files differ, so population heat spreads.
            index = (state.zipf.draw() + spec.index) % len(self._file_ids)
        else:
            index = rng.randrange(len(self._file_ids))
        file_id = self._file_ids[index]
        offset = rng.randrange(self._slots) * self.io_size
        request_id = self._next_id
        self._next_id += 1
        if rng.random() < spec.read_fraction:
            return IoRequest(
                OpCode.READ,
                request_id,
                file_id,
                offset,
                self.io_size,
                tag=spec.index,
            )
        return IoRequest(
            OpCode.WRITE,
            request_id,
            file_id,
            offset,
            self.io_size,
            bytes(self.io_size),
            tag=spec.index,
        )

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn all tenant processes (for callers that drive
        ``env.run`` themselves, e.g. to inject faults mid-run)."""
        if self._started:
            raise RuntimeError("engine already started")
        self._started = True
        self._start_time = self.env.now
        for state in self._states:
            self.env.process(self._tenant_loop(state))

    def run(self) -> TrafficResult:
        """Start, simulate through horizon + drain, and report."""
        self.start()
        self.env.run(
            until=self.env.timeout(self.horizon + self.drain)
        )
        return self.results()

    def results(self) -> TrafficResult:
        elapsed = self.env.now - self._start_time
        result = TrafficResult(
            elapsed=elapsed,
            users=population_users(
                [state.spec for state in self._states]
            ),
            offered=self.offered,
            acked=self.acked,
            failed=self.failed,
            throttled_responses=self.throttled_responses,
            retries=self.retries,
            budget_denied=self.budget_denied,
            duplicates=self.duplicates,
            errors=self.errors,
            late_acks=self.late_acks,
            ack_times=list(self.ack_times),
        )
        for state in self._states:
            result.tenants[state.spec.name] = state.outcome
        return result

    def _tenant_loop(self, state: _TenantState) -> Generator:
        start = self._start_time
        arrivals = state.spec.arrivals.arrivals(
            state.rng.spawn("arrivals"), state.curve, self.horizon
        )
        for t in arrivals:
            gap = start + t - self.env.now
            if gap > 0:
                yield self.env.timeout(gap)
            request = self._make_request(state)
            self.offered += 1
            state.outcome.offered += 1
            if self.observer is not None:
                self.observer.on_issue(request)
            # Open loop: the delivery (and its retries) runs on its own
            # process; the arrival clock never waits for it.
            self.env.process(self._deliver(state, request))

    def _deliver(
        self, state: _TenantState, request: IoRequest
    ) -> Generator:
        policy = self.retry_policy
        budget = self.retry_budget
        spec = self.server.client_spec
        outcome = state.outcome
        issued = self.env.now
        status = {"acked": False, "settled": False, "throttled": False}

        def on_response(response: IoResponse) -> None:
            if status["acked"]:
                self.duplicates += 1
                return
            if response.ok:
                status["acked"] = True
                if status["settled"]:
                    self.late_acks += 1
                    return
                latency = self.env.now - issued
                outcome.latencies.append(latency)
                outcome.acked += 1
                self.acked += 1
                self.ack_times.append(self.env.now - self._start_time)
                if budget is not None:
                    budget.on_success()
                if self.observer is not None:
                    self.observer.on_ack(request, response)
                signal = status.get("signal")
                if signal is not None and not signal.triggered:
                    signal.succeed()
            elif response.throttled:
                self.throttled_responses += 1
                outcome.throttled += 1
                status["throttled"] = True
                signal = status.get("signal")
                if signal is not None and not signal.triggered:
                    signal.succeed()
            else:
                self.errors += 1

        attempts = policy.max_attempts if policy is not None else 1
        for attempt in range(attempts):
            if status["acked"]:
                break
            if attempt:
                if budget is not None and not budget.try_spend():
                    self.budget_denied += 1
                    break
                self.retries += 1
                outcome.retries += 1
            status["throttled"] = False
            signal = self.env.event()
            status["signal"] = signal
            self.client_pool.charge(
                spec.per_message_core_time
                + request.wire_size * spec.per_byte_core_time
            )
            self.server.submit(state.flow, [request], on_response)
            if policy is None:
                return
            timeout = self.env.timeout(policy.timeout)
            yield self.env.any_of([signal, timeout])
            if status["acked"]:
                break
            if attempt + 1 < attempts:
                delay = policy.backoff(attempt, state.rng)
                if status["throttled"]:
                    # The server said THROTTLED: cooperate, back off
                    # harder than for a silent loss.
                    delay *= policy.throttle_backoff_factor
                yield self.env.timeout(delay)
        status["settled"] = True
        if not status["acked"]:
            self.failed += 1
            outcome.failed += 1
            if self.observer is not None:
                self.observer.on_give_up(request)
