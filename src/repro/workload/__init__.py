"""Open-loop traffic generation at population scale (ROADMAP item 3).

The package that turns "a handful of closed-loop benchmark clients"
into "heavy traffic from millions of users": arrival processes (Poisson
and self-similar), time-varying rate curves (diurnal cycles, flash
crowds), Zipf-skewed file popularity, and heavy-tailed multi-tenant
populations — all driven by :class:`~repro.sim.rng.SeededRng`, so any
run replays deterministically from its seed.

Quickstart::

    from repro.workload import (
        FlashCrowd, OpenLoopTrafficEngine, heavy_tailed_population,
    )

    tenants = heavy_tailed_population(
        count=200, total_rate=150_000.0, rng=SeededRng(7)
    )
    engine = OpenLoopTrafficEngine(
        env, server, tenants, file_ids,
        horizon=40e-3, events=(FlashCrowd(start=10e-3, duration=10e-3),),
    )
    result = engine.run()
    print(result.acked, result.goodput_curve(bucket=1e-3))

The engine is *open loop*: arrivals fire on the tenant's clock whether
or not earlier requests completed, which is exactly the regime where
retry storms and metastable collapse appear (and what the QoS gate in
:mod:`repro.topology.qos` defends against).
"""

from .arrivals import (
    BModelArrivals,
    DiurnalCurve,
    FlashCrowd,
    OnOffArrivals,
    PoissonArrivals,
    RateCurve,
)
from .engine import OpenLoopTrafficEngine, TenantOutcome, TrafficResult
from .tenants import (
    TenantSpec,
    heavy_tailed_population,
    population_users,
)

__all__ = [
    "BModelArrivals",
    "DiurnalCurve",
    "FlashCrowd",
    "OnOffArrivals",
    "OpenLoopTrafficEngine",
    "PoissonArrivals",
    "RateCurve",
    "TenantOutcome",
    "TenantSpec",
    "TrafficResult",
    "heavy_tailed_population",
    "population_users",
]
