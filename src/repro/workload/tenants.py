"""Tenant populations: thousands of tenants, heavy-tailed rates.

A *tenant* aggregates many end users behind one identity (HSDS's "many
simultaneous users from a near-infinite set of locations"): its mean
request rate is the sum of its users' trickles.  Real multi-tenant
populations are heavy-tailed — a few whales dominate aggregate traffic
while a long tail of mice individually do almost nothing — so the
population factory draws per-tenant rates from a Pareto distribution
and normalizes to the requested aggregate.

Scale math: at ``per_user_rate`` = 0.15 req/s (a page server's end
user touching storage every ~7 s), a 150K IOPS aggregate stands for a
million concurrent users; :func:`population_users` reports the exact
number a population models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..sim import SeededRng
from .arrivals import PoissonArrivals

__all__ = ["TenantSpec", "heavy_tailed_population", "population_users"]


@dataclass
class TenantSpec:
    """One tenant's identity, load shape, and service expectations."""

    name: str
    index: int
    #: Mean offered rate (requests/sec) before curve modulation.
    rate: float
    #: DRR weight at the QoS gate.
    weight: float = 1.0
    #: End users this tenant aggregates (reporting only).
    users: int = 1
    read_fraction: float = 1.0
    #: Zipf skew of this tenant's file popularity (0 = uniform).
    zipf_theta: float = 0.99
    #: Declared p99 SLO in seconds (None = best-effort tenant).
    slo_p99: Optional[float] = None
    #: Arrival process; anything with
    #: ``arrivals(rng, curve, horizon) -> Iterator[float]``.
    arrivals: object = field(default_factory=PoissonArrivals)
    #: True marks a deliberately abusive tenant (exempt from SLO
    #: checks; the OL2 question is whether it hurts the others).
    flooder: bool = False

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be >= 0")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")


def heavy_tailed_population(
    count: int,
    total_rate: float,
    rng: SeededRng,
    alpha: float = 1.2,
    per_user_rate: float = 0.15,
    read_fraction: float = 1.0,
    zipf_theta: float = 0.99,
    slo_p99: Optional[float] = None,
    arrivals_factory=PoissonArrivals,
) -> List[TenantSpec]:
    """Build ``count`` tenants whose rates sum to ``total_rate``.

    Per-tenant shares are Pareto(``alpha``) draws normalized to the
    aggregate — alpha near 1 gives a whale-dominated population, large
    alpha approaches uniform.  Each tenant's implied user count is its
    rate divided by ``per_user_rate`` (at least one user).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if total_rate <= 0:
        raise ValueError("total_rate must be positive")
    if alpha <= 1.0:
        raise ValueError("alpha must be > 1 (finite mean)")
    draws = [rng.paretovariate(alpha) for _ in range(count)]
    scale = total_rate / sum(draws)
    specs: List[TenantSpec] = []
    for index, draw in enumerate(draws):
        rate = draw * scale
        specs.append(
            TenantSpec(
                name=f"tenant-{index:04d}",
                index=index,
                rate=rate,
                users=max(1, int(round(rate / per_user_rate))),
                read_fraction=read_fraction,
                zipf_theta=zipf_theta,
                slo_p99=slo_p99,
                arrivals=arrivals_factory(),
            )
        )
    return specs


def population_users(specs: Sequence[TenantSpec]) -> int:
    """Total end users a population stands for."""
    return sum(spec.users for spec in specs)
