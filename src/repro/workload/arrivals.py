"""Arrival processes and time-varying rate curves for open-loop load.

Three arrival families cover the traffic shapes the overload work needs:

* :class:`PoissonArrivals` — memoryless baseline.  Non-homogeneous
  rates (diurnal curves, flash crowds) are handled by *thinning*: draw
  candidate arrivals at the curve's peak rate, keep each with
  probability ``rate(t) / peak`` — the standard exact method for a
  time-varying Poisson process.
* :class:`OnOffArrivals` — self-similar traffic via heavy-tailed ON/OFF
  periods (Pareto with shape ``alpha`` in (1, 2)).  Superposing many
  such sources is the classical construction of long-range-dependent
  network traffic (Willinger et al.); a single source already shows
  burst trains no Poisson stream produces.
* :class:`BModelArrivals` — the b-model (biased binary budget splits):
  a deterministic-count burst cascade whose index of dispersion grows
  with aggregation scale.  Good for "how bursty can one tenant be".

All draws come from the caller's :class:`~repro.sim.rng.SeededRng`;
an arrival sequence is a pure function of (seed, curve, horizon).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..sim import SeededRng

__all__ = [
    "DiurnalCurve",
    "FlashCrowd",
    "RateCurve",
    "PoissonArrivals",
    "OnOffArrivals",
    "BModelArrivals",
]

_TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class DiurnalCurve:
    """Sinusoidal day/night load modulation.

    ``multiplier(t)`` swings in ``[1 - amplitude, 1 + amplitude]`` with
    the given period; ``phase`` shifts where in the cycle t=0 falls
    (phase 0 starts at the mean, rising).
    """

    amplitude: float = 0.5
    period: float = 86_400.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def multiplier(self, t: float) -> float:
        return 1.0 + self.amplitude * math.sin(
            _TWO_PI * (t - self.phase) / self.period
        )

    @property
    def peak_multiplier(self) -> float:
        return 1.0 + self.amplitude


@dataclass(frozen=True)
class FlashCrowd:
    """A rate spike: ``multiplier``× between ``start`` and
    ``start + duration``, with optional linear ramps at both edges."""

    start: float
    duration: float
    multiplier: float = 10.0
    ramp: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.ramp < 0 or self.ramp * 2 > self.duration:
            raise ValueError("need 0 <= ramp <= duration / 2")

    def multiplier_at(self, t: float) -> float:
        if t < self.start or t >= self.start + self.duration:
            return 1.0
        if self.ramp > 0:
            into = t - self.start
            left = self.start + self.duration - t
            edge = min(into, left)
            if edge < self.ramp:
                return 1.0 + (self.multiplier - 1.0) * (edge / self.ramp)
        return self.multiplier


class RateCurve:
    """``rate(t) = base × diurnal(t) × Π flash_crowd(t)``.

    The curve also knows its own peak, which thinning-based arrival
    processes use as the dominating homogeneous rate.
    """

    def __init__(
        self,
        base_rate: float,
        diurnal: DiurnalCurve = None,
        events: Sequence[FlashCrowd] = (),
    ) -> None:
        if base_rate < 0:
            raise ValueError("base_rate must be >= 0")
        self.base_rate = base_rate
        self.diurnal = diurnal
        self.events = tuple(events)

    def rate(self, t: float) -> float:
        rate = self.base_rate
        if self.diurnal is not None:
            rate *= self.diurnal.multiplier(t)
        for event in self.events:
            rate *= event.multiplier_at(t)
        return rate

    def peak_rate(self) -> float:
        peak = self.base_rate
        if self.diurnal is not None:
            peak *= self.diurnal.peak_multiplier
        for event in self.events:
            peak *= event.multiplier
        return peak

    def mean_rate(self, horizon: float, samples: int = 256) -> float:
        """Midpoint-sampled mean of ``rate`` over ``[0, horizon)``."""
        if horizon <= 0 or samples < 1:
            return self.base_rate
        dt = horizon / samples
        return (
            sum(self.rate((i + 0.5) * dt) for i in range(samples)) / samples
        )


@dataclass(frozen=True)
class PoissonArrivals:
    """(Non-)homogeneous Poisson arrivals by thinning."""

    def arrivals(
        self, rng: SeededRng, curve: RateCurve, horizon: float
    ) -> Iterator[float]:
        peak = curve.peak_rate()
        if peak <= 0 or horizon <= 0:
            return
        mean_gap = 1.0 / peak
        t = 0.0
        while True:
            t += rng.exponential(mean_gap)
            if t >= horizon:
                return
            if curve.rate(t) >= peak * rng.random():
                yield t


@dataclass(frozen=True)
class OnOffArrivals:
    """Self-similar single source: heavy-tailed ON/OFF phases.

    Phase lengths are Pareto(``alpha``) with the given means; within an
    ON phase, arrivals are Poisson at ``rate / duty`` (duty = ON
    fraction), so the long-run mean matches the curve while the
    short-run stream is a train of heavy bursts separated by
    heavy-tailed silences.
    """

    mean_on: float = 2e-3
    mean_off: float = 6e-3
    alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.mean_on <= 0 or self.mean_off <= 0:
            raise ValueError("phase means must be positive")
        if not 1.0 < self.alpha < 2.0:
            raise ValueError(
                "alpha must be in (1, 2) for heavy tails with finite mean"
            )

    def _phase(self, rng: SeededRng, mean: float) -> float:
        # random.Random.paretovariate(alpha) has mean alpha/(alpha-1)
        # (scale 1); rescale so the phase's mean is ``mean``.
        scale = mean * (self.alpha - 1.0) / self.alpha
        return scale * rng.paretovariate(self.alpha)

    def arrivals(
        self, rng: SeededRng, curve: RateCurve, horizon: float
    ) -> Iterator[float]:
        base_peak = curve.peak_rate()
        if base_peak <= 0 or horizon <= 0:
            return
        duty = self.mean_on / (self.mean_on + self.mean_off)
        burst_gap = duty / base_peak  # 1 / (peak / duty)
        t = 0.0
        on = rng.random() < duty
        phase_end = self._phase(
            rng, self.mean_on if on else self.mean_off
        )
        while t < horizon:
            if not on:
                t = phase_end
                on = True
                phase_end = t + self._phase(rng, self.mean_on)
                continue
            t += rng.exponential(burst_gap)
            if t >= phase_end:
                t = phase_end
                on = False
                phase_end = t + self._phase(rng, self.mean_off)
                continue
            if t < horizon and curve.rate(t) >= base_peak * rng.random():
                yield t


@dataclass(frozen=True)
class BModelArrivals:
    """b-model burst cascade (biased multiplicative budget splits).

    The horizon is split recursively in half ``levels`` times; at each
    split, a ``bias`` fraction of the interval's arrival budget lands
    on one (randomly chosen) half.  ``bias = 0.5`` degenerates to
    near-uniform; 0.7–0.9 produces the multi-scale burstiness measured
    in real storage traces.  The total count follows the curve's mean
    rate; the *placement* is what the cascade skews.
    """

    bias: float = 0.75
    levels: int = 10

    def __post_init__(self) -> None:
        if not 0.5 <= self.bias < 1.0:
            raise ValueError("bias must be in [0.5, 1)")
        if self.levels < 1:
            raise ValueError("levels must be >= 1")

    def arrivals(
        self, rng: SeededRng, curve: RateCurve, horizon: float
    ) -> Iterator[float]:
        if horizon <= 0:
            return
        count = int(round(curve.mean_rate(horizon) * horizon))
        if count <= 0:
            return
        times: List[float] = []
        stack: List[Tuple[float, float, int, int]] = [
            (0.0, horizon, count, 0)
        ]
        while stack:
            start, span, budget, level = stack.pop()
            if budget <= 0:
                continue
            if level >= self.levels:
                for _ in range(budget):
                    times.append(start + rng.random() * span)
                continue
            hot = int(round(budget * self.bias))
            if rng.random() < 0.5:
                left, right = hot, budget - hot
            else:
                left, right = budget - hot, hot
            half = span / 2.0
            stack.append((start, half, left, level + 1))
            stack.append((start + half, half, right, level + 1))
        times.sort()
        for t in times:
            yield t
