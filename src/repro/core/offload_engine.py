"""The offload engine (§6, Figure 13): executing reads entirely on the DPU.

For each offloadable request the engine (1) applies the user's
``off_func`` to produce a file :class:`~repro.core.api.ReadOp`, (2) leases
a read buffer from the pre-allocated DMA pool so the SSD writes straight
into what will become the packet payload (Figure 12's zero-copy), and
(3) book-keeps the operation in a fixed-size *context ring* that enforces
response ordering: completions are only released from the head, so
responses leave in request order even though the device completes out of
order.

Backpressure follows Figure 13 lines 5-7: when the context ring (or the
buffer pool) is exhausted, ``handle`` returns False and the traffic
director forwards the request to the host instead.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Generator, List, Optional

from ..concurrency.hooks import yield_point
from ..hardware.cpu import CpuCore
from ..hardware.specs import MICROSECOND
from ..sim import Environment, Store
from ..structures.atomics import AtomicCounter
from ..structures.cuckoo import CuckooCacheTable
from ..structures.memory import BufferPool, DmaBuffer
from ..structures.response import ResponseStatus
from .api import OffloadCallbacks
from .file_service import DpuFileService
from .messages import IoRequest, IoResponse

__all__ = ["OffloadEngine", "ContextStatus", "Context"]


class ContextStatus(Enum):
    """Completion status of one context-ring slot."""

    PENDING = "pending"
    COMPLETE = "complete"
    FAILED = "failed"


class Context:
    """Book-keeping for one in-flight offloaded read (Figure 13)."""

    __slots__ = ("request", "read_op", "buffer", "respond", "status", "data")

    def __init__(
        self,
        request: IoRequest,
        read_op,
        buffer: Optional[DmaBuffer],
        respond: Callable,
    ) -> None:
        self.request = request
        self.read_op = read_op
        self.buffer = buffer
        self.respond = respond
        self.status = ContextStatus.PENDING
        self.data: Optional[bytes] = None


class OffloadEngine:
    """Context-ring execution of offloaded reads with zero-copy buffers.

    Steering counters (``offloaded``, ``bounced_*``) are
    :class:`~repro.structures.atomics.AtomicCounter` instances behind
    int-valued properties: the simulated engine is single-core, but the
    counters are also read by harness invariant checkers while intake
    steps interleave, and atomic adds make them exact either way.
    """

    _DDSLINT_EXEMPT = {
        "_ring": (
            "slot ownership: intake writes the slot whose index it "
            "reserved with the tail fetch_add; the completion walker "
            "clears only [head, tail) slots whose status has published"
        ),
    }

    #: Host-core-seconds to run OffFunc + bookkeeping per request.
    OFFFUNC_COST = 0.06 * MICROSECOND
    #: Host-core-seconds to build indirect packet buffers per response.
    CREATE_PKTS_COST = 0.06 * MICROSECOND
    #: copy_mode only: straw-man per-byte copy between file service and
    #: packet buffers (§6.2's rejected design, ablated in Figure 23).
    COPY_COST_PER_BYTE = 0.20e-9

    def __init__(
        self,
        env: Environment,
        core: CpuCore,
        file_service: DpuFileService,
        callbacks: OffloadCallbacks,
        cache_table: CuckooCacheTable,
        pool: Optional[BufferPool] = None,
        context_slots: int = 512,
        copy_mode: bool = False,
    ) -> None:
        if context_slots < 1:
            raise ValueError("context ring needs at least one slot")
        self.env = env
        self.core = core
        self.file_service = file_service
        self.callbacks = callbacks
        self.cache_table = cache_table
        self.pool = pool if pool is not None else BufferPool(256 << 20)
        self.context_slots = context_slots
        self.copy_mode = copy_mode
        self._ring: List[Optional[Context]] = [None] * context_slots
        self._head = AtomicCounter(0)
        self._tail = AtomicCounter(0)
        self._completing = False  # re-entrancy guard for _complete_ready
        self._crashed = False
        # Bumped on every crash: completion walkers that resumed from a
        # yield across a crash observe the bump and stand down instead
        # of touching the (cleared) ring.
        self._epoch = AtomicCounter(0)
        self._notify: Store = Store(env)
        self._offloaded = AtomicCounter(0)
        self._bounced_ring_full = AtomicCounter(0)
        self._bounced_no_buffer = AtomicCounter(0)
        self._bounced_off_func = AtomicCounter(0)
        env.process(self._completion_pump())

    # ------------------------------------------------------------------
    # steering counters (read as plain ints by reports and tests)
    # ------------------------------------------------------------------
    @property
    def offloaded(self) -> int:
        """Requests executed on the DPU."""
        return self._offloaded.load()

    @property
    def bounced_ring_full(self) -> int:
        """Requests bounced to the host because the context ring was full."""
        return self._bounced_ring_full.load()

    @property
    def bounced_no_buffer(self) -> int:
        """Requests bounced to the host on buffer-pool exhaustion."""
        return self._bounced_no_buffer.load()

    @property
    def bounced_off_func(self) -> int:
        """Requests the user's off_func declined to offload."""
        return self._bounced_off_func.load()

    # ------------------------------------------------------------------
    # crash / restart (chaos layer)
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """True while the engine is down (intake rejects everything)."""
        return self._crashed

    @property
    def epoch(self) -> int:
        """Crash generation: bumped once per :meth:`crash`."""
        return self._epoch.load()

    def crash(self) -> int:
        """Kill the engine: every in-flight context is lost, unanswered.

        Models a DPU software crash — the context ring, the leased DMA
        buffers, and the pending responses all vanish.  Returns how many
        contexts were dropped (their clients recover via retry).  The
        engine object itself survives so :meth:`restart` can bring it
        back with an empty ring.
        """
        if self._crashed:
            raise RuntimeError("offload engine is already crashed")
        self._crashed = True
        self._epoch.fetch_add(1)
        dropped = 0
        for slot in range(self.context_slots):
            context = self._ring[slot]
            if context is None:
                continue
            yield_point("engine.ctx_slot", ("engine.ring", id(self), slot))
            self._ring[slot] = None
            if context.buffer is not None:
                context.buffer.release()
            dropped += 1
        # Head catches up to tail: the ring restarts empty.
        self._head.store(self._tail.load())
        return dropped

    def restart(self) -> None:
        """Bring a crashed engine back with an empty context ring."""
        if not self._crashed:
            raise RuntimeError("offload engine is not crashed")
        self._crashed = False

    # ------------------------------------------------------------------
    # request intake (runs on the director's core)
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._tail.load() - self._head.load()

    def handle(
        self,
        request: IoRequest,
        respond: Callable,
        on_bounce: Optional[Callable[[str], None]] = None,
    ) -> Generator:
        """Try to execute ``request`` on the DPU; False -> host fallback.

        ``respond(IoResponse)`` is invoked (via the traffic director) when
        this request's turn at the head of the context ring comes up.
        ``on_bounce`` (optional) is called synchronously with the bounce
        kind — ``"off-func"`` (policy declined), ``"no-buffer"`` or
        ``"ring-full"`` (capacity) — so the caller can tell a saturated
        engine from one that simply does not want the request.
        """
        if self._crashed:
            return False  # dead engine: no cost, immediate host fallback
        yield from self._complete_ready()
        yield from self.core.execute(self.OFFFUNC_COST)
        if self._crashed:
            # The engine died while this intake was on the core.
            return False
        read_op = self.callbacks.off_func(request, self.cache_table)
        if read_op is None:
            self._bounced_off_func.fetch_add(1)
            if on_bounce is not None:
                on_bounce("off-func")
            return False
        buffer = self.pool.allocate(max(1, read_op.size))
        if buffer is None:
            self._bounced_no_buffer.fetch_add(1)
            if on_bounce is not None:
                on_bounce("no-buffer")
            return False
        # The capacity check and the slot insert must not be separated
        # by a simulation yield: concurrent handle() calls would
        # otherwise both pass the check and overwrite a live slot.  The
        # tail fetch_add *reserves* the slot index (like ProgressRing's
        # tail CAS), so the subsequent slot write is exclusively owned.
        if self.in_flight >= self.context_slots:
            self._bounced_ring_full.fetch_add(1)
            buffer.release()
            if on_bounce is not None:
                on_bounce("ring-full")
            return False
        context = Context(request, read_op, buffer, respond)
        tail = self._tail.fetch_add(1)
        slot = tail % self.context_slots
        yield_point("engine.ctx_slot", ("engine.ring", id(self), slot))
        self._ring[slot] = context
        self._offloaded.fetch_add(1)
        self.env.process(
            self.file_service.execute_offloaded(
                read_op, self._completion_callback(context)
            )
        )
        return True

    def _completion_callback(self, context: Context) -> Callable:
        def on_complete(status: ResponseStatus, data: Optional[bytes]):
            if status is ResponseStatus.SUCCESS:
                context.status = ContextStatus.COMPLETE
                context.data = data
            else:
                context.status = ContextStatus.FAILED
            self._notify.try_put(True)

        return on_complete

    # ------------------------------------------------------------------
    # ordered completion (Figure 13, CompletePending)
    # ------------------------------------------------------------------
    def _completion_pump(self) -> Generator:
        """Continually process completions (Figure 13 line 16)."""
        while True:
            yield self._notify.get()
            yield from self._complete_ready()

    def _complete_ready(self) -> Generator:
        """Release completed contexts from the head, preserving order.

        Both the intake path and the completion pump call this; the
        guard ensures only one walker advances the head at a time (the
        engine is single-core, so concurrent walkers would model a data
        race that the real single-threaded engine cannot have).
        """
        if self._completing:
            return
        self._completing = True
        epoch = self._epoch.load()
        try:
            while True:
                head = self._head.load()
                if head >= self._tail.load():
                    break
                slot = head % self.context_slots
                context = self._ring[slot]
                if context is None or context.status is ContextStatus.PENDING:
                    # None: tail was reserved but the slot write has not
                    # landed yet — treat like a pending read and stop.
                    break  # stop at the first pending read: ordering
                yield from self.core.execute(self.CREATE_PKTS_COST)
                if self.copy_mode and context.data is not None:
                    yield from self.core.execute(
                        self.COPY_COST_PER_BYTE * len(context.data)
                    )
                if self._epoch.load() != epoch:
                    # The engine crashed across the yield: the ring was
                    # cleared (and this context's buffer released) under
                    # us.  Its response dies with the engine.
                    return
                response = IoResponse(
                    context.request.request_id,
                    context.status is ContextStatus.COMPLETE,
                    context.data,
                )
                yield_point("engine.ctx_slot", ("engine.ring", id(self), slot))
                self._ring[slot] = None
                self._head.fetch_add(1)
                context.buffer.release()
                context.respond(response)
        finally:
            self._completing = False
