"""The DPU file service (§4.3): file execution offloaded from the host.

Per the paper's resource budget (§7), the service owns two of the DPU's
Arm cores: a *DMA thread* that fetches request batches from host rings
and delivers response batches back, and an *SPDK worker* that submits
file I/O to the userspace NVMe driver and harvests completions.

The zero-copy discipline of §4.3 is modelled faithfully:

* the DPU-side request buffer is at least as large as the host ring, so
  request data is used in place (no request copies);
* response space is *pre-allocated* in a
  :class:`~repro.structures.response.ResponseBuffer` before I/O submission
  and filled asynchronously, with TailA/TailB/TailC preserving request
  order and batching DMA write-backs.

``copy_mode=True`` disables both optimizations and charges the memory
copies instead — the ablation Figure 18 plots.
"""

from __future__ import annotations

from typing import Generator, List

from ..hardware.cpu import CpuCore
from ..hardware.specs import MICROSECOND
from ..sim import Environment, Store
from ..storage.filesystem import DdsFileSystem, FileSystemError
from ..structures.response import PreallocatedResponse, ResponseStatus
from .api import ReadOp, WriteOp
from .dma_ring import DmaRingChannel
from .messages import IoRequest, IoResponse, OpCode

__all__ = ["DpuFileService"]


class DpuFileService:
    """DMA thread + SPDK worker executing file operations on the DPU."""

    #: Host-core-seconds to parse/dispatch one fetched request (DMA core).
    PARSE_COST = 0.20 * MICROSECOND
    #: Host-core-seconds to build and submit one bdev I/O (SPDK core).
    SUBMIT_COST = 0.35 * MICROSECOND
    #: copy_mode only: per-byte memory-copy cost (host-core-seconds), one
    #: copy per operation, plus a per-op transient allocation.
    COPY_COST_PER_BYTE = 0.15e-9
    COPY_ALLOC_COST = 0.20 * MICROSECOND
    #: DMA-thread sleep when a full polling cycle made no progress.
    POLL_INTERVAL = 2.0 * MICROSECOND
    #: Response-buffer capacity per channel and DMA write-back batch.
    RESPONSE_BUFFER_BYTES = 4 << 20
    DELIVERY_BATCH_BYTES = 4096

    def __init__(
        self,
        env: Environment,
        filesystem: DdsFileSystem,
        dma_core: CpuCore,
        spdk_core: CpuCore,
        copy_mode: bool = False,
    ) -> None:
        self.env = env
        self.filesystem = filesystem
        self.dma_core = dma_core
        self.spdk_core = spdk_core
        self.copy_mode = copy_mode
        self.channels: List[DmaRingChannel] = []
        self._response_buffers: dict = {}
        self._io_queue: Store = Store(env)
        self.requests_executed = 0
        self.request_errors = 0
        self._running = False
        self._callbacks = None
        self._cache_table = None

    def set_offload_hooks(self, callbacks, cache_table) -> None:
        """Install the user's Cache/Invalidate hooks (§6.1, Table 2).

        The file service invokes ``cache`` for every host file write and
        ``invalidate`` for every host file read, maintaining the cache
        table the traffic director and offload engine consult.
        """
        self._callbacks = callbacks
        self._cache_table = cache_table

    def _apply_cache_hooks(self, request: IoRequest) -> None:
        if self._callbacks is None or self._cache_table is None:
            return
        if request.op is OpCode.WRITE and self._callbacks.cache is not None:
            items = self._callbacks.cache(
                WriteOp(
                    request.file_id,
                    request.offset,
                    request.size,
                    context=request.payload,
                )
            )
            for key, item in items or []:
                self._cache_table.insert(key, item)
        elif request.op is OpCode.READ and (
            self._callbacks.invalidate is not None
        ):
            keys = self._callbacks.invalidate(
                ReadOp(request.file_id, request.offset, request.size)
            )
            for key in keys or []:
                self._cache_table.delete(key)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register_channel(self, channel: DmaRingChannel) -> None:
        """Attach one notification group's rings to this service."""
        from ..structures.response import ResponseBuffer

        self.channels.append(channel)
        self._response_buffers[id(channel)] = ResponseBuffer(
            self.RESPONSE_BUFFER_BYTES, self.DELIVERY_BATCH_BYTES
        )

    def start(self) -> None:
        """Spawn the DMA thread and the SPDK worker."""
        if self._running:
            raise RuntimeError("file service already started")
        self._running = True
        self.env.process(self._dma_thread())
        self.env.process(self._spdk_worker())

    # ------------------------------------------------------------------
    # DMA thread: fetch requests, deliver responses
    # ------------------------------------------------------------------
    def _dma_thread(self) -> Generator:
        idle_cycles = 0
        while True:
            progress = False
            for channel in self.channels:
                batch = yield from channel.fetch_batch()
                if batch:
                    progress = True
                    yield from self.dma_core.execute(
                        self.PARSE_COST * len(batch)
                    )
                    for encoded in batch:
                        request = IoRequest.decode(encoded)
                        self._io_queue.try_put((channel, request))
            for channel in self.channels:
                delivered = yield from self._deliver(
                    channel, force=idle_cycles >= 2
                )
                progress = progress or delivered
            if progress:
                idle_cycles = 0
            else:
                idle_cycles += 1
                yield self.env.timeout(self.POLL_INTERVAL)

    def _deliver(self, channel: DmaRingChannel, force: bool) -> Generator:
        buffer = self._response_buffers[id(channel)]
        buffer.harvest()
        batch = buffer.take_delivery(force=force)
        if not batch:
            return False
        encoded = [self._encode_response(r) for r in batch]
        yield from channel.deliver_responses(encoded)
        buffer.mark_delivered(batch)
        return True

    @staticmethod
    def _encode_response(response: PreallocatedResponse) -> bytes:
        ok = response.status is ResponseStatus.SUCCESS
        return IoResponse(
            response.request_id, ok, response.payload if ok else None
        ).encode()

    # ------------------------------------------------------------------
    # SPDK worker: submit I/O, complete pre-allocated responses
    # ------------------------------------------------------------------
    def _spdk_worker(self) -> Generator:
        while True:
            channel, request = yield self._io_queue.get()
            yield from self.spdk_core.execute(self.SUBMIT_COST)
            if self.copy_mode:
                yield from self.spdk_core.execute(
                    self.COPY_ALLOC_COST
                    + self.COPY_COST_PER_BYTE * request.size
                )
            buffer = self._response_buffers[id(channel)]
            data_bytes = request.size if request.op is OpCode.READ else 0
            response = buffer.allocate(request.request_id, data_bytes)
            while response is None:
                yield self.env.timeout(self.POLL_INTERVAL)
                buffer.harvest()
                response = buffer.allocate(request.request_id, data_bytes)
            self.env.process(self._execute(request, response))

    def _execute(
        self, request: IoRequest, response: PreallocatedResponse
    ) -> Generator:
        """Asynchronous I/O execution filling the pre-allocated response."""
        self._apply_cache_hooks(request)
        try:
            if request.op is OpCode.READ:
                data = yield self.env.process(
                    self.filesystem.read(
                        request.file_id, request.offset, request.size
                    )
                )
                response.complete(ResponseStatus.SUCCESS, data)
            else:
                yield self.env.process(
                    self.filesystem.write(
                        request.file_id, request.offset, request.payload
                    )
                )
                response.complete(ResponseStatus.SUCCESS)
            self.requests_executed += 1
        except FileSystemError:
            response.complete(ResponseStatus.IO_ERROR)
            self.request_errors += 1

    # ------------------------------------------------------------------
    # direct path for the offload engine (§6.2)
    # ------------------------------------------------------------------
    def execute_offloaded(
        self, read_op: ReadOp, on_complete
    ) -> Generator:
        """Execute an offload-engine read, bypassing the host rings.

        The engine pre-allocated the destination buffer from its DMA pool;
        ``on_complete(status, data)`` fires when the device finishes.
        """
        yield from self.spdk_core.execute(self.SUBMIT_COST)
        if self.copy_mode:
            yield from self.spdk_core.execute(
                self.COPY_ALLOC_COST + self.COPY_COST_PER_BYTE * read_op.size
            )
        try:
            data = yield self.env.process(
                self.filesystem.read(
                    read_op.file_id, read_op.offset, read_op.size
                )
            )
        except FileSystemError:
            self.request_errors += 1
            on_complete(ResponseStatus.IO_ERROR, None)
            return
        self.requests_executed += 1
        on_complete(ResponseStatus.SUCCESS, data)
