"""The disaggregated-storage workload client (§8.1).

A semi-open client: messages arrive at an offered rate (Poisson), each
batching a configurable number of random file I/O requests, with a cap
on outstanding messages (the paper's three load knobs: batch size,
outstanding messages, concurrent connections).  Per-request latency is
measured from message departure to that request's response arrival at
the client, and the client's own transport CPU (which Figure 16 counts)
is accounted against a client-side pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Set

from ..hardware.cpu import CpuPool
from ..hardware.specs import HOST_CPU
from ..net.packet import FiveTuple
from ..sim import Environment, SeededRng
from .messages import IoRequest, IoResponse, OpCode
from .retry import RetryBudget, RetryPolicy
from .server import StorageServerBase

__all__ = ["ClientConfig", "ClientResult", "WorkloadClient", "DdsClient"]


@dataclass
class ClientConfig:
    """Workload knobs for one run."""

    offered_iops: float = 100_000.0
    total_requests: int = 20_000
    io_size: int = 1024
    read_fraction: float = 1.0
    batch: int = 4
    connections: int = 4
    max_outstanding: int = 64  # outstanding messages across connections
    file_size: int = 256 << 20
    seed: int = 42


@dataclass
class ClientResult:
    """Measured outcome of one client run."""

    achieved_iops: float
    elapsed: float
    latencies: List[float] = field(repr=False, default_factory=list)
    client_cores: float = 0.0
    #: Retry-path accounting (all zero for clients without a policy).
    retries: int = 0
    failed_requests: int = 0
    duplicate_responses: int = 0
    error_responses: int = 0
    #: Explicit server sheds seen (overload backpressure), and retries
    #: the client's :class:`~repro.core.retry.RetryBudget` refused.
    throttled_responses: int = 0
    budget_denied: int = 0

    def percentile(self, p: float) -> float:
        """Latency percentile, p in [0, 100]."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(
            len(ordered) - 1, max(0, int(round(p / 100 * len(ordered))) - 1)
        )
        return ordered[index]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


class WorkloadClient:
    """Issues random file I/O against one file on a storage server."""

    def __init__(
        self,
        env: Environment,
        server: StorageServerBase,
        file_id: int,
        config: Optional[ClientConfig] = None,
        request_factory=None,
        retry_policy: Optional[RetryPolicy] = None,
        observer=None,
        retry_budget: Optional[RetryBudget] = None,
    ) -> None:
        self.env = env
        self.server = server
        self.file_id = file_id
        self.config = config or ClientConfig()
        # Optional override: (request_id, rng) -> IoRequest.  The KV and
        # page-server clients generate application requests this way.
        self.request_factory = request_factory
        #: With a policy, unanswered requests are re-sent with the same
        #: request id after per-attempt timeouts (exponential backoff +
        #: seeded jitter); without one the client trusts every message
        #: to be answered — the loss-free fast path every benchmark uses.
        self.retry_policy = retry_policy
        #: Optional (shareable) retry budget: each re-send must win a
        #: token, each success refills a fraction of one — the client
        #: half of the metastability defense.  None keeps the unbounded
        #: max_attempts behaviour.
        self.retry_budget = retry_budget
        #: Optional chaos observer: ``on_issue(request)``,
        #: ``on_ack(request, response)``, ``on_give_up(request)``.
        self.observer = observer
        self.rng = SeededRng(self.config.seed)
        self.client_pool = CpuPool(env, HOST_CPU, name="client")
        self._flows = [
            FiveTuple("10.0.0.2", 40_000 + i, "10.0.0.1", 5000)
            for i in range(self.config.connections)
        ]
        self._next_request_id = 1
        self._issue_times: dict = {}
        self._latencies: List[float] = []
        self._completed = 0
        # Retry-path state: which request ids have been answered or
        # given up on (duplicate responses are detected against these).
        self._answered: Set[int] = set()
        self._failed: Set[int] = set()
        self._requests_by_id: Dict[int, IoRequest] = {}
        self._finished = None
        self.retries = 0
        self.failed_requests = 0
        self.duplicate_responses = 0
        self.error_responses = 0
        self.throttled_responses = 0
        self.budget_denied = 0
        # Request ids throttled during the current attempt window; the
        # retry loop backs off harder when the server said "stop".
        self._throttled_ids: Set[int] = set()

    # ------------------------------------------------------------------
    # request generation
    # ------------------------------------------------------------------
    def _make_request(self) -> IoRequest:
        config = self.config
        request_id = self._next_request_id
        self._next_request_id += 1
        if self.request_factory is not None:
            return self.request_factory(request_id, self.rng)
        max_offset = max(1, config.file_size - config.io_size)
        # Align offsets to the I/O size, as a page-oriented client would.
        slots = max(1, max_offset // config.io_size)
        offset = self.rng.randrange(slots) * config.io_size
        if self.rng.random() < config.read_fraction:
            return IoRequest(
                OpCode.READ, request_id, self.file_id, offset, config.io_size
            )
        return IoRequest(
            OpCode.WRITE,
            request_id,
            self.file_id,
            offset,
            config.io_size,
            bytes(config.io_size),
        )

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self) -> ClientResult:
        """Drive the workload to completion and return measurements."""
        if self.retry_policy is not None:
            return self._run_with_retries()
        config = self.config
        finished = self.env.event()
        outstanding = [0]
        waiters: List = []

        def on_response(response: IoResponse) -> None:
            issued = self._issue_times.pop(response.request_id, None)
            if issued is not None:
                self._latencies.append(self.env.now - issued)
            self._completed += 1
            if self._completed >= config.total_requests:
                if not finished.triggered:
                    finished.succeed()

        def on_message_done(_event) -> None:
            outstanding[0] -= 1
            if waiters:
                waiters.pop(0).succeed()

        def generator() -> object:
            spec = self.server.client_spec
            issued = 0
            message_index = 0
            mean_gap = config.batch / config.offered_iops
            while issued < config.total_requests:
                yield self.env.timeout(self.rng.exponential(mean_gap))
                if outstanding[0] >= config.max_outstanding:
                    gate = self.env.event()
                    waiters.append(gate)
                    yield gate
                count = min(config.batch, config.total_requests - issued)
                requests = [self._make_request() for _ in range(count)]
                issued += count
                now = self.env.now
                for request in requests:
                    self._issue_times[request.request_id] = now
                message_bytes = sum(r.wire_size for r in requests)
                # Client-side transport CPU (counted in Figure 16).
                self.client_pool.charge(
                    spec.per_message_core_time
                    + message_bytes * spec.per_byte_core_time
                )
                flow = self._flows[message_index % len(self._flows)]
                message_index += 1
                outstanding[0] += 1
                done = self.server.submit(flow, requests, on_response)
                done.add_callback(on_message_done)

        start = self.env.now
        self.env.process(generator())
        self.env.run(until=finished)
        elapsed = self.env.now - start
        achieved = self._completed / elapsed if elapsed > 0 else 0.0
        return ClientResult(
            achieved_iops=achieved,
            elapsed=elapsed,
            latencies=self._latencies,
            client_cores=self.client_pool.cores_consumed(elapsed),
        )

    # ------------------------------------------------------------------
    # retry path (chaos deployments; the default path above stays
    # byte-identical for the pinned benchmark figures)
    # ------------------------------------------------------------------
    def _run_with_retries(self) -> ClientResult:
        config = self.config
        self._finished = self.env.event()
        outstanding = [0]
        waiters: List = []

        def release() -> None:
            outstanding[0] -= 1
            if waiters:
                waiters.pop(0).succeed()

        def generator() -> Generator:
            spec = self.server.client_spec
            issued = 0
            message_index = 0
            mean_gap = config.batch / config.offered_iops
            while issued < config.total_requests:
                yield self.env.timeout(self.rng.exponential(mean_gap))
                if outstanding[0] >= config.max_outstanding:
                    gate = self.env.event()
                    waiters.append(gate)
                    yield gate
                count = min(config.batch, config.total_requests - issued)
                requests = [self._make_request() for _ in range(count)]
                issued += count
                for request in requests:
                    self._requests_by_id[request.request_id] = request
                    if self.observer is not None:
                        self.observer.on_issue(request)
                flow = self._flows[message_index % len(self._flows)]
                message_index += 1
                outstanding[0] += 1
                self.env.process(
                    self._send_with_retries(spec, flow, requests, release)
                )

        start = self.env.now
        self.env.process(generator())
        self.env.run(until=self._finished)
        elapsed = self.env.now - start
        achieved = self._completed / elapsed if elapsed > 0 else 0.0
        return ClientResult(
            achieved_iops=achieved,
            elapsed=elapsed,
            latencies=self._latencies,
            client_cores=self.client_pool.cores_consumed(elapsed),
            retries=self.retries,
            failed_requests=self.failed_requests,
            duplicate_responses=self.duplicate_responses,
            error_responses=self.error_responses,
            throttled_responses=self.throttled_responses,
            budget_denied=self.budget_denied,
        )

    def _on_retry_response(self, response: IoResponse) -> None:
        rid = response.request_id
        if rid in self._answered or rid in self._failed:
            # A chaos-duplicated delivery, or a dedup replay racing the
            # original: client-side dedup drops it.
            self.duplicate_responses += 1
            return
        if not response.ok:
            if response.throttled:
                # Explicit overload shed: remember it so the retry loop
                # applies the throttle backoff factor before re-sending.
                self.throttled_responses += 1
                self._throttled_ids.add(rid)
            else:
                # Transient failure (device error): leave the request
                # unanswered so the retry loop re-sends it.
                self.error_responses += 1
            return
        self._answered.add(rid)
        if self.retry_budget is not None:
            self.retry_budget.on_success()
        issued = self._issue_times.pop(rid, None)
        if issued is not None:
            # Issue times are per-attempt: this measures the attempt
            # that actually got answered, not the first try.
            self._latencies.append(self.env.now - issued)
        if self.observer is not None:
            request = self._requests_by_id.get(rid)
            if request is not None:
                self.observer.on_ack(request, response)
        self._requests_by_id.pop(rid, None)
        self._completed += 1
        self._check_finished()

    def _check_finished(self) -> None:
        settled = self._completed + len(self._failed)
        if settled >= self.config.total_requests:
            if not self._finished.triggered:
                self._finished.succeed()

    def _send_with_retries(
        self,
        spec,
        flow: FiveTuple,
        requests: List[IoRequest],
        release: Callable[[], None],
    ) -> Generator:
        """Send one message; re-send unanswered requests with backoff."""
        policy = self.retry_policy
        budget = self.retry_budget
        pending = list(requests)
        for attempt in range(policy.max_attempts):
            pending = [
                r for r in pending if r.request_id not in self._answered
            ]
            if not pending:
                release()
                return
            if attempt and budget is not None:
                # Every re-send must win a budget token; refused
                # requests fail fast instead of joining a retry storm.
                granted = []
                for request in pending:
                    if budget.try_spend():
                        granted.append(request)
                    else:
                        self.budget_denied += 1
                        self._give_up(request)
                pending = granted
                if not pending:
                    self._check_finished()
                    release()
                    return
            now = self.env.now
            for request in pending:
                self._issue_times[request.request_id] = now
            if attempt:
                self.retries += len(pending)
            message_bytes = sum(r.wire_size for r in pending)
            self.client_pool.charge(
                spec.per_message_core_time
                + message_bytes * spec.per_byte_core_time
            )
            done = self.server.submit(flow, pending, self._on_retry_response)
            timeout = self.env.timeout(policy.timeout)
            yield self.env.any_of([done, timeout])
            pending = [
                r for r in pending if r.request_id not in self._answered
            ]
            if not pending:
                release()
                return
            if attempt + 1 < policy.max_attempts:
                delay = policy.backoff(attempt, self.rng)
                if any(
                    r.request_id in self._throttled_ids for r in pending
                ):
                    # The server shed at least one of these: cooperate
                    # by backing off harder than for a silent loss.
                    delay *= policy.throttle_backoff_factor
                    for request in pending:
                        self._throttled_ids.discard(request.request_id)
                yield self.env.timeout(delay)
        for request in pending:
            self._give_up(request)
        self._check_finished()
        release()

    def _give_up(self, request: IoRequest) -> None:
        """Settle one request as failed (budget denial or attempts out)."""
        self._failed.add(request.request_id)
        self._issue_times.pop(request.request_id, None)
        self._requests_by_id.pop(request.request_id, None)
        self._throttled_ids.discard(request.request_id)
        if self.observer is not None:
            self.observer.on_give_up(request)
        self.failed_requests += 1


class DdsClient(WorkloadClient):
    """A :class:`WorkloadClient` with retries on by default.

    The paper's benchmark client assumes a loss-free fabric; this is the
    client a chaos scenario uses — per-message attempt timeouts,
    exponential backoff with seeded jitter, and client-side response
    dedup, so requests issued into a fault window eventually succeed
    (or fail loudly after ``max_attempts``).
    """

    def __init__(
        self,
        env: Environment,
        server: StorageServerBase,
        file_id: int,
        config: Optional[ClientConfig] = None,
        request_factory=None,
        retry_policy: Optional[RetryPolicy] = None,
        observer=None,
        retry_budget: Optional[RetryBudget] = None,
    ) -> None:
        super().__init__(
            env,
            server,
            file_id,
            config,
            request_factory,
            retry_policy=retry_policy or RetryPolicy(),
            observer=observer,
            retry_budget=retry_budget,
        )
