"""DMA-backed ring channels between host and DPU (§4.1).

Two things live here:

* :class:`DmaRingChannel` — the storage-path transport used by the DDS
  file library / file service pair.  The host side inserts encoded
  requests into a *real* :class:`~repro.structures.rings.ProgressRing`;
  the DPU's DMA thread fetches batches with simulated DMA operations
  (pointer read, data read, head write-back) and delivers responses with
  batched DMA writes.  Data and timing flow through the same objects.

* :class:`RingTransferModel` — the Figure 17 microbenchmark apparatus:
  the three ring designs (progress-based lock-free, FaRM-style flags,
  lock-based) with their DMA-operation and host-contention cost models,
  used to regenerate the message-rate and latency comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..hardware.cpu import CpuCore
from ..hardware.pcie import DmaEngine
from ..hardware.specs import MICROSECOND
from ..sim import Environment, SeededRng, Store
from ..structures.rings import FarmRing, LockRing, ProgressRing

__all__ = ["DmaRingChannel", "RingTransferModel", "RingTransferResult"]

#: Size of the pointer area fetched in a single DMA read.  Figure 7's
#: physical layout places progress immediately before tail precisely so
#: the consumer's equality check needs one read, not two.
POINTER_AREA_BYTES = 64


class DmaRingChannel:
    """One notification group's request/response transport.

    The request ring is host memory: producers (host threads) insert with
    purely local operations; the DPU reads it via DMA.  Responses travel
    the other way as DMA writes into the host's response ring, modelled
    as a :class:`~repro.sim.resources.Store` the host library polls.
    """

    #: Pointer-area layouts (Figure 7): ``progress-first`` packs the
    #: progress and tail pointers so one DMA read serves the consumer's
    #: equality check; ``tail-first`` (the rejected layout) forces two
    #: dependent reads — first the progress pointer, then the tail.
    LAYOUTS = ("progress-first", "tail-first")

    def __init__(
        self,
        env: Environment,
        dma: DmaEngine,
        ring_capacity: int = 1 << 20,
        max_progress: Optional[int] = None,
        pointer_layout: str = "progress-first",
    ) -> None:
        if pointer_layout not in self.LAYOUTS:
            raise ValueError(f"unknown pointer layout: {pointer_layout!r}")
        self.env = env
        self.dma = dma
        self.pointer_layout = pointer_layout
        self.request_ring = ProgressRing(ring_capacity, max_progress)
        self.responses: Store = Store(env)
        self.fetched_batches = 0
        self.fetched_requests = 0
        self.delivered_responses = 0

    # ------------------------------------------------------------------
    # host side
    # ------------------------------------------------------------------
    def try_insert(self, encoded_request: bytes) -> bool:
        """Host-thread insert: purely local memory (Figure 7 right)."""
        return self.request_ring.try_enqueue(encoded_request)

    def poll_response(self):
        """Event yielding the next delivered response."""
        return self.responses.get()

    def try_poll_response(self):
        """Non-blocking poll (the library's non-blocking PollWait mode)."""
        return self.responses.try_get()

    # ------------------------------------------------------------------
    # DPU side (called from the file service's DMA thread)
    # ------------------------------------------------------------------
    def fetch_batch(self) -> Generator:
        """One fetch cycle: pointer DMA read, then batch DMA read.

        Returns the list of encoded requests (possibly empty).  Charges
        one pointer-area DMA read always (two dependent reads under the
        rejected tail-first layout), plus one data read and one head
        write-back when a batch was available — the operation count the
        progress-pointer layout is designed to minimize.
        """
        if self.pointer_layout == "progress-first":
            yield from self.dma.dma_read(POINTER_AREA_BYTES)
        else:
            # Tail-first: the progress check needs P, whose position is
            # only safe to interpret after T is known — two round trips.
            yield from self.dma.dma_read(POINTER_AREA_BYTES // 2)
            yield from self.dma.dma_read(POINTER_AREA_BYTES // 2)
        batch = self.request_ring.try_consume()
        if not batch:
            return []
        batch_bytes = sum(len(r) for r in batch)
        yield from self.dma.dma_read(batch_bytes)
        yield from self.dma.dma_write(POINTER_AREA_BYTES)  # head update
        self.fetched_batches += 1
        self.fetched_requests += len(batch)
        return batch

    def deliver_responses(self, encoded_responses: List[bytes]) -> Generator:
        """One DMA write delivers a batch of responses to the host ring."""
        if not encoded_responses:
            return
        total = sum(len(r) for r in encoded_responses) + POINTER_AREA_BYTES
        yield from self.dma.dma_write(total)
        for response in encoded_responses:
            self.responses.try_put(response)
        self.delivered_responses += len(encoded_responses)


# ----------------------------------------------------------------------
# Figure 17: ring design comparison
# ----------------------------------------------------------------------

@dataclass
class RingTransferResult:
    """Outcome of one ring microbenchmark run."""

    design: str
    producers: int
    messages: int
    elapsed: float
    median_latency: float

    @property
    def rate(self) -> float:
        """Messages per second."""
        return self.messages / self.elapsed if self.elapsed > 0 else 0.0


class RingTransferModel:
    """Host-threads-to-DPU message transfer with three ring designs.

    Host producers insert 8-byte messages (as in §8.5); the DPU consumer
    retrieves them via DMA.  The decisive difference between the designs
    is *what serializes on the host*:

    * ``lock`` — every insert holds one spinlock for the whole reserve +
      copy, and the effective critical section inflates with contending
      producers (cache-line bouncing), so the aggregate insert rate
      collapses from ~22 M/s at one producer to ~1.4 M/s at 64.
    * ``progress`` — only the CAS on the tail pointer serializes; its
      effective cost inflates far more gently under contention, holding
      ~6.5 M/s at 64 producers.  The consumer fetches whole batches with
      two DMA reads plus one DMA write.
    * ``farm`` — inserts are cheap, but the consumer pays a PCIe DMA
      poll + Arm handling + a release DMA write *per message*, flooring
      throughput at ~64 K msg/s with no batching at all.
    """

    MESSAGE_BYTES = 8
    #: Serialized host work per insert (reserve + copy + pointer update).
    INSERT_SERIAL = 45e-9
    #: Critical-section inflation per extra contending producer.
    CAS_CONTENTION = 0.035   # progress: only the CAS cacheline bounces
    LOCK_CONTENTION = 0.23   # lock: the whole section bounces
    #: Consumer-side per-message handling (host-equivalent core time).
    CONSUME_COST = 0.01 * MICROSECOND
    FARM_ARM_HANDLING = 2.0 * MICROSECOND  # host-equivalent per DMA op

    def __init__(
        self,
        env: Environment,
        design: str,
        producers: int,
        dma: Optional[DmaEngine] = None,
        dpu_core: Optional[CpuCore] = None,
        ring_capacity: int = 1 << 12,
        rng: Optional[SeededRng] = None,
    ) -> None:
        if design not in ("progress", "lock", "farm"):
            raise ValueError(f"unknown ring design: {design!r}")
        if producers < 1:
            raise ValueError("need at least one producer")
        self.env = env
        self.design = design
        self.producers = producers
        self.dma = dma if dma is not None else DmaEngine(env)
        self.dpu_core = (
            dpu_core if dpu_core is not None else CpuCore(env, speed=0.35)
        )
        self.rng = rng if rng is not None else SeededRng(17)
        if design == "progress":
            self.ring = ProgressRing(ring_capacity)
        elif design == "lock":
            self.ring = LockRing(ring_capacity)
        else:
            self.ring = FarmRing(slots=64, slot_size=64)
        from ..sim import Resource

        self._insert_path = Resource(env, capacity=1)
        self._consume_times: dict = {}

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def serialized_insert_time(self) -> float:
        """Host time the serialized part of one insert occupies."""
        extra = self.producers - 1
        if self.design == "progress":
            return self.INSERT_SERIAL * (1.0 + self.CAS_CONTENTION * extra)
        if self.design == "lock":
            return self.INSERT_SERIAL * (1.0 + self.LOCK_CONTENTION * extra)
        return self.INSERT_SERIAL  # farm: slot flag writes do not contend

    # ------------------------------------------------------------------
    # benchmark run
    # ------------------------------------------------------------------
    def run(self, messages_per_producer: int) -> RingTransferResult:
        """Drive producers and the DPU consumer; returns rate and latency."""
        total = messages_per_producer * self.producers
        done = self.env.event()
        consumed = [0]
        latencies: List[float] = []
        hold = self.serialized_insert_time()

        def producer(worker: int) -> Generator:
            for index in range(messages_per_producer):
                message = (worker * messages_per_producer + index).to_bytes(
                    self.MESSAGE_BYTES, "little"
                )
                # Transfer latency runs from the moment the thread starts
                # the insert (so waiting on the lock / CAS retries count).
                start = self.env.now
                while True:
                    grant = self._insert_path.request()
                    yield grant
                    yield self.env.timeout(hold)
                    inserted = self.ring.try_enqueue(message)
                    self._insert_path.release()
                    if inserted:
                        self._consume_times[message] = start
                        break
                    # Ring full: back off roughly one consumer cycle.
                    yield self.env.timeout(
                        self.rng.bounded_exponential(2 * MICROSECOND)
                    )

        def record(batch: List[bytes]) -> None:
            now = self.env.now
            for message in batch:
                latencies.append(now - self._consume_times.pop(message))
            consumed[0] += len(batch)
            if consumed[0] >= total and not done.triggered:
                done.succeed()

        def consumer_batched() -> Generator:
            while consumed[0] < total:
                yield from self.dma.dma_read(POINTER_AREA_BYTES)
                batch = self.ring.try_consume()
                if batch:
                    yield from self.dma.dma_read(
                        sum(len(m) for m in batch)
                    )
                    yield from self.dma.dma_write(POINTER_AREA_BYTES)
                    yield from self.dpu_core.execute(
                        self.CONSUME_COST * len(batch)
                    )
                    record(batch)
                else:
                    yield self.env.timeout(0.5 * MICROSECOND)

        def consumer_farm() -> Generator:
            while consumed[0] < total:
                # Poll the head slot: one DMA read + Arm handling.
                yield from self.dma.dma_read(64)
                yield from self.dpu_core.execute(self.FARM_ARM_HANDLING)
                message = self.ring.try_consume()
                if message is not None:
                    # Release the slot: the extra per-message DMA write.
                    yield from self.dma.dma_write(8)
                    yield from self.dpu_core.execute(self.FARM_ARM_HANDLING)
                    record([message])

        for worker in range(self.producers):
            self.env.process(producer(worker))
        if self.design == "farm":
            self.env.process(consumer_farm())
        else:
            self.env.process(consumer_batched())
        self.env.run(until=done)

        latencies.sort()
        median = latencies[len(latencies) // 2] if latencies else 0.0
        return RingTransferResult(
            design=self.design,
            producers=self.producers,
            messages=total,
            elapsed=self.env.now,
            median_latency=median,
        )
