"""Wire and ring encodings for storage requests and responses (Figure 9).

One codec is shared by every path a request can take — client to host
over TCP, host application to DPU over the request ring, traffic director
to offload engine — so the traffic director can parse exactly the bytes
the client sent.

Encoding (little-endian), mirroring Figure 9:

* request:  ``op(1) | request_id(8) | file_id(4) | offset(8) | size(4) |
  tag(8)`` followed by ``size`` inlined data bytes for writes (so one
  DMA-read moves the whole request); ``tag`` carries application-defined
  context — the LSN of a GetPage@LSN request (§9.1), or a KV key (§9.2);
* response: ``request_id(8) | status(1) | size(4)`` followed by the read
  data for successful reads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional

__all__ = [
    "OpCode",
    "ResponseStatus",
    "IoRequest",
    "IoResponse",
    "REQUEST_HEADER",
    "RESPONSE_HEADER",
]

REQUEST_HEADER = struct.Struct("<BQIQIQ")
RESPONSE_HEADER = struct.Struct("<QBI")


class OpCode(IntEnum):
    """Request operation."""

    READ = 1
    WRITE = 2


class ResponseStatus(IntEnum):
    """Response outcome carried on the wire."""

    OK = 0
    ERROR = 1
    #: Backpressure: the server shed this request before executing it
    #: (admission control or queue overflow).  Distinct from ``ERROR``
    #: so clients can cooperate — back off harder instead of retrying
    #: into a saturated server.
    THROTTLED = 2


@dataclass
class IoRequest:
    """One file I/O request as issued by a client or host thread."""

    op: OpCode
    request_id: int
    file_id: int
    offset: int
    size: int
    payload: Optional[bytes] = field(default=None, repr=False)
    tag: int = 0  # application context: LSN, KV key hash, ...

    def __post_init__(self) -> None:
        if self.op is OpCode.WRITE:
            if self.payload is None or len(self.payload) != self.size:
                raise ValueError("write payload must match the size field")
        elif self.payload is not None:
            raise ValueError("read requests carry no payload")

    @property
    def wire_size(self) -> int:
        """Encoded size in bytes."""
        inline = self.size if self.op is OpCode.WRITE else 0
        return REQUEST_HEADER.size + inline

    def encode(self) -> bytes:
        """Serialize per Figure 9 (write data inlined after the header)."""
        header = REQUEST_HEADER.pack(
            int(self.op),
            self.request_id,
            self.file_id,
            self.offset,
            self.size,
            self.tag,
        )
        if self.op is OpCode.WRITE:
            return header + self.payload
        return header

    @classmethod
    def decode(cls, data: bytes) -> "IoRequest":
        if len(data) < REQUEST_HEADER.size:
            raise ValueError("truncated request header")
        op, request_id, file_id, offset, size, tag = (
            REQUEST_HEADER.unpack_from(data)
        )
        opcode = OpCode(op)
        payload = None
        if opcode is OpCode.WRITE:
            payload = data[REQUEST_HEADER.size : REQUEST_HEADER.size + size]
            if len(payload) != size:
                raise ValueError("truncated write payload")
        return cls(opcode, request_id, file_id, offset, size, payload, tag)


@dataclass
class IoResponse:
    """One I/O completion flowing back to the issuer."""

    request_id: int
    ok: bool
    data: Optional[bytes] = field(default=None, repr=False)
    #: True when the server refused the request under overload (shed at
    #: admission or dropped from a bounded queue) — always ``ok=False``.
    throttled: bool = False

    @property
    def wire_size(self) -> int:
        return RESPONSE_HEADER.size + (len(self.data) if self.data else 0)

    def encode(self) -> bytes:
        """Serialize: response header, then read data when present."""
        size = len(self.data) if self.data else 0
        if self.ok:
            status = ResponseStatus.OK
        elif self.throttled:
            status = ResponseStatus.THROTTLED
        else:
            status = ResponseStatus.ERROR
        header = RESPONSE_HEADER.pack(self.request_id, int(status), size)
        return header + (self.data or b"")

    @classmethod
    def decode(cls, data: bytes) -> "IoResponse":
        if len(data) < RESPONSE_HEADER.size:
            raise ValueError("truncated response header")
        request_id, status, size = RESPONSE_HEADER.unpack_from(data)
        payload = data[RESPONSE_HEADER.size : RESPONSE_HEADER.size + size]
        if len(payload) != size:
            raise ValueError("truncated response payload")
        parsed = ResponseStatus(status)
        return cls(
            request_id,
            parsed is ResponseStatus.OK,
            payload if size else None,
            throttled=parsed is ResponseStatus.THROTTLED,
        )
