"""The DDS host file library (§4.2): a familiar file API, DPU execution.

The library is intentionally thin — everything CPU-heavy moved to the
DPU.  It offers the paper's API surface: ``CreateDirectory``,
``CreateFile``, ``CreatePoll`` / ``PollAdd`` notification groups,
non-blocking ``ReadFile`` / ``WriteFile`` (plus gathered writes and
scattered reads), and ``PollWait`` in *non-blocking* and *sleeping*
modes.

Issuing a request costs ~1 us of host core time (bookkeeping + a local
ring insert); the request then travels to the DPU by DPU-issued DMA with
zero host involvement.  Completions are polled from the response ring,
which the DPU fills by DMA write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Union

from ..hardware.cpu import CpuCore, CpuPool
from ..hardware.pcie import DmaEngine
from ..hardware.specs import DDS_FILE_LIBRARY, StackSpec
from ..sim import Environment
from .dma_ring import DmaRingChannel
from .file_service import DpuFileService
from .messages import IoRequest, IoResponse, OpCode

__all__ = ["NotificationGroup", "DdsFileLibrary", "PollMode"]


class PollMode:
    """PollWait behaviours (§4.2)."""

    NON_BLOCKING = "non-blocking"
    SLEEPING = "sleeping"


@dataclass
class _PendingOp:
    """Book-kept state of one issued operation."""

    request_id: int
    op: OpCode
    file_id: int
    scatter_sizes: Optional[List[int]] = None


@dataclass
class NotificationGroup:
    """An epoll-like completion group owning one ring channel."""

    group_id: int
    channel: DmaRingChannel
    files: set = field(default_factory=set)
    pending: Dict[int, _PendingOp] = field(default_factory=dict)


class DdsFileLibrary:
    """Userspace front end issuing file operations to the DPU service."""

    def __init__(
        self,
        env: Environment,
        host_cpu: Union[CpuCore, CpuPool],
        file_service: DpuFileService,
        dma: DmaEngine,
        spec: StackSpec = DDS_FILE_LIBRARY,
        ring_capacity: int = 1 << 20,
    ) -> None:
        self.env = env
        self.host_cpu = host_cpu
        self.file_service = file_service
        self.dma = dma
        self.spec = spec
        self.ring_capacity = ring_capacity
        self._groups: Dict[int, NotificationGroup] = {}
        self._file_group: Dict[int, int] = {}
        self._next_group_id = 1
        self._next_request_id = 1
        self.operations_issued = 0
        self.completions_polled = 0

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------
    def _charge(self, size: int) -> Generator:
        yield from self.host_cpu.execute(
            self.spec.per_message_core_time
            + size * self.spec.per_byte_core_time
        )

    # ------------------------------------------------------------------
    # namespace (control path, executed via the file service's metadata)
    # ------------------------------------------------------------------
    def create_directory(self, name: str) -> Generator:
        """CreateDirectory: make a flat directory."""
        yield from self._charge(0)
        self.file_service.filesystem.create_directory(name)

    def create_file(self, directory: str, name: str) -> Generator:
        """CreateFile: returns the new file's handle (file id)."""
        yield from self._charge(0)
        return self.file_service.filesystem.create_file(directory, name)

    # ------------------------------------------------------------------
    # notification groups
    # ------------------------------------------------------------------
    def create_poll(self) -> NotificationGroup:
        """CreatePoll: allocate a group with DMA-registered rings."""
        channel = DmaRingChannel(self.env, self.dma, self.ring_capacity)
        self.file_service.register_channel(channel)
        group = NotificationGroup(self._next_group_id, channel)
        self._groups[group.group_id] = group
        self._next_group_id += 1
        return group

    def poll_add(self, group: NotificationGroup, file_id: int) -> None:
        """PollAdd: route a file's completions to this group."""
        if file_id in self._file_group:
            raise ValueError(f"file {file_id} already belongs to a group")
        group.files.add(file_id)
        self._file_group[file_id] = group.group_id

    def _group_for(self, file_id: int) -> NotificationGroup:
        group_id = self._file_group.get(file_id)
        if group_id is None:
            raise ValueError(
                f"file {file_id} is not in any notification group; "
                "call poll_add first"
            )
        return self._groups[group_id]

    # ------------------------------------------------------------------
    # data path: non-blocking issue
    # ------------------------------------------------------------------
    def read_file(
        self, file_id: int, offset: int, size: int
    ) -> Generator:
        """ReadFile: non-blocking issue; returns the request id."""
        return (
            yield from self._issue(
                IoRequest(
                    OpCode.READ,
                    self._take_request_id(),
                    file_id,
                    offset,
                    size,
                )
            )
        )

    def write_file(
        self, file_id: int, offset: int, data: bytes
    ) -> Generator:
        """WriteFile: non-blocking issue; data is inlined in the request."""
        return (
            yield from self._issue(
                IoRequest(
                    OpCode.WRITE,
                    self._take_request_id(),
                    file_id,
                    offset,
                    len(data),
                    data,
                )
            )
        )

    def write_gather(
        self, file_id: int, offset: int, buffers: Sequence[bytes]
    ) -> Generator:
        """Gathered write: one file I/O from an array of source buffers."""
        return (yield from self.write_file(file_id, offset, b"".join(buffers)))

    def read_scatter(
        self, file_id: int, offset: int, sizes: Sequence[int]
    ) -> Generator:
        """Scattered read: one file I/O split into destination buffers.

        The response of the single I/O is split back into ``sizes``
        chunks when polled.
        """
        request_id = yield from self.read_file(file_id, offset, sum(sizes))
        group = self._group_for(file_id)
        group.pending[request_id].scatter_sizes = list(sizes)
        return request_id

    def _take_request_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    def _issue(self, request: IoRequest) -> Generator:
        group = self._group_for(request.file_id)
        yield from self._charge(request.wire_size)
        encoded = request.encode()
        while not group.channel.try_insert(encoded):
            # RETRY from the ring: producers are outpacing the DPU.
            yield self.env.timeout(self.spec.per_message_latency)
        group.pending[request.request_id] = _PendingOp(
            request.request_id, request.op, request.file_id
        )
        self.operations_issued += 1
        return request.request_id

    # ------------------------------------------------------------------
    # data path: completion polling
    # ------------------------------------------------------------------
    def poll_wait(
        self,
        group: NotificationGroup,
        mode: str = PollMode.SLEEPING,
    ) -> Generator:
        """PollWait: next completion in the group.

        Sleeping mode parks until the DPU delivers (zero CPU burn,
        modelled on DPU driver interrupts); non-blocking mode returns
        None immediately when no completion is ready.
        """
        if mode == PollMode.NON_BLOCKING:
            encoded = group.channel.try_poll_response()
            if encoded is None:
                return None
        elif mode == PollMode.SLEEPING:
            encoded = yield group.channel.poll_response()
        else:
            raise ValueError(f"unknown poll mode: {mode!r}")
        yield from self._charge(0)
        response = IoResponse.decode(encoded)
        pending = group.pending.pop(response.request_id, None)
        if pending is None:
            raise RuntimeError(
                f"completion for unknown request {response.request_id}"
            )
        self.completions_polled += 1
        if pending.scatter_sizes and response.data is not None:
            chunks: List[bytes] = []
            cursor = 0
            for size in pending.scatter_sizes:
                chunks.append(response.data[cursor : cursor + size])
                cursor += size
            return response.request_id, response.ok, chunks
        return response.request_id, response.ok, response.data
