"""DDS core: storage path, network path, offload engine, servers, client."""

from .api import OffloadCallbacks, ReadOp, WriteOp, passthrough_callbacks
from .dma_ring import DmaRingChannel, RingTransferModel, RingTransferResult
from .file_library import DdsFileLibrary, NotificationGroup, PollMode
from .file_service import DpuFileService
from .messages import IoRequest, IoResponse, OpCode
from .offload_engine import Context, ContextStatus, OffloadEngine
from .traffic_director import TrafficDirector

# The server and client modules are loaded lazily (PEP 562): the servers
# are built from repro.topology stages, and those stages import this
# package's leaf modules — eager imports here would close that loop.
_LAZY = {
    "BaselineServer": "server",
    "DdsLibraryServer": "server",
    "DdsOffloadServer": "server",
    "PipelineServer": "server",
    "StorageServerBase": "server",
    "ClientConfig": "client",
    "ClientResult": "client",
    "WorkloadClient": "client",
    "DdsClient": "client",
    "RetryPolicy": "retry",
    "CircuitBreaker": "retry",
    "RequestDedup": "dedup",
}

__all__ = [
    "BaselineServer",
    "CircuitBreaker",
    "ClientConfig",
    "ClientResult",
    "Context",
    "ContextStatus",
    "DdsClient",
    "DdsFileLibrary",
    "DdsLibraryServer",
    "DdsOffloadServer",
    "DmaRingChannel",
    "DpuFileService",
    "IoRequest",
    "IoResponse",
    "NotificationGroup",
    "OffloadCallbacks",
    "OffloadEngine",
    "OpCode",
    "PipelineServer",
    "PollMode",
    "ReadOp",
    "RequestDedup",
    "RetryPolicy",
    "RingTransferModel",
    "RingTransferResult",
    "StorageServerBase",
    "TrafficDirector",
    "WorkloadClient",
    "WriteOp",
    "passthrough_callbacks",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
