"""DDS core: storage path, network path, offload engine, servers, client."""

from .api import OffloadCallbacks, ReadOp, WriteOp, passthrough_callbacks
from .client import ClientConfig, ClientResult, WorkloadClient
from .dma_ring import DmaRingChannel, RingTransferModel, RingTransferResult
from .file_library import DdsFileLibrary, NotificationGroup, PollMode
from .file_service import DpuFileService
from .messages import IoRequest, IoResponse, OpCode
from .offload_engine import Context, ContextStatus, OffloadEngine
from .server import (
    BaselineServer,
    DdsLibraryServer,
    DdsOffloadServer,
    StorageServerBase,
)
from .traffic_director import TrafficDirector

__all__ = [
    "BaselineServer",
    "ClientConfig",
    "ClientResult",
    "Context",
    "ContextStatus",
    "DdsFileLibrary",
    "DdsLibraryServer",
    "DdsOffloadServer",
    "DmaRingChannel",
    "DpuFileService",
    "IoRequest",
    "IoResponse",
    "NotificationGroup",
    "OffloadCallbacks",
    "OffloadEngine",
    "OpCode",
    "PollMode",
    "ReadOp",
    "RingTransferModel",
    "RingTransferResult",
    "StorageServerBase",
    "TrafficDirector",
    "WorkloadClient",
    "WriteOp",
    "passthrough_callbacks",
]
