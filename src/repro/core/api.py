"""The DDS offload API (Table 1, §6.1).

Data systems customize DPU offloading with four user-defined functions:

* ``off_pred(message, cache_table)`` — split a network message (which may
  batch several requests) into ``(host_requests, dpu_requests)``;
* ``off_func(request, cache_table)`` — translate an offloadable request
  into a file :class:`ReadOp`, or None to bounce it to the host;
* ``cache(write_op)`` — *cache-on-write*: items to insert into the cache
  table when the host writes a file;
* ``invalidate(read_op)`` — *invalidate-on-read*: keys to drop when the
  host reads data it may subsequently modify.

``off_func`` is declarative by design: it must not allocate or block (the
paper forbids syscalls inside it); here that contract is documented and
its outputs are plain value objects.

:func:`passthrough_callbacks` implements the simple policy the paper's
benchmark application uses (§8.2, footnote: requests encode file id,
offset and size directly, so ``cache``/``invalidate`` are unnecessary):
reads are offloaded verbatim, writes go to the host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

from ..structures.cuckoo import CuckooCacheTable
from .messages import IoRequest, OpCode

__all__ = [
    "ReadOp",
    "WriteOp",
    "OffloadCallbacks",
    "passthrough_callbacks",
]


@dataclass(frozen=True)
class ReadOp:
    """A file read operation: the output of ``off_func``."""

    file_id: int
    offset: int
    size: int


@dataclass(frozen=True)
class WriteOp:
    """A host file write, as presented to the ``cache`` callback."""

    file_id: int
    offset: int
    size: int
    context: Any = None  # application payload summary (e.g. page headers)


#: off_pred: (message requests, cache table) -> (host list, DPU list).
OffPred = Callable[
    [Sequence[IoRequest], CuckooCacheTable],
    Tuple[List[IoRequest], List[IoRequest]],
]
#: off_func: (request, cache table) -> ReadOp or None (bounce to host).
OffFunc = Callable[[IoRequest, CuckooCacheTable], Optional[ReadOp]]
#: cache-on-write: WriteOp -> [(key, item)] to insert.
CacheFn = Callable[[WriteOp], List[Tuple[Hashable, Any]]]
#: invalidate-on-read: ReadOp -> [key] to remove.
InvalidateFn = Callable[[ReadOp], List[Hashable]]


@dataclass
class OffloadCallbacks:
    """The four user-supplied functions of Table 1 (cache hooks optional)."""

    off_pred: OffPred
    off_func: OffFunc
    cache: Optional[CacheFn] = None
    invalidate: Optional[InvalidateFn] = None


def passthrough_callbacks() -> OffloadCallbacks:
    """Offload every read as-is; send every write to the host.

    This is the ~30-line OffPred / ~20-line OffFunc of §8.2: the request
    already carries file id, offset, and size, so translation is direct
    and no cache table consultation is needed.
    """

    def off_pred(
        requests: Sequence[IoRequest], _table: CuckooCacheTable
    ) -> Tuple[List[IoRequest], List[IoRequest]]:
        host: List[IoRequest] = []
        dpu: List[IoRequest] = []
        for request in requests:
            (dpu if request.op is OpCode.READ else host).append(request)
        return host, dpu

    def off_func(
        request: IoRequest, _table: CuckooCacheTable
    ) -> Optional[ReadOp]:
        if request.op is not OpCode.READ:
            return None
        return ReadOp(request.file_id, request.offset, request.size)

    return OffloadCallbacks(off_pred=off_pred, off_func=off_func)
