"""The traffic director (§5): bump-in-the-wire packet steering on the DPU.

Stage one — the *application signature* — is evaluated by the NIC's
hardware match engine at line rate, so flows of no interest forward to
the host with zero Arm-core involvement (§5.3).  Stage two — the
*offload predicate* — runs on a DPU core selected by symmetric RSS over
the flow's five-tuple, reassembles user messages from the (split) TCP
stream, and dispatches each request either to the offload engine or to
the host over the second leg of the split connection.

Costs are charged per packet on the owning core, calibrated against
Figure 21 (6.4 Gbps directed per Arm core) and the end-to-end offload
throughput of Figure 14a.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
)

from ..hardware.cpu import CpuCore
from ..hardware.nic import NetworkLink
from ..hardware.specs import MICROSECOND
from ..net.packet import AppSignature, FiveTuple
from ..sim import Environment
from ..structures.cuckoo import CuckooCacheTable
from .api import OffloadCallbacks
from .messages import IoRequest, IoResponse
from .offload_engine import OffloadEngine

if TYPE_CHECKING:
    from ..topology.sharding import ConsistentHashShardMap
    from .dedup import RequestDedup
    from .retry import CircuitBreaker

__all__ = ["TrafficDirector"]

#: Host handler signature: (requests, respond) -> process generator.
HostHandler = Callable[[Sequence[IoRequest], Callable], Generator]


class TrafficDirector:
    """TLDK-based userspace packet processing with RSS core steering."""

    #: Host-core-seconds of TLDK receive processing per packet.
    RX_COST_PER_PACKET = 0.12 * MICROSECOND
    #: Host-core-seconds to emit one (indirect, zero-copy) packet.
    TX_COST_PER_PACKET = 0.10 * MICROSECOND
    #: Host-core-seconds per OffPred invocation per request.
    OFFPRED_COST = 0.03 * MICROSECOND
    #: Host-core-seconds to relay one host-bound packet over the split
    #: connection (full bump-in-the-wire forward).  Anchor: Figure 21 --
    #: one Arm core directs ~6.4 Gbps of MTU-sized traffic.
    FORWARD_COST_PER_PACKET = 0.36 * MICROSECOND
    #: Cost scale when messages arrive over RDMA instead of split TCP
    #: (§8.4 ⑩: the DDS-RDMA port skips TLDK's TCP processing).
    RDMA_COST_SCALE = 0.4
    #: Host-core-seconds per request to look its file up in the shard
    #: map (consistent-hash ring walk; sharded deployments only).
    SHARD_LOOKUP_COST = 0.03 * MICROSECOND

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        cores: List[CpuCore],
        signature: AppSignature,
        callbacks: OffloadCallbacks,
        cache_table: CuckooCacheTable,
        engine: Optional[OffloadEngine],
        host_handler: HostHandler,
        rdma: bool = False,
        shard_map: Optional["ConsistentHashShardMap"] = None,
        shard_id: int = 0,
    ) -> None:
        if not cores:
            raise ValueError("traffic director needs at least one core")
        self.env = env
        self.link = link
        self.cores = cores
        self.signature = signature
        self.callbacks = callbacks
        self.cache_table = cache_table
        self.engine = engine
        self.host_handler = host_handler
        self.rdma = rdma
        self._cost_scale = self.RDMA_COST_SCALE if rdma else 1.0
        #: Consistent-hash file→shard map (multi-DPU deployments only).
        self.shard_map = shard_map
        self.shard_id = shard_id
        #: Optional keyspace→acting-shard override (replicated
        #: deployments route to the group leader instead of the static
        #: owner, so a dead primary's keyspace is served by its backup).
        self.route: Optional[Callable[[int], int]] = None
        #: Sibling directors indexed by shard id; the sharded deployment
        #: assigns this once every shard is constructed.
        self.peers: List["TrafficDirector"] = []
        #: Optional resilience hooks (chaos deployments install these):
        #: request-id dedup shared across the deployment's directors, and
        #: a circuit breaker steering around a crashed engine.
        self.dedup: Optional["RequestDedup"] = None
        self.breaker: Optional["CircuitBreaker"] = None
        #: False while this director's DPU is dead: arriving messages
        #: black-hole and in-flight responses are suppressed (a crashed
        #: DPU cannot transmit).
        self.alive = True
        self.messages_seen = 0
        self.requests_offloaded = 0
        self.requests_to_host = 0
        self.unmatched_messages = 0
        self.requests_relayed = 0
        self.relayed_messages = 0
        self.dropped_messages = 0
        self.dropped_responses = 0
        self.replayed_responses = 0

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def core_for(self, flow: FiveTuple) -> CpuCore:
        """Symmetric RSS: both directions of a flow share one core (§7)."""
        return self.cores[flow.rss_hash(len(self.cores))]

    def receive_message(
        self,
        flow: FiveTuple,
        requests: Sequence[IoRequest],
        respond: Callable,
    ) -> Generator:
        """Process one client message that arrived at the NIC.

        ``respond(IoResponse)`` delivers each request's response back to
        the client through :meth:`send_response`.  Requests that match
        the signature but cannot be offloaded are forwarded to the host
        handler (paying the Arm-core forward hop, §5.3).
        """
        if not self.alive:
            # Dead DPU: packets to it vanish; clients recover by retry
            # (and the sharded ingress reconnects them to a live shard).
            self.dropped_messages += 1
            return
        if not self.signature.matches(flow):
            # Hardware signature mismatch: line-rate forward to the host
            # with no DPU core involvement at all; the host responds
            # directly through the NIC.
            self.unmatched_messages += 1
            yield self.env.timeout(self.link.spec.host_forward)
            yield self.env.process(
                self.host_handler(
                    list(requests), self._host_direct_sender(respond)
                )
            )
            return
        core = self.core_for(flow)
        self.messages_seen += 1
        message_bytes = sum(r.wire_size for r in requests)
        packets = self.link.packets_for(message_bytes)
        if self.shard_map is None:
            yield from core.execute(
                self._cost_scale * self.RX_COST_PER_PACKET * packets
                + self.OFFPRED_COST * len(requests)
            )
            yield from self._dispatch(core, flow, requests, respond)
            return
        # Sharded deployment: TLDK receive plus one shard-map lookup per
        # request; the OffPred charge is paid by whichever shard ends up
        # executing each batch.
        yield from core.execute(
            self._cost_scale * self.RX_COST_PER_PACKET * packets
            + self.SHARD_LOOKUP_COST * len(requests)
        )
        batches: Dict[int, List[IoRequest]] = {}
        for request in requests:
            owner = self.shard_map.owner(request.file_id)
            if self.route is not None:
                owner = self.route(owner)
            batches.setdefault(owner, []).append(request)
        local = batches.pop(self.shard_id, None)
        for shard_id in sorted(batches):
            batch = batches[shard_id]
            relay_bytes = sum(r.wire_size for r in batch)
            yield from core.execute(
                self._cost_scale
                * self.FORWARD_COST_PER_PACKET
                * self.link.packets_for(relay_bytes)
            )
            self.requests_relayed += len(batch)
            self.env.process(self._relay(shard_id, flow, batch, respond))
        if local:
            yield from core.execute(self.OFFPRED_COST * len(local))
            yield from self._dispatch(core, flow, local, respond)

    def _relay(
        self,
        shard_id: int,
        flow: FiveTuple,
        requests: List[IoRequest],
        respond: Callable,
    ) -> Generator:
        """DPU→DPU hop to the shard that owns these files."""
        yield self.env.timeout(self.link.spec.dpu_forward)
        peer = self.peers[shard_id]
        yield self.env.process(peer.receive_relayed(flow, requests, respond))

    def receive_relayed(
        self,
        flow: FiveTuple,
        requests: Sequence[IoRequest],
        respond: Callable,
    ) -> Generator:
        """Serve a batch relayed by a sibling shard's director.

        The owning shard pays receive + OffPred and answers the client
        directly (direct server return) through its own transmit path.
        """
        if not self.alive:
            self.dropped_messages += 1
            return
        core = self.core_for(flow)
        self.relayed_messages += 1
        message_bytes = sum(r.wire_size for r in requests)
        packets = self.link.packets_for(message_bytes)
        yield from core.execute(
            self._cost_scale * self.RX_COST_PER_PACKET * packets
            + self.OFFPRED_COST * len(requests)
        )
        yield from self._dispatch(core, flow, requests, respond)

    def _dispatch(
        self,
        core: CpuCore,
        flow: FiveTuple,
        requests: Sequence[IoRequest],
        respond: Callable,
    ) -> Generator:
        """OffPred split: offload engine first, host fallback second."""
        wrapped = self._response_sender(flow, respond)
        if self.dedup is not None:
            requests = self._dedup_intake(requests, wrapped)
            if not requests:
                return
            wrapped = self._recording_sender(wrapped)
        host_requests, dpu_requests = self.callbacks.off_pred(
            requests, self.cache_table
        )
        for request in dpu_requests:
            accepted = False
            if self.engine is not None and (
                self.breaker is None or self.breaker.allow()
            ):
                bounce: List[str] = []
                accepted = yield from self.engine.handle(
                    request, wrapped, on_bounce=bounce.append
                )
                if self.breaker is not None:
                    if accepted:
                        self.breaker.record_success()
                    elif self.engine.crashed:
                        # Crash-induced rejections trip the breaker.
                        self.breaker.record_failure()
                    elif bounce and bounce[0] != "off-func":
                        # Capacity bounce (ring/buffers full): saturation,
                        # not failure — an opt-in threshold decides
                        # whether a streak of these opens the breaker.
                        self.breaker.record_saturation()
            if accepted:
                self.requests_offloaded += 1
            else:
                host_requests.append(request)
        if host_requests:
            self.requests_to_host += len(host_requests)
            host_bytes = sum(r.wire_size for r in host_requests)
            yield from core.execute(
                self._cost_scale
                * self.FORWARD_COST_PER_PACKET
                * self.link.packets_for(host_bytes)
            )
            # Off-path Arm-core forward to the host (~6 us on BF-2).
            yield self.env.timeout(self.link.spec.dpu_forward)
            self.env.process(self.host_handler(host_requests, wrapped))

    # ------------------------------------------------------------------
    # idempotent retries (request-id dedup)
    # ------------------------------------------------------------------
    def _dedup_intake(
        self, requests: Sequence[IoRequest], sender: Callable
    ) -> List[IoRequest]:
        """Split retransmits from fresh work.

        Completed requests get their recorded response replayed (paying
        transmit but not re-execution); requests still in flight are
        absorbed — the original's response reaches the client through
        the shared callback.  Returns the requests to actually execute.
        """
        assert self.dedup is not None
        fresh: List[IoRequest] = []
        for request in requests:
            replay = self.dedup.cached(request.request_id)
            if replay is not None:
                self.replayed_responses += 1
                sender(replay)
            elif self.dedup.begin(request):
                fresh.append(request)
        return fresh

    def _recording_sender(self, sender: Callable) -> Callable:
        """Record outcomes in the dedup table before transmitting."""
        dedup = self.dedup

        def send(response: IoResponse) -> None:
            if response.ok:
                dedup.complete(response.request_id, response)
            else:
                # Not applied: let a retry re-execute cleanly.
                dedup.abandon(response.request_id)
            sender(response)

        return send

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def _host_direct_sender(self, respond: Callable) -> Callable:
        """Host-direct response path for flows the DPU never touched."""

        def send(response: IoResponse) -> None:
            self.env.process(self._host_direct(response, respond))

        return send

    def _host_direct(
        self, response: IoResponse, respond: Callable
    ) -> Generator:
        yield from self.link.transmit("server_to_client", response.wire_size)
        respond(response)

    def _response_sender(
        self, flow: FiveTuple, respond: Callable
    ) -> Callable:
        def send(response: IoResponse) -> None:
            self.env.process(self.send_response(flow, response, respond))

        return send

    def send_response(
        self, flow: FiveTuple, response: IoResponse, respond: Callable
    ) -> Generator:
        """Emit a response to the client: TLDK send + wire transfer."""
        if not self.alive:
            # The DPU died while this response was in flight: it is
            # lost (the dedup table, if any, has still recorded the
            # application, so a retry replays it after recovery).
            self.dropped_responses += 1
            return
        core = self.core_for(flow)
        packets = self.link.packets_for(response.wire_size)
        yield from core.execute(
            self._cost_scale * self.TX_COST_PER_PACKET * packets
        )
        yield from self.link.transmit(
            "server_to_client", response.wire_size
        )
        respond(response)
