"""Request-id dedup: at-most-once application of retried requests.

Client retries re-send the *same* request ids, so a retry racing its
original (or a chaos-duplicated message) must not apply a write twice.
:class:`RequestDedup` is the server-side table that makes retries
idempotent:

* ``cached(rid)`` — a completed request's response is replayed from the
  table (the retransmit pays transmit costs but not re-execution);
* ``begin(request)`` — registers a request as in flight; a duplicate of
  an in-flight request is silently absorbed (the original's response
  will reach the client through the shared ``on_response`` callback);
* ``complete(rid, response)`` — records a successful response for
  replay; failed responses are *abandoned* instead, so a retry may
  legitimately re-execute after a transient device error.

Entries in flight longer than their TTL are presumed lost and reclaimed
so a retry can re-execute.  Reads can genuinely be lost that way — an
engine crash drops its context ring without responding — so their TTL
is short.  Writes always travel the host path, which either responds or
fails, so their TTL is an order of magnitude longer: reclaiming a live
write is the one hole through which a double-apply could slip, and the
table counts exactly that.  ``double_applies`` increments when the same
write id completes successfully twice; the
:class:`~repro.faults.durability.DurabilityChecker` asserts it is zero
after every chaos run.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set, Tuple

from ..sim import Environment
from .messages import IoRequest, IoResponse, OpCode

__all__ = ["RequestDedup"]


class RequestDedup:
    """Bounded request-id → response table shared by a deployment."""

    def __init__(
        self,
        env: Environment,
        capacity: int = 1 << 16,
        read_ttl: float = 2e-3,
        write_ttl: float = 20e-3,
        track_history: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if read_ttl <= 0 or write_ttl <= 0:
            raise ValueError("TTLs must be positive")
        self.env = env
        self.capacity = capacity
        self.read_ttl = read_ttl
        self.write_ttl = write_ttl
        self.track_history = track_history
        self._completed: "OrderedDict[int, IoResponse]" = OrderedDict()
        #: request_id -> (registration time, is_write)
        self._in_flight: Dict[int, Tuple[float, bool]] = {}
        self._applied_writes: Set[int] = set()
        self.hits = 0
        self.absorbed = 0
        self.stale_reclaims = 0
        self.double_applies = 0

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def cached(self, request_id: int) -> Optional[IoResponse]:
        """The replayable response for a completed request, if any."""
        response = self._completed.get(request_id)
        if response is not None:
            self.hits += 1
        return response

    def begin(self, request: IoRequest) -> bool:
        """Register a request; False means a duplicate was absorbed."""
        rid = request.request_id
        is_write = request.op is OpCode.WRITE
        entry = self._in_flight.get(rid)
        if entry is not None:
            ttl = self.write_ttl if entry[1] else self.read_ttl
            if self.env.now - entry[0] < ttl:
                self.absorbed += 1
                return False
            # Presumed lost (engine crash dropped it): reclaim so the
            # retry re-executes.
            self.stale_reclaims += 1
        self._in_flight[rid] = (self.env.now, is_write)
        return True

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def complete(self, request_id: int, response: IoResponse) -> None:
        """Record a successful response for replay to later retries."""
        entry = self._in_flight.pop(request_id, None)
        if self.track_history and entry is not None and entry[1]:
            if request_id in self._applied_writes:
                self.double_applies += 1
            else:
                self._applied_writes.add(request_id)
        if request_id in self._completed:
            self._completed.move_to_end(request_id)
        self._completed[request_id] = response
        while len(self._completed) > self.capacity:
            self._completed.popitem(last=False)

    def abandon(self, request_id: int) -> None:
        """A request failed without being applied: allow a clean retry."""
        self._in_flight.pop(request_id, None)

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)
