"""Assembled storage servers: the baseline and the two DDS deployments.

Three server flavours correspond to the three curves of Figures 14-15:

* :class:`BaselineServer` — today's disaggregated storage: Windows
  sockets TCP + the DBMS network module on the host, OS filesystem I/O.
* :class:`DdsLibraryServer` — the host application keeps its network
  stack but replaces OS files with the DDS file library; file execution
  happens on the DPU file service.
* :class:`DdsOffloadServer` — full DDS: the NIC's signature match and the
  traffic director steer read requests to the offload engine, which
  serves them without touching the host; writes (and cache-miss reads)
  fall back to the host library path over the split connection.

All servers expose the same ``submit`` interface to the workload client
and the same cores-consumed accounting, so every benchmark swaps servers
without touching the harness.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence

from ..hardware.cpu import CpuCore, CpuPool
from ..hardware.nic import NetworkLink
from ..hardware.pcie import DmaEngine
from ..hardware.specs import (
    BENCH_APP_NET,
    DPU_CPU,
    HOST_APP_OTHER,
    HOST_CPU,
    HOST_OS_TCP,
    MICROSECOND,
    RDMA_VERBS,
    StackSpec,
)
from ..net.packet import AppSignature, FiveTuple
from ..net.stack import StackLayer
from ..sim import Environment, Event
from ..storage.filesystem import DdsFileSystem, FileSystemError
from ..storage.osfs import OsFileSystem
from ..structures.cuckoo import CuckooCacheTable
from ..structures.memory import BufferPool
from .api import OffloadCallbacks, passthrough_callbacks
from .file_library import DdsFileLibrary, PollMode
from .file_service import DpuFileService
from .messages import IoRequest, IoResponse, OpCode
from .offload_engine import OffloadEngine
from .traffic_director import TrafficDirector

__all__ = [
    "StorageServerBase",
    "BaselineServer",
    "DdsLibraryServer",
    "DdsOffloadServer",
]


class StorageServerBase:
    """Shared wiring: link, host CPU pool, response fan-in, accounting."""

    #: Transport stack the *client* machine pays per message (Figure 16
    #: accounts client + server CPU); TCP solutions use the OS stack.
    client_spec: StackSpec = HOST_OS_TCP

    def __init__(self, env: Environment, link: NetworkLink) -> None:
        self.env = env
        self.link = link
        self.host_pool = CpuPool(env, HOST_CPU)
        self.requests_served = 0

    # ------------------------------------------------------------------
    # client-facing API
    # ------------------------------------------------------------------
    def submit(
        self,
        flow: FiveTuple,
        requests: Sequence[IoRequest],
        on_response: Optional[Callable[[IoResponse], None]] = None,
    ) -> Event:
        """Send one client message; the event triggers when every
        request in it has been answered (responses also stream through
        ``on_response`` as they arrive at the client)."""
        done = self.env.event()
        remaining = [len(requests)]
        responses: List[IoResponse] = []

        def arrived(response: IoResponse) -> None:
            responses.append(response)
            if on_response is not None:
                on_response(response)
            remaining[0] -= 1
            if remaining[0] == 0:
                done.succeed(responses)

        self.env.process(self._ingress(flow, list(requests), arrived))
        return done

    def _ingress(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        arrived: Callable,
    ) -> Generator:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def host_cores(self, elapsed: float) -> float:
        """Average host cores consumed over ``elapsed`` seconds."""
        return self.host_pool.cores_consumed(elapsed)

    def dpu_cores(self, elapsed: float) -> float:
        """Average DPU cores consumed (0 for host-only servers)."""
        return 0.0


class BaselineServer(StorageServerBase):
    """Windows sockets + OS filesystem: the paper's baseline (§8.1)."""

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        app_handler: Optional[Callable] = None,
        app_net_spec: StackSpec = BENCH_APP_NET,
    ) -> None:
        super().__init__(env, link)
        self.os_tcp = StackLayer(env, HOST_OS_TCP, self.host_pool)
        self.app_net = StackLayer(env, app_net_spec, self.host_pool)
        self.app_other = StackLayer(env, HOST_APP_OTHER, self.host_pool)
        self.osfs = OsFileSystem(env, filesystem, self.host_pool)
        # Application override: (IoRequest) -> generator yielding events,
        # returning an IoResponse.  Default is plain file semantics.
        self.app_handler = app_handler

    def host_cores(self, elapsed: float) -> float:
        """Average host cores consumed over ``elapsed`` seconds."""
        pool = self.host_pool.cores_consumed(elapsed)
        return pool + self.osfs.serializer.utilization(elapsed)

    def _ingress(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        arrived: Callable,
    ) -> Generator:
        message_bytes = sum(r.wire_size for r in requests)
        yield from self.link.transmit("client_to_server", message_bytes)
        yield self.env.timeout(self.link.spec.host_forward)
        yield from self.os_tcp.process(message_bytes)
        yield from self.app_net.process(message_bytes)
        served = [self.env.process(self._serve(r)) for r in requests]
        responses: List[IoResponse] = yield self.env.all_of(served)
        response_bytes = sum(r.wire_size for r in responses)
        yield from self.app_net.process(response_bytes)
        yield from self.os_tcp.process(response_bytes)
        yield from self.link.transmit("server_to_client", response_bytes)
        for response in responses:
            arrived(response)

    def _serve(self, request: IoRequest) -> Generator:
        yield from self.app_other.process(request.wire_size)
        try:
            if self.app_handler is not None:
                response = yield self.env.process(self.app_handler(request))
            elif request.op is OpCode.READ:
                data = yield self.env.process(
                    self.osfs.read(
                        request.file_id, request.offset, request.size
                    )
                )
                response = IoResponse(request.request_id, True, data)
            else:
                yield self.env.process(
                    self.osfs.write(
                        request.file_id, request.offset, request.payload
                    )
                )
                response = IoResponse(request.request_id, True)
        except FileSystemError:
            response = IoResponse(request.request_id, False)
        self.requests_served += 1
        return response


class _DdsHostSide:
    """Host application logic shared by both DDS deployments.

    Owns the DDS file library, a set of notification groups (one per
    simulated application thread), the completion pump that resolves
    request ids back to waiters, and the host app's single I/O dispatch
    thread whose serialized per-request work bounds the library path's
    throughput (see DESIGN.md §4 on this calibration assumption).
    """

    DISPATCH_COST = 1.7 * MICROSECOND
    GROUPS = 4

    def __init__(
        self,
        env: Environment,
        host_pool: CpuPool,
        library: DdsFileLibrary,
    ) -> None:
        self.env = env
        self.host_pool = host_pool
        self.library = library
        self.dispatch_core = CpuCore(env, speed=1.0, name="app-dispatch")
        self.app_other = StackLayer(env, HOST_APP_OTHER, host_pool)
        self.groups = [library.create_poll() for _ in range(self.GROUPS)]
        self._waiters: Dict[int, Event] = {}
        self._registered_files: set = set()
        for group in self.groups:
            env.process(self._completion_pump(group))

    def register_file(self, file_id: int) -> None:
        """Spread files across notification groups round-robin."""
        if file_id in self._registered_files:
            return
        group = self.groups[len(self._registered_files) % len(self.groups)]
        self.library.poll_add(group, file_id)
        self._registered_files.add(file_id)

    def _completion_pump(self, group) -> Generator:
        while True:
            completion = yield self.env.process(
                self.library.poll_wait(group, PollMode.SLEEPING)
            )
            request_id, ok, data = completion
            waiter = self._waiters.pop(request_id, None)
            if waiter is not None:
                waiter.succeed(IoResponse(request_id, ok, data))

    def serve(self, request: IoRequest) -> Generator:
        """Application processing + library issue + completion wait."""
        yield from self.app_other.process(request.wire_size)
        yield from self.dispatch_core.execute(self.DISPATCH_COST)
        self.register_file(request.file_id)
        if request.op is OpCode.READ:
            request_id = yield from self.library.read_file(
                request.file_id, request.offset, request.size
            )
        else:
            request_id = yield from self.library.write_file(
                request.file_id, request.offset, request.payload
            )
        waiter = self.env.event()
        self._waiters[request_id] = waiter
        response: IoResponse = yield waiter
        return response


class DdsLibraryServer(StorageServerBase):
    """Host networking + DDS file library; file execution on the DPU."""

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        copy_mode: bool = False,
        transport_spec: StackSpec = HOST_OS_TCP,
    ) -> None:
        super().__init__(env, link)
        self.client_spec = transport_spec
        self.dma = DmaEngine(env)
        self.dma_core = CpuCore(env, speed=DPU_CPU.speed, name="dpu-dma")
        self.spdk_core = CpuCore(env, speed=DPU_CPU.speed, name="dpu-spdk")
        self.file_service = DpuFileService(
            env, filesystem, self.dma_core, self.spdk_core, copy_mode
        )
        self.library = DdsFileLibrary(
            env, self.host_pool, self.file_service, self.dma
        )
        self.host_side = _DdsHostSide(env, self.host_pool, self.library)
        self.transport = StackLayer(env, transport_spec, self.host_pool)
        self.app_net = StackLayer(env, BENCH_APP_NET, self.host_pool)
        self.file_service.start()

    def host_cores(self, elapsed: float) -> float:
        """Average host cores consumed over ``elapsed`` seconds."""
        pool = self.host_pool.cores_consumed(elapsed)
        return pool + self.host_side.dispatch_core.utilization(elapsed)

    def dpu_cores(self, elapsed: float) -> float:
        """Average DPU cores consumed over ``elapsed`` seconds."""
        return self.dma_core.utilization(elapsed) + self.spdk_core.utilization(
            elapsed
        )

    def _ingress(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        arrived: Callable,
    ) -> Generator:
        message_bytes = sum(r.wire_size for r in requests)
        yield from self.link.transmit("client_to_server", message_bytes)
        yield self.env.timeout(self.link.spec.host_forward)
        yield from self.transport.process(message_bytes)
        yield from self.app_net.process(message_bytes)
        served = [
            self.env.process(self.host_side.serve(r)) for r in requests
        ]
        responses: List[IoResponse] = yield self.env.all_of(served)
        response_bytes = sum(r.wire_size for r in responses)
        yield from self.app_net.process(response_bytes)
        yield from self.transport.process(response_bytes)
        yield from self.link.transmit("server_to_client", response_bytes)
        self.requests_served += len(responses)
        for response in responses:
            arrived(response)


class DdsOffloadServer(StorageServerBase):
    """Full DDS: traffic director + offload engine on the DPU (§5-§6)."""

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        callbacks: Optional[OffloadCallbacks] = None,
        signature: Optional[AppSignature] = None,
        cache_items: int = 1 << 20,
        director_cores: int = 1,
        context_slots: int = 1024,
        copy_mode: bool = False,
        rdma_transport: bool = False,
        host_app: Optional[Callable] = None,
    ) -> None:
        super().__init__(env, link)
        callbacks = callbacks or passthrough_callbacks()
        signature = signature or AppSignature(server_port=5000)
        self.callbacks = callbacks
        self.dma = DmaEngine(env)
        self.dma_core = CpuCore(env, speed=DPU_CPU.speed, name="dpu-dma")
        self.spdk_core = CpuCore(env, speed=DPU_CPU.speed, name="dpu-spdk")
        self.director_core_list = [
            CpuCore(env, speed=DPU_CPU.speed, name=f"dpu-director-{i}")
            for i in range(director_cores)
        ]
        self.file_service = DpuFileService(
            env, filesystem, self.dma_core, self.spdk_core, copy_mode
        )
        self.cache_table = CuckooCacheTable(cache_items)
        self.file_service.set_offload_hooks(callbacks, self.cache_table)
        self.library = DdsFileLibrary(
            env, self.host_pool, self.file_service, self.dma
        )
        self.host_side = _DdsHostSide(env, self.host_pool, self.library)
        # Application override for requests bounced to the host (KV gets,
        # GetPage@LSN); default is plain file semantics via the library.
        self.host_app = host_app
        transport = RDMA_VERBS if rdma_transport else HOST_OS_TCP
        self.client_spec = RDMA_VERBS if rdma_transport else HOST_OS_TCP
        self.transport = StackLayer(env, transport, self.host_pool)
        self.app_net = StackLayer(env, BENCH_APP_NET, self.host_pool)
        self.engine = OffloadEngine(
            env,
            self.director_core_list[0],
            self.file_service,
            callbacks,
            self.cache_table,
            BufferPool(256 << 20),
            context_slots=context_slots,
            copy_mode=copy_mode,
        )
        self.director = TrafficDirector(
            env,
            link,
            self.director_core_list,
            signature,
            callbacks,
            self.cache_table,
            self.engine,
            self._host_handler,
            rdma=rdma_transport,
        )
        self.file_service.start()

    def host_cores(self, elapsed: float) -> float:
        """Average host cores consumed over ``elapsed`` seconds."""
        pool = self.host_pool.cores_consumed(elapsed)
        return pool + self.host_side.dispatch_core.utilization(elapsed)

    def dpu_cores(self, elapsed: float) -> float:
        """Average DPU cores consumed over ``elapsed`` seconds."""
        total = self.dma_core.utilization(elapsed)
        total += self.spdk_core.utilization(elapsed)
        for core in self.director_core_list:
            total += core.utilization(elapsed)
        return total

    def _ingress(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        arrived: Callable,
    ) -> Generator:
        message_bytes = sum(r.wire_size for r in requests)
        yield from self.link.transmit("client_to_server", message_bytes)
        # NIC hardware evaluates the signature at line rate; matching
        # packets go to the director, others to the host inside
        # receive_message.
        yield self.env.process(
            self.director.receive_message(flow, requests, arrived)
        )
        self.requests_served += len(requests)

    def _host_handler(
        self, requests: Sequence[IoRequest], respond: Callable
    ) -> Generator:
        """Host fallback over the split connection (writes, bounces)."""
        message_bytes = sum(r.wire_size for r in requests)
        yield from self.transport.process(message_bytes)
        yield from self.app_net.process(message_bytes)
        handler = self.host_app or self.host_side.serve
        served = [self.env.process(handler(r)) for r in requests]
        responses: List[IoResponse] = yield self.env.all_of(served)
        response_bytes = sum(r.wire_size for r in responses)
        yield from self.app_net.process(response_bytes)
        yield from self.transport.process(response_bytes)
        for response in responses:
            respond(response)
