"""Assembled storage servers: the baseline and the two DDS deployments.

Three server flavours correspond to the three curves of Figures 14-15:

* :class:`BaselineServer` — today's disaggregated storage: Windows
  sockets TCP + the DBMS network module on the host, OS filesystem I/O.
* :class:`DdsLibraryServer` — the host application keeps its network
  stack but replaces OS files with the DDS file library; file execution
  happens on the DPU file service.
* :class:`DdsOffloadServer` — full DDS: the NIC's signature match and the
  traffic director steer read requests to the offload engine, which
  serves them without touching the host; writes (and cache-miss reads)
  fall back to the host library path over the split connection.

All three are :class:`PipelineServer` compositions of the stages in
:mod:`repro.topology.stages` — the generic ingress walks the inbound
stages, fans requests out to the execution stage (or hands the whole
message to a steering stage), and walks the outbound stages back.  Every
server exposes the same ``submit`` interface to the workload client and
the same per-stage cores-consumed roll-up, so every benchmark swaps
servers without touching the harness.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from ..hardware.cpu import CpuCore, CpuPool
from ..hardware.nic import NetworkLink
from ..hardware.specs import (
    BENCH_APP_NET,
    DPU_CPU,
    HOST_CPU,
    HOST_OS_TCP,
    RDMA_VERBS,
    StackSpec,
)
from ..net.packet import AppSignature, FiveTuple
from ..net.stack import StackLayer
from ..sim import Environment, Event
from ..storage.filesystem import DdsFileSystem
from ..structures.cuckoo import CuckooCacheTable
from ..structures.memory import BufferPool
from ..topology.stages import (
    DdsBackend,
    DdsHostSide,
    DirectorSteering,
    OsFileExecution,
    Stage,
    StageKind,
    TransportStage,
    WireEgress,
    WireIngress,
)
from .api import OffloadCallbacks, passthrough_callbacks
from .dedup import RequestDedup
from .messages import IoRequest, IoResponse
from .offload_engine import OffloadEngine
from .retry import CircuitBreaker
from .traffic_director import TrafficDirector

__all__ = [
    "StorageServerBase",
    "PipelineServer",
    "BaselineServer",
    "DdsLibraryServer",
    "DdsOffloadServer",
]

#: Backwards-compatible name for the host-side logic, which moved to
#: :mod:`repro.topology.stages` when the servers became compositions.
_DdsHostSide = DdsHostSide


class StorageServerBase:
    """Shared wiring: link, host CPU pool, response fan-in, accounting."""

    #: Transport stack the *client* machine pays per message (Figure 16
    #: accounts client + server CPU); TCP solutions use the OS stack.
    client_spec: StackSpec = HOST_OS_TCP

    def __init__(self, env: Environment, link: NetworkLink) -> None:
        self.env = env
        self.link = link
        self.host_pool = CpuPool(env, HOST_CPU)
        self.requests_served = 0
        #: Chaos hook: a :class:`~repro.faults.netem.NetworkChaos` gates
        #: every wire crossing while a NIC fault window is open.
        self.network_chaos = None
        #: Resilience hook: request-id dedup making client retries
        #: idempotent (installed by :meth:`enable_resilience`).
        self.dedup = None

    # ------------------------------------------------------------------
    # client-facing API
    # ------------------------------------------------------------------
    def submit(
        self,
        flow: FiveTuple,
        requests: Sequence[IoRequest],
        on_response: Optional[Callable[[IoResponse], None]] = None,
    ) -> Event:
        """Send one client message; the event triggers when every
        request in it has been answered (responses also stream through
        ``on_response`` as they arrive at the client)."""
        done = self.env.event()
        remaining = [len(requests)]
        responses: List[IoResponse] = []

        def arrived(response: IoResponse) -> None:
            responses.append(response)
            if on_response is not None:
                on_response(response)
            remaining[0] -= 1
            if remaining[0] == 0:
                done.succeed(responses)

        chaos = self.network_chaos
        if chaos is None:
            self.env.process(self._ingress(flow, list(requests), arrived))
            return done
        # A NIC fault window is open: both directions of the wire pass
        # through the chaos gate.  A dropped (or corrupted) request never
        # reaches the server, so ``done`` never fires — the client's
        # retry timer is the only recovery path.
        deliver = chaos.wrap_response(arrived)
        copies = chaos.ingress_copies()
        if copies == 0:
            return done
        if copies < 0:  # reordered: deliver once, late

            def start() -> None:
                self.env.process(self._ingress(flow, list(requests), deliver))

            delayed = chaos.delayed(start)
            delayed.__name__ = "chaos:reorder-request"
            self.env.process(delayed)
            return done
        for _copy in range(copies):
            self.env.process(self._ingress(flow, list(requests), deliver))
        return done

    def _ingress(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        arrived: Callable,
    ) -> Generator:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # resilience (chaos deployments opt in; figures never pay for it)
    # ------------------------------------------------------------------
    def enable_resilience(
        self,
        dedup_capacity: int = 1 << 16,
        breaker_threshold: int = 4,
        breaker_recovery: float = 500e-6,
    ) -> RequestDedup:
        """Install request-id dedup (and, where the deployment has an
        offload engine, a host-fallback circuit breaker).  Returns the
        dedup table so scenarios can audit it after the run."""
        self.dedup = RequestDedup(self.env, capacity=dedup_capacity)
        return self.dedup

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def host_cores(self, elapsed: float) -> float:
        """Average host cores consumed over ``elapsed`` seconds."""
        return self.host_pool.cores_consumed(elapsed)

    def dpu_cores(self, elapsed: float) -> float:
        """Average DPU cores consumed (0 for host-only servers)."""
        return 0.0


class PipelineServer(StorageServerBase):
    """A server assembled from composable datapath stages.

    Subclasses build their stage list in ``__init__`` and hand it to
    :meth:`_set_pipeline`.  The generic ingress then walks the inbound
    stages (ingest + transport) forward, runs the execution stage per
    request (or yields the whole message to the steering stage, which
    owns its own egress), and walks transports in reverse plus the
    completion stages on the way out.  Cores-consumed accounting is a
    single roll-up over the stages — no per-server overrides.
    """

    def _set_pipeline(
        self,
        stages: Sequence[Stage],
        execution: Optional[Stage] = None,
        steering: Optional[Stage] = None,
    ) -> None:
        if (execution is None) == (steering is None):
            raise ValueError(
                "a pipeline needs exactly one of execution or steering"
            )
        self._stages = list(stages)
        self._execution = execution
        self._steering = steering
        self._inbound = [
            s for s in self._stages
            if s.kind in (StageKind.INGEST, StageKind.TRANSPORT)
        ]
        if steering is not None:
            # The steering stage owns response egress (direct return via
            # the director's transmit path): nothing runs after it.
            self._outbound: List[Stage] = []
        else:
            transports = [
                s for s in self._stages if s.kind is StageKind.TRANSPORT
            ]
            completion = [
                s for s in self._stages if s.kind is StageKind.COMPLETION
            ]
            self._outbound = list(reversed(transports)) + completion

    @property
    def stages(self) -> List[Stage]:
        """The datapath stages, inbound order."""
        return list(self._stages)

    # ------------------------------------------------------------------
    # accounting: one roll-up over the stages
    # ------------------------------------------------------------------
    def host_cores(self, elapsed: float) -> float:
        """Average host cores consumed over ``elapsed`` seconds."""
        total = self.host_pool.cores_consumed(elapsed)
        for stage in self._stages:
            total += stage.host_cores(elapsed)
        return total

    def dpu_cores(self, elapsed: float) -> float:
        """Average DPU cores consumed over ``elapsed`` seconds."""
        total = 0.0
        for stage in self._stages:
            total += stage.dpu_cores(elapsed)
        return total

    def client_extra_cores(self) -> float:
        """Constant client-side cores (Redy's spin pollers)."""
        total = 0.0
        for stage in self._stages:
            total += stage.client_cores()
        return total

    # ------------------------------------------------------------------
    # generic ingress
    # ------------------------------------------------------------------
    def _ingress(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        arrived: Callable,
    ) -> Generator:
        message_bytes = sum(r.wire_size for r in requests)
        for stage in self._inbound:
            yield from stage.inbound(flow, message_bytes)
        if self._steering is not None:
            yield self.env.process(
                self._steering.steer(flow, requests, arrived)
            )
            self.requests_served += len(requests)
            return
        replayed: List[IoResponse] = []
        if self.dedup is not None:
            fresh: List[IoRequest] = []
            for request in requests:
                cached = self.dedup.cached(request.request_id)
                if cached is not None:
                    replayed.append(cached)
                elif self.dedup.begin(request):
                    fresh.append(request)
            requests = fresh
            if not requests and not replayed:
                return
        served = [
            self.env.process(self._execution.serve(r)) for r in requests
        ]
        responses: List[IoResponse] = (
            (yield self.env.all_of(served)) if served else []
        )
        if self.dedup is not None:
            for response in responses:
                if response.ok:
                    self.dedup.complete(response.request_id, response)
                else:
                    self.dedup.abandon(response.request_id)
            responses = replayed + responses
        response_bytes = sum(r.wire_size for r in responses)
        for stage in self._outbound:
            yield from stage.outbound(flow, response_bytes)
        self.requests_served += len(responses)
        for response in responses:
            arrived(response)


class BaselineServer(PipelineServer):
    """Windows sockets + OS filesystem: the paper's baseline (§8.1)."""

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        app_handler: Optional[Callable] = None,
        app_net_spec: StackSpec = BENCH_APP_NET,
    ) -> None:
        super().__init__(env, link)
        os_tcp = TransportStage(env, HOST_OS_TCP, self.host_pool)
        app_net = TransportStage(env, app_net_spec, self.host_pool)
        # Application override: (IoRequest) -> generator yielding events,
        # returning an IoResponse.  Default is plain file semantics.
        execution = OsFileExecution(
            env,
            filesystem,
            self.host_pool,
            app_handler=app_handler,
            catch_errors=True,
        )
        self._set_pipeline(
            [
                WireIngress(env, link, forward_latency=True),
                os_tcp,
                app_net,
                execution,
                WireEgress(env, link),
            ],
            execution=execution,
        )
        # Long-standing wiring aliases (apps and tests reach into them).
        self.os_tcp = os_tcp.layer
        self.app_net = app_net.layer
        self.app_other = execution.app_other
        self.osfs = execution.osfs

    @property
    def app_handler(self) -> Optional[Callable]:
        return self._execution.app_handler

    @app_handler.setter
    def app_handler(self, handler: Optional[Callable]) -> None:
        self._execution.app_handler = handler


class DdsLibraryServer(PipelineServer):
    """Host networking + DDS file library; file execution on the DPU."""

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        copy_mode: bool = False,
        transport_spec: StackSpec = HOST_OS_TCP,
    ) -> None:
        super().__init__(env, link)
        self.client_spec = transport_spec
        backend = DdsBackend(env, self.host_pool, filesystem, copy_mode)
        transport = TransportStage(env, transport_spec, self.host_pool)
        app_net = TransportStage(env, BENCH_APP_NET, self.host_pool)
        self._set_pipeline(
            [
                WireIngress(env, link, forward_latency=True),
                transport,
                app_net,
                backend,
                WireEgress(env, link),
            ],
            execution=backend,
        )
        self.backend = backend
        self.dma = backend.dma
        self.dma_core = backend.dma_core
        self.spdk_core = backend.spdk_core
        self.file_service = backend.file_service
        self.library = backend.library
        self.host_side = backend.host_side
        self.transport = transport.layer
        self.app_net = app_net.layer
        backend.start()


class DdsOffloadServer(PipelineServer):
    """Full DDS: traffic director + offload engine on the DPU (§5-§6)."""

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        callbacks: Optional[OffloadCallbacks] = None,
        signature: Optional[AppSignature] = None,
        cache_items: int = 1 << 20,
        director_cores: int = 1,
        context_slots: int = 1024,
        copy_mode: bool = False,
        rdma_transport: bool = False,
        host_app: Optional[Callable] = None,
    ) -> None:
        super().__init__(env, link)
        callbacks = callbacks or passthrough_callbacks()
        signature = signature or AppSignature(server_port=5000)
        self.callbacks = callbacks
        backend = DdsBackend(env, self.host_pool, filesystem, copy_mode)
        self.director_core_list = [
            CpuCore(env, speed=DPU_CPU.speed, name=f"dpu-director-{i}")
            for i in range(director_cores)
        ]
        self.cache_table = CuckooCacheTable(cache_items)
        backend.file_service.set_offload_hooks(callbacks, self.cache_table)
        # Application override for requests bounced to the host (KV gets,
        # GetPage@LSN); default is plain file semantics via the library.
        self.host_app = host_app
        transport = RDMA_VERBS if rdma_transport else HOST_OS_TCP
        self.client_spec = RDMA_VERBS if rdma_transport else HOST_OS_TCP
        self.transport = StackLayer(env, transport, self.host_pool)
        self.app_net = StackLayer(env, BENCH_APP_NET, self.host_pool)
        self.engine = OffloadEngine(
            env,
            self.director_core_list[0],
            backend.file_service,
            callbacks,
            self.cache_table,
            BufferPool(256 << 20),
            context_slots=context_slots,
            copy_mode=copy_mode,
        )
        self.director = TrafficDirector(
            env,
            link,
            self.director_core_list,
            signature,
            callbacks,
            self.cache_table,
            self.engine,
            self._host_handler,
            rdma=rdma_transport,
        )
        steering = DirectorSteering(
            env,
            self.director_core_list,
            self.director,
            self.engine,
            self.cache_table,
        )
        self._set_pipeline(
            # NIC hardware evaluates the signature at line rate, so the
            # ingest stage skips the NIC->host PCIe forward; unmatched
            # flows pay it inside receive_message instead.
            [
                WireIngress(env, link, forward_latency=False),
                backend,
                steering,
            ],
            steering=steering,
        )
        self.backend = backend
        self.dma = backend.dma
        self.dma_core = backend.dma_core
        self.spdk_core = backend.spdk_core
        self.file_service = backend.file_service
        self.library = backend.library
        self.host_side = backend.host_side
        backend.start()

    def enable_resilience(
        self,
        dedup_capacity: int = 1 << 16,
        breaker_threshold: int = 4,
        breaker_recovery: float = 500e-6,
    ) -> RequestDedup:
        """Dedup on the director plus a host-fallback circuit breaker."""
        dedup = super().enable_resilience(dedup_capacity)
        self.director.dedup = dedup
        self.director.breaker = CircuitBreaker(
            self.env,
            failure_threshold=breaker_threshold,
            recovery_time=breaker_recovery,
        )
        return dedup

    def _host_handler(
        self, requests: Sequence[IoRequest], respond: Callable
    ) -> Generator:
        """Host fallback over the split connection (writes, bounces)."""
        message_bytes = sum(r.wire_size for r in requests)
        yield from self.transport.process(message_bytes)
        yield from self.app_net.process(message_bytes)
        handler = self.host_app or self.host_side.serve
        served = [self.env.process(handler(r)) for r in requests]
        responses: List[IoResponse] = yield self.env.all_of(served)
        response_bytes = sum(r.wire_size for r in responses)
        yield from self.app_net.process(response_bytes)
        yield from self.transport.process(response_bytes)
        for response in responses:
            respond(response)
