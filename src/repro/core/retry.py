"""Client retry policy, retry budget, and the director's circuit breaker.

Three small, deterministic state machines the chaos and overload layers
lean on:

* :class:`RetryPolicy` — per-message attempt timeouts plus exponential
  backoff with seeded jitter.  The jitter draw comes from the caller's
  :class:`~repro.sim.rng.SeededRng`, so retry schedules are part of the
  run's deterministic replay.
* :class:`RetryBudget` — the metastability defense (DESIGN §15): a
  token bucket refilled by *successes* that caps how much retry traffic
  a client may add on top of its first attempts.  Without one, an
  8-attempt policy amplifies offered load up to 8× exactly when the
  server is saturated — the classic retry-storm collapse.
* :class:`CircuitBreaker` — while a shard's offload engine is down,
  probing it on every request only adds director-core work before the
  inevitable host fallback.  The breaker opens after a burst of
  engine-crash failures — or, when ``saturation_threshold`` is set,
  after a streak of capacity bounces — sends traffic straight to the
  per-shard host path, and half-opens after ``recovery_time`` to probe
  with a single request.  Transitions are recorded with their sim
  times, so a chaos run can assert the breaker's trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim import Environment, SeededRng

__all__ = ["RetryPolicy", "RetryBudget", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / backoff knobs for one client's request retries."""

    #: Seconds to wait for a message's responses before retrying.
    timeout: float = 400e-6
    #: Total attempts (first try included) before a request is failed.
    max_attempts: int = 8
    #: First backoff delay; doubles (``factor``) up to ``cap``.
    backoff_base: float = 100e-6
    backoff_factor: float = 2.0
    backoff_cap: float = 5e-3
    #: Uniform jitter as a fraction of the computed backoff.
    jitter: float = 0.2
    #: Extra backoff multiplier applied when the server answered with an
    #: explicit THROTTLED shed during the attempt window — the client
    #: half of retry-circuit cooperation (a throttle is a *signal*, not
    #: a loss; hammering a server that just said "stop" is how retry
    #: storms start).
    throttle_backoff_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.throttle_backoff_factor < 1.0:
            raise ValueError("throttle_backoff_factor must be >= 1")

    def backoff(self, attempt: int, rng: SeededRng) -> float:
        """Delay before retry number ``attempt`` (0-based), jittered."""
        delay = min(
            self.backoff_base * self.backoff_factor**attempt,
            self.backoff_cap,
        )
        if self.jitter > 0 and delay > 0:
            delay += self.jitter * delay * rng.random()
        return delay


class RetryBudget:
    """A shared retry token bucket, refilled by successes.

    Each retry *attempt* spends one token; each acknowledged request
    deposits ``refill_ratio`` tokens (capped at ``capacity``).  Under
    sustained overload the sustained retry rate is therefore bounded by
    ``refill_ratio`` × the success rate, so the server-side offered
    load cannot exceed ~``(1 + refill_ratio)``× the client demand no
    matter how many attempts the :class:`RetryPolicy` allows — the
    bucket's ``capacity`` only funds a transient burst.  Share one
    budget across a client fleet to bound the *aggregate* storm.

    First attempts never consume tokens: a budget throttles recovery
    traffic, not demand.
    """

    def __init__(
        self,
        capacity: float = 32.0,
        refill_ratio: float = 0.1,
        initial: Optional[float] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if refill_ratio < 0:
            raise ValueError("refill_ratio must be >= 0")
        self.capacity = float(capacity)
        self.refill_ratio = float(refill_ratio)
        self.tokens = self.capacity if initial is None else float(initial)
        self.spent = 0
        self.denied = 0
        self.successes = 0

    def try_spend(self) -> bool:
        """Take one token for a retry; False means *do not retry*."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False

    def on_success(self) -> None:
        """An acked request earns back a fraction of a retry token."""
        self.successes += 1
        self.tokens = min(self.capacity, self.tokens + self.refill_ratio)


class CircuitBreaker:
    """Closed → open → half-open breaker over the offload engine.

    ``allow()`` is consulted before each engine probe; failures that
    stem from a crashed engine feed ``record_failure()``.  Ordinary
    capacity bounces feed ``record_saturation()`` — with
    ``saturation_threshold`` unset (the default) they are ignored, as
    healthy burst behaviour; with it set, a streak of bounces opens the
    breaker so the director stops burning engine-intake core time on an
    engine that keeps saying no.  All timing uses the simulation clock.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        env: Environment,
        failure_threshold: int = 4,
        recovery_time: float = 500e-6,
        saturation_threshold: Optional[int] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time <= 0:
            raise ValueError("recovery_time must be positive")
        if saturation_threshold is not None and saturation_threshold < 1:
            raise ValueError("saturation_threshold must be >= 1")
        self.env = env
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        #: Consecutive capacity bounces that open the breaker; None
        #: keeps the pre-overload behaviour (bounces never open it).
        self.saturation_threshold = saturation_threshold
        self.state = self.CLOSED
        self.failures = 0
        self.times_opened = 0
        self.rejected = 0
        #: Total capacity bounces reported, and the current streak
        #: (reset by any success).
        self.saturation_bounces = 0
        self._saturation_streak = 0
        #: Why the breaker last opened: "crash" or "saturation".
        self.opened_by: Optional[str] = None
        self._retry_at = 0.0
        #: (sim time, new state) — the breaker's deterministic trajectory.
        self.transitions: List[Tuple[float, str]] = []

    def _transition(self, state: str) -> None:
        self.state = state
        self.transitions.append((self.env.now, state))

    def allow(self) -> bool:
        """May the next request probe the engine?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN and self.env.now >= self._retry_at:
            # One probe flies; everything else keeps falling back until
            # the probe reports success.
            self._transition(self.HALF_OPEN)
            return True
        self.rejected += 1
        return False

    def record_success(self) -> None:
        if self.state != self.CLOSED:
            self._transition(self.CLOSED)
        self.failures = 0
        self._saturation_streak = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self.failures >= self.failure_threshold
        ):
            self._open("crash")

    def record_saturation(self) -> None:
        """The engine bounced a request on capacity (ring/buffers full).

        Saturation is not failure: the engine is alive, just full.  With
        no ``saturation_threshold`` this only counts the bounce.  With
        one, a long enough streak opens the breaker — requests flow
        straight to host fallback until the half-open probe finds room
        again — and a half-open probe that bounces re-opens it.
        """
        self.saturation_bounces += 1
        self._saturation_streak += 1
        if self.saturation_threshold is None:
            return
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self._saturation_streak >= self.saturation_threshold
        ):
            self._open("saturation")

    def _open(self, cause: str) -> None:
        self.times_opened += 1
        self.opened_by = cause
        self._retry_at = self.env.now + self.recovery_time
        self._transition(self.OPEN)

    def reset(self) -> None:
        """Forget accumulated failures after the engine was *replaced*.

        ``recover_shard`` calls this once a crashed shard's engine has
        been rebuilt: dispatches that were already past the director's
        alive check when the DPU died kept feeding ``record_failure``,
        so without the reset a recovered shard would start open (or
        half-open) for the previous crash's failures and bounce its
        first requests to the host for no reason.  An ``EngineCrash``
        without recovery keeps the ordinary half-open probe behaviour —
        only a full shard recovery earns a clean slate.
        """
        self.failures = 0
        self._saturation_streak = 0
        self._retry_at = 0.0
        if self.state != self.CLOSED:
            self._transition(self.CLOSED)
