"""Client retry policy and the director's host-fallback circuit breaker.

Two small, deterministic state machines the chaos layer leans on:

* :class:`RetryPolicy` — per-message attempt timeouts plus exponential
  backoff with seeded jitter.  The jitter draw comes from the caller's
  :class:`~repro.sim.rng.SeededRng`, so retry schedules are part of the
  run's deterministic replay.
* :class:`CircuitBreaker` — while a shard's offload engine is down,
  probing it on every request only adds director-core work before the
  inevitable host fallback.  The breaker opens after a burst of
  engine-crash failures, sends traffic straight to the per-shard host
  path, and half-opens after ``recovery_time`` to probe with a single
  request.  Transitions are recorded with their sim times, so a chaos
  run can assert the breaker's trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..sim import Environment, SeededRng

__all__ = ["RetryPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / backoff knobs for one client's request retries."""

    #: Seconds to wait for a message's responses before retrying.
    timeout: float = 400e-6
    #: Total attempts (first try included) before a request is failed.
    max_attempts: int = 8
    #: First backoff delay; doubles (``factor``) up to ``cap``.
    backoff_base: float = 100e-6
    backoff_factor: float = 2.0
    backoff_cap: float = 5e-3
    #: Uniform jitter as a fraction of the computed backoff.
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, rng: SeededRng) -> float:
        """Delay before retry number ``attempt`` (0-based), jittered."""
        delay = min(
            self.backoff_base * self.backoff_factor**attempt,
            self.backoff_cap,
        )
        if self.jitter > 0 and delay > 0:
            delay += self.jitter * delay * rng.random()
        return delay


class CircuitBreaker:
    """Closed → open → half-open breaker over the offload engine.

    ``allow()`` is consulted before each engine probe; failures that
    stem from a crashed engine (not ordinary capacity bounces) feed
    ``record_failure()``.  All timing uses the simulation clock.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        env: Environment,
        failure_threshold: int = 4,
        recovery_time: float = 500e-6,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time <= 0:
            raise ValueError("recovery_time must be positive")
        self.env = env
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.state = self.CLOSED
        self.failures = 0
        self.times_opened = 0
        self.rejected = 0
        self._retry_at = 0.0
        #: (sim time, new state) — the breaker's deterministic trajectory.
        self.transitions: List[Tuple[float, str]] = []

    def _transition(self, state: str) -> None:
        self.state = state
        self.transitions.append((self.env.now, state))

    def allow(self) -> bool:
        """May the next request probe the engine?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN and self.env.now >= self._retry_at:
            # One probe flies; everything else keeps falling back until
            # the probe reports success.
            self._transition(self.HALF_OPEN)
            return True
        self.rejected += 1
        return False

    def record_success(self) -> None:
        if self.state != self.CLOSED:
            self._transition(self.CLOSED)
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self.failures >= self.failure_threshold
        ):
            self.times_opened += 1
            self._retry_at = self.env.now + self.recovery_time
            self._transition(self.OPEN)

    def reset(self) -> None:
        """Forget accumulated failures after the engine was *replaced*.

        ``recover_shard`` calls this once a crashed shard's engine has
        been rebuilt: dispatches that were already past the director's
        alive check when the DPU died kept feeding ``record_failure``,
        so without the reset a recovered shard would start open (or
        half-open) for the previous crash's failures and bounce its
        first requests to the host for no reason.  An ``EngineCrash``
        without recovery keeps the ordinary half-open probe behaviour —
        only a full shard recovery earns a clean slate.
        """
        self.failures = 0
        self._retry_at = 0.0
        if self.state != self.CLOSED:
            self._transition(self.CLOSED)
