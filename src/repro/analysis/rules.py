"""Rule registry and module classification for ``ddslint``.

The lint reasons about three *module classes*, mirroring the concurrency
conventions DESIGN.md documents:

* **shared** — modules holding state accessed by more than one logical
  thread (the lock-free structures, the offload engine's context ring,
  the sharded steering layer).  Read-modify-write and container
  mutations there must go through :class:`~repro.structures.atomics.
  AtomicCounter`, a lock, or a documented idiom (DDS101/DDS102).
* **instrumented** — shared modules whose accesses the deterministic
  interleaving harness (PR 2) must be able to schedule around: every
  shared mutation needs a lexically preceding ``yield_point()`` in the
  same function (DDS201).
* **sim** — modules driven by the discrete-event simulator, where any
  wall-clock read, process-global randomness, or hash-salt dependence
  would make schedules and benchmark figures unreproducible
  (DDS301/DDS302/DDS303).

Classification is by path relative to the ``repro`` package root, so the
registry below is the single place a new module opts into a class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

__all__ = [
    "Finding",
    "LintConfig",
    "DEFAULT_CONFIG",
    "RULES",
    "EXEMPT_DECLARATION",
]

#: Name of the class-level declaration the atomicity checks recognise:
#: ``_DDSLINT_EXEMPT = {"field": "justification", ...}`` marks fields
#: whose unguarded mutation is safe by a documented protocol (single
#: writer per field, slot ownership via CAS reservation, GIL-atomic
#: deque ends).  Justifications must be non-empty.
EXEMPT_DECLARATION = "_DDSLINT_EXEMPT"

#: Rule id -> one-line summary (kept in sync with DESIGN.md §"Static
#: analysis").
RULES: Dict[str, str] = {
    "DDS101": (
        "read-modify-write on a shared attribute outside "
        "AtomicCounter/lock/documented idiom"
    ),
    "DDS102": (
        "non-atomic container mutation on a shared attribute outside "
        "lock/copy-on-write idiom"
    ),
    "DDS201": (
        "shared access without a lexically preceding yield_point() — "
        "invisible to the interleaving harness"
    ),
    "DDS301": "wall-clock time source inside sim-driven code",
    "DDS302": "process-global randomness inside sim-driven code",
    "DDS303": (
        "hash-salt or iteration-order dependence inside sim-driven code"
    ),
    "DDS304": (
        "direct heapq use or scheduler-queue access in sim-driven code "
        "outside the engine's sanctioned scheduling API"
    ),
    "DDS501": (
        "raw pushdown interpreter call with no lexically preceding "
        "verify()/verify_program() — offload bytecode executed without "
        "admission"
    ),
    "DDS502": (
        "hand-built VerifiedProgram/VerifiedPipeline — proof tokens "
        "are minted only by the verifier"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One lint finding (possibly suppressed by an inline comment)."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: str = ""

    def format(self) -> str:
        tag = " [suppressed]" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule}{tag} {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Which module paths belong to which lint class.

    Paths are posix-style and relative to the ``repro`` package root
    (``structures/rings.py``).  Prefixes match whole directories.
    """

    shared_prefixes: Tuple[str, ...] = ("structures/",)
    shared_files: Tuple[str, ...] = (
        "core/offload_engine.py",
        "topology/sharding.py",
        "topology/replication.py",
    )
    instrumented_prefixes: Tuple[str, ...] = ("structures/",)
    instrumented_files: Tuple[str, ...] = (
        "core/offload_engine.py",
        "topology/replication.py",
    )
    sim_prefixes: Tuple[str, ...] = (
        "sim/",
        "hardware/",
        "net/",
        "baselines/",
        "faults/",
        "workload/",
    )
    #: Files inside sim prefixes that *implement* the blessed idioms and
    #: are therefore exempt from the determinism rules (the seeded RNG
    #: wrapper is allowed to touch :mod:`random`).
    sim_exempt_files: Tuple[str, ...] = ("sim/rng.py",)
    #: The engine itself: the only sim module allowed to own event-queue
    #: mechanics (``heapq``, the ready deque, the sequence counter).
    #: Everything else in a sim prefix must schedule through the
    #: engine's API (``env.timeout`` / ``succeed`` / ``process``) so the
    #: hot path stays in one optimizable place (DDS304, DESIGN.md §11).
    scheduler_files: Tuple[str, ...] = ("sim/engine.py",)
    #: Modules that host or dispatch offload programs: raw interpreter
    #: calls need a preceding verify (DDS501) and proof tokens must come
    #: from the verifier (DDS502, DESIGN.md §14).
    offload_prefixes: Tuple[str, ...] = ("extensions/", "pushdown/")
    #: The pushdown machinery itself — the interpreter (calls itself),
    #: the verifier (mints the tokens), and the engine (the sanctioned
    #: redeemer) — is where the admission discipline is *implemented*,
    #: so the rules do not apply to it.
    offload_exempt_files: Tuple[str, ...] = (
        "pushdown/interp.py",
        "pushdown/verifier.py",
        "pushdown/engine.py",
    )

    def classes_for(self, relpath: str) -> FrozenSet[str]:
        """The lint classes a module (path relative to repro/) is in."""
        classes: Set[str] = set()
        if relpath.startswith(self.shared_prefixes) or (
            relpath in self.shared_files
        ):
            classes.add("shared")
        if relpath.startswith(self.instrumented_prefixes) or (
            relpath in self.instrumented_files
        ):
            classes.add("instrumented")
        if (
            relpath.startswith(self.sim_prefixes)
            and relpath not in self.sim_exempt_files
        ):
            classes.add("sim")
            if relpath not in self.scheduler_files:
                classes.add("sim_hot")
        if (
            relpath.startswith(self.offload_prefixes)
            and relpath not in self.offload_exempt_files
        ):
            classes.add("offload")
        return frozenset(classes)


DEFAULT_CONFIG = LintConfig()
