"""Pushdown admission discipline checks (DDS501/DDS502).

The verified-pushdown contract (DESIGN.md §14) is that offload bytecode
reaches an execution engine only as a :class:`~repro.pushdown.verifier.
VerifiedPipeline`/``VerifiedProgram`` proof token minted by
``verify()``/``verify_program()``.  Two ways to cheat, both statically
visible in *offload*-class modules:

* **DDS501** — calling the raw interpreter (``interpret`` /
  ``interpret_pipeline``) with no verify-family call lexically earlier
  in the same scope.  Lexical precedence is the same dominance
  approximation DDS201 uses for ``yield_point()``: verify first, then
  execute; helpers whose callers verify must carry an inline
  suppression explaining the contract.
* **DDS502** — constructing a proof token by hand
  (``VerifiedProgram(...)`` / ``VerifiedPipeline(...)``), which forges
  the admission the verifier never granted.

The pushdown machinery itself (the interpreter, the verifier that mints
tokens, the engine that redeems them) is exempt by configuration —
see :class:`~repro.analysis.rules.LintConfig.offload_exempt_files`.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Sequence, Union

from .rules import Finding

__all__ = ["check_pushdown_admission"]

#: Raw execution entries DDS501 guards.
_RAW_EXEC = frozenset({"interpret", "interpret_pipeline"})

#: Verify-family calls that satisfy DDS501's precedence requirement.
_VERIFIERS = frozenset({"verify", "verify_program"})

#: Proof-token constructors only the verifier may call (DDS502).
_TOKENS = frozenset({"VerifiedProgram", "VerifiedPipeline"})

_Scope = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]


def _call_name(node: ast.Call) -> Optional[str]:
    """Terminal name of a call: ``f(...)`` or ``mod.attr.f(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _scopes(tree: ast.Module) -> Iterator[_Scope]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_statements(scope: _Scope) -> Sequence[ast.stmt]:
    """The scope's statements, excluding nested function/class bodies."""
    own: List[ast.stmt] = []
    pending = list(scope.body)
    while pending:
        stmt = pending.pop(0)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        own.append(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                pending.append(child)
    return own


def _calls_in(statements: Sequence[ast.stmt]) -> Iterator[ast.Call]:
    seen = set()
    for stmt in statements:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and id(node) not in seen:
                seen.add(id(node))
                yield node


def check_pushdown_admission(
    tree: ast.Module,
    path: str,
    classes: FrozenSet[str],
) -> List[Finding]:
    """Run DDS501/DDS502 over one offload-class module."""
    findings: List[Finding] = []
    if "offload" not in classes:
        return findings
    for scope in _scopes(tree):
        statements = _own_statements(scope)
        verify_lines = [
            call.lineno
            for call in _calls_in(statements)
            if _call_name(call) in _VERIFIERS
        ]
        for call in _calls_in(statements):
            name = _call_name(call)
            if name in _RAW_EXEC:
                if not any(line < call.lineno for line in verify_lines):
                    findings.append(
                        Finding(
                            "DDS501",
                            path,
                            call.lineno,
                            f"raw interpreter call {name}() with no "
                            "lexically preceding verify()/"
                            "verify_program() — offload bytecode must "
                            "pass admission before execution",
                        )
                    )
            elif name in _TOKENS:
                findings.append(
                    Finding(
                        "DDS502",
                        path,
                        call.lineno,
                        f"hand-built {name} — proof tokens are minted "
                        "only by repro.pushdown.verifier.verify*()",
                    )
                )
    return findings
