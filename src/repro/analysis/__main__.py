"""``python -m repro.analysis`` — run the ddslint driver."""

from .driver import main

raise SystemExit(main())
