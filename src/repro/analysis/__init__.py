"""``ddslint``: concurrency-aware static analysis + race sanitizer.

The DDS datapath's correctness rests on conventions — atomic accesses
through :class:`~repro.structures.atomics.AtomicCounter`, copy-on-write
container edits, ``yield_point()`` instrumentation at every shared
access, and seeded determinism in sim-driven code.  PR 2's interleaving
harness checks executions; this package checks the *conventions
themselves*, statically, so the dynamic tests provably see what they
need to see.

Three layers:

* the AST lint (:mod:`repro.analysis.shared_state`,
  :mod:`repro.analysis.determinism`) with rules DDS101/DDS102
  (atomicity), DDS201 (yield-point coverage), DDS301-DDS303
  (DES determinism);
* the driver (:mod:`repro.analysis.driver`) — run it as
  ``python -m repro.analysis [paths]`` or the ``ddslint`` script; exit
  0 means the tree is clean or explicitly baselined;
* the runtime lockset/happens-before sanitizer
  (:mod:`repro.analysis.sanitizer`, rule DDS401), which piggybacks on
  the same ``yield_point`` hook during stress tests.

See DESIGN.md §"Static analysis" for rule semantics and the
suppression syntax.
"""

from .determinism import check_determinism
from .driver import lint_file, lint_source, lint_tree, main
from .pushdown_admission import check_pushdown_admission
from .rules import DEFAULT_CONFIG, RULES, Finding, LintConfig
from .sanitizer import (
    AccessEvent,
    LocksetSanitizer,
    RaceReport,
    TrackedLock,
)
from .shared_state import check_shared_state

__all__ = [
    "AccessEvent",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LocksetSanitizer",
    "RULES",
    "RaceReport",
    "TrackedLock",
    "check_determinism",
    "check_pushdown_admission",
    "check_shared_state",
    "lint_file",
    "lint_source",
    "lint_tree",
    "main",
]
