"""Atomicity (DDS101/DDS102) and yield-point coverage (DDS201) checks.

The checks walk every method of every class in a *shared* module and
collect the statements that mutate state reachable from ``self``:

* read-modify-write — ``self.x += 1`` and ``self.x = self.x op y``
  (DDS101): two interleaved instances lose an update;
* container mutation — ``self.items.append(...)``,
  ``self.buf[a:b] = data``, ``del self.d[k]``, including mutations
  through a local alias ``bucket = self._buckets[i]`` (DDS102): a
  concurrent lock-free reader can observe a half-applied edit.

An access is *excused* from DDS101/DDS102 when it happens under a lock
(``with self.<...lock...>:``) or when the class declares the field in
``_DDSLINT_EXEMPT = {"field": "justification"}`` — the documented-idiom
escape hatch (single-writer fields, CAS-reserved slot ownership,
GIL-atomic deque ends).  ``__init__`` bodies are skipped entirely:
construction precedes publication.

In *instrumented* modules the same accesses additionally need a
``yield_point()`` call lexically earlier in the same function (DDS201),
whether or not they are lock-guarded — the PR 2 interleaving harness can
only explore schedules at yield points, so an uninstrumented access is a
blind spot the dynamic tests can never cover.  Lexical precedence is an
approximation of dominance that matches the repo's idiom (yield, then
touch); it is checked per function so helpers whose callers yield must
carry an inline suppression explaining the contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from .rules import EXEMPT_DECLARATION, Finding

__all__ = [
    "check_shared_state",
    "SharedAccess",
    "external_state_roots",
]

#: Method names that mutate a list/dict/set/deque in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "clear",
        "update",
        "add",
        "discard",
        "setdefault",
        "sort",
        "reverse",
        "rotate",
    }
)


@dataclass
class SharedAccess:
    """One mutation of state reachable from ``self``."""

    kind: str  # "rmw" or "container"
    attr: str  # first-level attribute on self
    line: int
    under_lock: bool


def _root_attr(
    node: ast.expr, aliases: Dict[str, str]
) -> Optional[str]:
    """First-level ``self`` attribute an expression chain is rooted at.

    ``self._buckets[i].append`` -> ``_buckets``; ``bucket[i]`` where
    ``bucket = self._buckets[i]`` -> ``_buckets``; anything not rooted
    at ``self`` (directly or through an alias) -> None.
    """
    current: ast.expr = node
    last_attr: Optional[str] = None
    while True:
        if isinstance(current, ast.Attribute):
            last_attr = current.attr
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        else:
            break
    if isinstance(current, ast.Name):
        if current.id == "self":
            return last_attr
        return aliases.get(current.id)
    return None


def _is_self_chain(node: ast.expr) -> Optional[str]:
    """Root attr if ``node`` is a pure Attribute/Subscript chain on self."""
    current: ast.expr = node
    last_attr: Optional[str] = None
    while True:
        if isinstance(current, ast.Attribute):
            last_attr = current.attr
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        else:
            break
    if isinstance(current, ast.Name) and current.id == "self":
        return last_attr
    return None


def _reads_self_attr(value: ast.expr, attr: str) -> bool:
    """Does ``value`` contain a read of ``self.<attr>``?"""
    for node in ast.walk(value):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def _is_lock_context(item: ast.withitem) -> bool:
    """``with self.<something-lock>:`` (the recognised lock idiom)."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):  # e.g. self._lock.acquire_timeout(...)
        expr = expr.func
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and "lock" in expr.attr.lower()
    )


def _yield_point_lines(fn: ast.AST) -> List[int]:
    """Line numbers of every ``yield_point(...)`` call in ``fn``."""
    lines: List[int] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == "yield_point":
                lines.append(node.lineno)
    return lines


def external_state_roots(
    node: ast.AST, allowed: FrozenSet[str]
) -> List[Tuple[str, int]]:
    """Reads of state an expression does not own: ``(what, line)``.

    The DDS101/DDS102 root-attribute model applied to an arbitrary
    expression: every ``Name`` load and every Attribute/Subscript chain
    is attributed to its root binding, and any root outside ``allowed``
    is a touch of external (shared) state — a closure, a global, an
    object attribute.  The pushdown frontend uses this to reject
    offload-function sources that capture anything beyond their record
    parameter (verifier rule PDV302).
    """
    found: List[Tuple[str, int]] = []
    chain_roots: List[ast.Name] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            current: ast.expr = sub.value
            while isinstance(current, (ast.Attribute, ast.Subscript)):
                current = current.value
            if isinstance(current, ast.Name):
                chain_roots.append(current)
                if current.id not in allowed:
                    found.append((f"{current.id}.{sub.attr}", sub.lineno))
    roots = set(map(id, chain_roots))
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Name)
            and isinstance(sub.ctx, ast.Load)
            and sub.id not in allowed
            and id(sub) not in roots
        ):
            found.append((sub.id, sub.lineno))
    return sorted(set(found), key=lambda item: (item[1], item[0]))


class _FunctionScanner:
    """Collects shared accesses from one method body."""

    def __init__(self) -> None:
        self.accesses: List[SharedAccess] = []
        self._aliases: Dict[str, str] = {}

    # -- statement dispatch --------------------------------------------
    def scan_block(
        self, stmts: Iterable[ast.stmt], lock_depth: int
    ) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt, lock_depth)

    def _scan_stmt(self, stmt: ast.stmt, lock_depth: int) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            held = any(_is_lock_context(item) for item in stmt.items)
            self.scan_block(stmt.body, lock_depth + (1 if held else 0))
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function runs later: locks held at definition
            # time are NOT held at call time.
            self.scan_block(stmt.body, 0)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_expr(stmt.test, lock_depth)
            self.scan_block(stmt.body, lock_depth)
            self.scan_block(stmt.orelse, lock_depth)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, lock_depth)
            self.scan_block(stmt.body, lock_depth)
            self.scan_block(stmt.orelse, lock_depth)
            return
        if isinstance(stmt, ast.Try):
            self.scan_block(stmt.body, lock_depth)
            for handler in stmt.handlers:
                self.scan_block(handler.body, lock_depth)
            self.scan_block(stmt.orelse, lock_depth)
            self.scan_block(stmt.finalbody, lock_depth)
            return
        self._scan_simple(stmt, lock_depth)

    # -- simple statements ---------------------------------------------
    def _scan_simple(self, stmt: ast.stmt, lock_depth: int) -> None:
        under = lock_depth > 0
        if isinstance(stmt, ast.Assign):
            self._scan_assign(stmt, under)
        elif isinstance(stmt, ast.AugAssign):
            # A bare-Name target rebinds a local (``cls <<= 1`` after
            # ``cls = self.min_class`` copies an int) — not a shared
            # mutation.  Attribute/Subscript targets mutate in place.
            if not isinstance(stmt.target, ast.Name):
                attr = _root_attr(stmt.target, self._aliases)
                if attr is not None:
                    self._record("rmw", attr, stmt.lineno, under)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                attr = _root_attr(target, self._aliases)
                if attr is not None:
                    self._record("container", attr, stmt.lineno, under)
        self._scan_expr(stmt, under_lock_depth=lock_depth)

    def _scan_assign(self, stmt: ast.Assign, under: bool) -> None:
        targets: List[ast.expr] = []
        for target in stmt.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                targets.extend(target.elts)
            else:
                targets.append(target)
        for target in targets:
            if isinstance(target, ast.Subscript):
                attr = _root_attr(target, self._aliases)
                if attr is not None:
                    self._record("container", attr, stmt.lineno, under)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if _reads_self_attr(stmt.value, target.attr):
                    self._record("rmw", target.attr, stmt.lineno, under)
        # Alias tracking: name = <self-rooted chain> makes later
        # mutations through the name attributable to the self field.
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            root = _is_self_chain(stmt.value)
            name = targets[0].id
            if root is not None:
                self._aliases[name] = root
            else:
                self._aliases.pop(name, None)

    def _scan_expr(
        self, node: ast.AST, under_lock_depth: int
    ) -> None:
        """Find mutator method calls anywhere inside a statement."""
        under = under_lock_depth > 0
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _MUTATORS:
                continue
            attr = _root_attr(func.value, self._aliases)
            if attr is not None:
                self._record("container", attr, sub.lineno, under)

    def _record(
        self, kind: str, attr: str, line: int, under_lock: bool
    ) -> None:
        self.accesses.append(SharedAccess(kind, attr, line, under_lock))


def _exempt_fields(cls: ast.ClassDef) -> Dict[str, str]:
    """Parse ``_DDSLINT_EXEMPT = {"field": "why", ...}`` if present."""
    for stmt in cls.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == EXEMPT_DECLARATION
            for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, ast.Dict):
            return {}
        fields: Dict[str, str] = {}
        for key, value in zip(stmt.value.keys, stmt.value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and value.value.strip()
            ):
                fields[key.value] = value.value
        return fields
    return {}


def _methods(
    cls: ast.ClassDef,
) -> Iterable[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def check_shared_state(
    tree: ast.Module,
    path: str,
    classes: FrozenSet[str],
) -> List[Finding]:
    """Run DDS101/DDS102 (shared) and DDS201 (instrumented) over a file."""
    findings: List[Finding] = []
    shared = "shared" in classes
    instrumented = "instrumented" in classes
    if not (shared or instrumented):
        return findings
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        exempt = _exempt_fields(node)
        for method in _methods(node):
            if method.name == "__init__":
                continue  # construction precedes publication
            args = method.args.posonlyargs + method.args.args
            if not args or args[0].arg != "self":
                continue
            scanner = _FunctionScanner()
            scanner.scan_block(method.body, lock_depth=0)
            if not scanner.accesses:
                continue
            yields = _yield_point_lines(method)
            for access in scanner.accesses:
                excused = access.under_lock or access.attr in exempt
                if shared and not excused:
                    rule = "DDS101" if access.kind == "rmw" else "DDS102"
                    what = (
                        "read-modify-write on"
                        if access.kind == "rmw"
                        else "non-atomic container mutation of"
                    )
                    findings.append(
                        Finding(
                            rule,
                            path,
                            access.line,
                            f"{what} shared attribute "
                            f"'{access.attr}' in "
                            f"{node.name}.{method.name} without "
                            "AtomicCounter, lock, or "
                            f"{EXEMPT_DECLARATION} entry",
                        )
                    )
                if instrumented and not any(
                    line <= access.line for line in yields
                ):
                    findings.append(
                        Finding(
                            "DDS201",
                            path,
                            access.line,
                            "shared access to "
                            f"'{access.attr}' in "
                            f"{node.name}.{method.name} has no "
                            "lexically preceding yield_point(); the "
                            "interleaving harness cannot schedule "
                            "around it",
                        )
                    )
    return findings
