"""The ``ddslint`` driver: file discovery, suppressions, reporting.

Run as ``python -m repro.analysis [paths...]`` (defaults to the
installed ``repro`` package) or through the ``ddslint`` console script.
Exit status 0 means every finding is either absent or explicitly
suppressed; 1 means unsuppressed findings; 2 means a file failed to
parse.

Suppression syntax (both forms require a justification after ``--``):

* inline, on the reported line or the line directly above::

      self._head += 1  # ddslint: disable=DDS101 -- single consumer

* file-level, in the first 10 lines::

      # ddslint: disable-file=DDS301 -- replay tool, wall clock is data

Suppressed findings are retained (``Finding.suppressed = True``) so the
test tier can assert the baseline inventory instead of silently
trusting it; ``--show-suppressed`` prints them.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .determinism import check_determinism
from .pushdown_admission import check_pushdown_admission
from .rules import DEFAULT_CONFIG, Finding, LintConfig
from .shared_state import check_shared_state

__all__ = [
    "lint_source",
    "lint_file",
    "lint_tree",
    "iter_python_files",
    "main",
]

_INLINE_RE = re.compile(
    r"#\s*ddslint:\s*disable=([A-Z0-9,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*))?\s*$"
)
_FILE_RE = re.compile(
    r"#\s*ddslint:\s*disable-file=([A-Z0-9,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*))?\s*$"
)


def _parse_rules(raw: str) -> FrozenSet[str]:
    return frozenset(
        rule.strip() for rule in raw.split(",") if rule.strip()
    )


def _suppressions(
    source_lines: List[str],
) -> Tuple[Dict[int, Tuple[FrozenSet[str], str]], Dict[str, str]]:
    """(per-line suppressions, file-level suppressions with reasons)."""
    by_line: Dict[int, Tuple[FrozenSet[str], str]] = {}
    file_wide: Dict[str, str] = {}
    for index, line in enumerate(source_lines, start=1):
        match = _INLINE_RE.search(line)
        if match:
            why = (match.group("why") or "").strip()
            by_line[index] = (_parse_rules(match.group(1)), why)
        if index <= 10:
            fmatch = _FILE_RE.search(line)
            if fmatch:
                why = (fmatch.group("why") or "").strip()
                for rule in _parse_rules(fmatch.group(1)):
                    file_wide[rule] = why
    return by_line, file_wide


def _apply_suppressions(
    findings: List[Finding], source_lines: List[str]
) -> List[Finding]:
    by_line, file_wide = _suppressions(source_lines)
    result: List[Finding] = []
    for finding in findings:
        why: Optional[str] = None
        if finding.rule in file_wide:
            why = file_wide[finding.rule]
        else:
            for line in (finding.line, finding.line - 1):
                entry = by_line.get(line)
                if entry and finding.rule in entry[0]:
                    why = entry[1]
                    break
        if why is not None:
            result.append(
                Finding(
                    finding.rule,
                    finding.path,
                    finding.line,
                    finding.message,
                    suppressed=True,
                    justification=why,
                )
            )
        else:
            result.append(finding)
    return result


def lint_source(
    source: str,
    path: str,
    classes: FrozenSet[str],
) -> List[Finding]:
    """Lint one module's source under explicit class membership."""
    tree = ast.parse(source, filename=path)
    findings = check_shared_state(tree, path, classes)
    findings += check_determinism(tree, path, classes)
    findings += check_pushdown_admission(tree, path, classes)
    findings.sort(key=lambda f: (f.line, f.rule))
    return _apply_suppressions(findings, source.splitlines())


def _relative_module_path(path: Path, root: Path) -> str:
    """Posix path relative to the repro package root, best effort.

    Anchors on the last ``repro`` package directory in the path, so
    ``src/repro/structures/rings.py`` classifies as
    ``structures/rings.py`` whether the lint root is ``src``,
    ``src/repro``, or the file itself.
    """
    parts = path.resolve().parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[anchor + 1:])
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.name


def lint_file(
    path: Path,
    root: Path,
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Finding]:
    """Lint one file, classifying it by its path under ``root``."""
    relpath = _relative_module_path(path, root)
    classes = config.classes_for(relpath)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), classes)


def iter_python_files(root: Path) -> Iterable[Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def lint_tree(
    root: Path, config: LintConfig = DEFAULT_CONFIG
) -> List[Finding]:
    """Lint every Python file under ``root``."""
    findings: List[Finding] = []
    for path in iter_python_files(root):
        findings.extend(lint_file(path, root, config))
    return findings


def _default_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parents[1]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ddslint",
        description=(
            "Concurrency-aware static analysis for the DDS "
            "reproduction: atomicity discipline, yield-point "
            "coverage, and DES determinism."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by ddslint comments",
    )
    args = parser.parse_args(argv)
    roots = args.paths or [_default_root()]

    active: List[Finding] = []
    suppressed: List[Finding] = []
    for root in roots:
        if not root.exists():
            print(f"ddslint: no such path: {root}", file=sys.stderr)
            return 2
        try:
            findings = lint_tree(root)
        except SyntaxError as exc:
            print(f"ddslint: parse error: {exc}", file=sys.stderr)
            return 2
        for finding in findings:
            (suppressed if finding.suppressed else active).append(
                finding
            )

    for finding in active:
        print(finding.format())
    if args.show_suppressed:
        for finding in suppressed:
            print(
                f"{finding.format()}"
                f" -- {finding.justification or '(no justification)'}"
            )
    print(
        f"ddslint: {len(active)} finding(s), "
        f"{len(suppressed)} suppressed"
    )
    return 1 if active else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
