"""DES-determinism checks (DDS301/DDS302/DDS303) for sim-driven code.

Every experiment in this repo is supposed to be a pure function of its
configuration and seed (DESIGN.md §4, ``sim/rng.py``): re-running a
bench reproduces its figure byte-for-byte, and the interleaving harness
can replay any schedule from a seed.  Three classes of construct break
that contract when they leak into sim-driven modules:

* **DDS301 — wall-clock time**: ``time.time()``, ``monotonic()``,
  ``perf_counter()``, ``sleep()``, ``datetime.now()`` … simulated time
  comes only from the event loop (``env.now``).
* **DDS302 — process-global randomness**: module-level ``random.*``
  draws share one unseeded global stream; any entropy source
  (``os.urandom``, ``uuid.uuid4``) is worse.  Models must draw from a
  :class:`~repro.sim.rng.SeededRng` handed down by the harness
  (instantiating ``random.Random(seed)`` is therefore allowed).
* **DDS303 — hash-salt / iteration-order dependence**: the builtin
  ``hash()`` is salted per process (PYTHONHASHSEED), so anything
  derived from it — including ``set`` iteration order — differs between
  runs.  Use a keyed digest (``hashlib.blake2b``) or ``sorted()``.
* **DDS304 — scheduling-API bypass**: only the engine
  (``sim/engine.py``) may own event-queue mechanics.  A model that
  imports ``heapq`` or pokes the engine's private queues (``_heap``,
  ``_ready``, ``_eid``) sidesteps the same-tick ready deque and the
  ``(time, seq)`` total order that DESIGN.md §11's fast path — and
  every byte-identical golden — depends on.  Wall-clock reads in the
  same hot paths are already DDS301 findings.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional

from .rules import Finding

__all__ = ["check_determinism"]

_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "sleep",
    }
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_ENTROPY = {
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("secrets", "token_bytes"),
    ("secrets", "token_hex"),
    ("secrets", "randbelow"),
}
#: random.* attributes that are fine: seeded-generator construction.
_RANDOM_OK = frozenset({"Random"})
#: Engine-private scheduler state (DDS304): models must not touch these.
_SCHEDULER_PRIVATE = frozenset({"_heap", "_ready", "_eid"})


def _import_table(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for imports we care about."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                table[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return table


def _call_origin(
    call: ast.Call, imports: Dict[str, str]
) -> Optional[str]:
    """Dotted origin of a call (``time.monotonic``), if resolvable."""
    func = call.func
    if isinstance(func, ast.Name):
        return imports.get(func.id, None)
    parts: List[str] = []
    current: ast.expr = func
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = imports.get(current.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def check_determinism(
    tree: ast.Module,
    path: str,
    classes: FrozenSet[str],
) -> List[Finding]:
    """Run DDS301/302/303 over one sim-driven module."""
    findings: List[Finding] = []
    if "sim" not in classes:
        return findings
    imports = _import_table(tree)
    guard_scheduler = "sim_hot" in classes

    def report(rule: str, line: int, message: str) -> None:
        findings.append(Finding(rule, path, line, message))

    for node in ast.walk(tree):
        if guard_scheduler:
            if isinstance(node, ast.Import) and any(
                alias.name == "heapq" or alias.name.startswith("heapq.")
                for alias in node.names
            ):
                report(
                    "DDS304",
                    node.lineno,
                    "direct heapq import outside the engine: schedule "
                    "through env.timeout/succeed/process so the hot "
                    "path stays in sim/engine.py",
                )
            elif isinstance(node, ast.ImportFrom) and (
                node.module == "heapq"
            ):
                report(
                    "DDS304",
                    node.lineno,
                    "direct heapq import outside the engine: schedule "
                    "through env.timeout/succeed/process so the hot "
                    "path stays in sim/engine.py",
                )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in _SCHEDULER_PRIVATE
            ):
                report(
                    "DDS304",
                    node.lineno,
                    f"access to engine-private scheduler state "
                    f".{node.attr}: use the engine's public "
                    "scheduling API",
                )
        if isinstance(node, ast.Call):
            origin = _call_origin(node, imports)
            if origin is not None:
                dotted = origin.split(".")
                if dotted[0] == "time" and dotted[-1] in _TIME_FUNCS:
                    report(
                        "DDS301",
                        node.lineno,
                        f"wall-clock call {origin}(): simulated time "
                        "must come from env.now / env.timeout",
                    )
                elif (
                    "datetime" in dotted
                    and dotted[-1] in _DATETIME_FUNCS
                ):
                    report(
                        "DDS301",
                        node.lineno,
                        f"wall-clock call {origin}() inside sim-driven "
                        "code",
                    )
                elif (
                    dotted[0] == "random"
                    and len(dotted) > 1
                    and dotted[-1] not in _RANDOM_OK
                ):
                    report(
                        "DDS302",
                        node.lineno,
                        f"process-global randomness {origin}(): draw "
                        "from the harness-provided SeededRng instead",
                    )
                elif (dotted[0], dotted[-1]) in _ENTROPY:
                    report(
                        "DDS302",
                        node.lineno,
                        f"entropy source {origin}() makes runs "
                        "unreproducible",
                    )
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "hash"
                and func.id not in imports
            ):
                report(
                    "DDS303",
                    node.lineno,
                    "builtin hash() is PYTHONHASHSEED-salted: derived "
                    "values differ between runs (use hashlib.blake2b "
                    "or a splitmix64 mix)",
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_expr = node.iter
            is_set_literal = isinstance(iter_expr, ast.Set)
            is_set_call = (
                isinstance(iter_expr, ast.Call)
                and isinstance(iter_expr.func, ast.Name)
                and iter_expr.func.id in {"set", "frozenset"}
            )
            if is_set_literal or is_set_call:
                report(
                    "DDS303",
                    node.lineno,
                    "iterating a set: order depends on the per-process "
                    "hash salt (wrap in sorted())",
                )
    return findings
