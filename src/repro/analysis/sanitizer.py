"""Eraser-style lockset + happens-before race sanitizer (DDS401).

The static checks prove the *conventions*; this module checks the
*executions*.  It piggybacks on the same ``yield_point(label, key)``
hook the deterministic interleaving harness uses (PR 2): while
installed, every instrumented shared access becomes an *event* the
sanitizer classifies and checks, so stress tests detect candidate races
even on schedules where the race never actually fires — Eraser's core
advantage over schedule exploration.

Model
-----
* Labels starting with ``atomic.`` are **synchronisation operations**
  (the :class:`~repro.structures.atomics.AtomicCounter` ops).  Each is
  conservatively treated as an acquire+release RMW on its location:
  the accessing thread's vector clock joins the location's clock and
  publishes back.  This over-approximates the happens-before order a
  relaxed atomic would give (it can only *hide* races ordered by weaker
  operations, never invent one), which is the right polarity for a
  sanitizer that must stay silent on the shipped structures.
* Locks created through :class:`TrackedLock` maintain each thread's
  **lockset** and carry a vector clock (release publishes, acquire
  joins) — the happens-before edges of mutual exclusion.
* Every other label is a **data access** on its ``key``.  Labels
  registered in ``read_labels`` are reads; unknown labels default to
  writes (the conservative direction).  Labels in ``tolerant_labels``
  are deliberately racy reads whose safety the interleaving invariants
  prove (e.g. ``cuckoo.probe`` against the copy-on-write writer); the
  sanitizer skips them entirely.

Two accesses to the same key race (DDS401) when they come from
different threads, at least one is a write, their locksets are
disjoint, and neither happens-before the other.  Each report carries
both stack traces, captured at the two accesses involved.

The sanitizer serialises its own bookkeeping with an internal mutex, so
it works under free-running OS threads; verdicts depend only on the
lockset/vector-clock algebra, not on the observed interleaving.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.concurrency import hooks

__all__ = ["AccessEvent", "RaceReport", "TrackedLock", "LocksetSanitizer"]

#: Labels whose accesses are reads (everything else defaults to write).
DEFAULT_READ_LABELS = frozenset(
    {
        "cuckoo.probe",
        "ring.read_batch",
    }
)

#: Labels the sanitizer does not track (see DESIGN.md §"Static
#: analysis"), for two distinct reasons:
#:
#: * deliberately racy reads proven safe by the interleaving
#:   invariants — ``cuckoo.probe``: the single writer is copy-on-write
#:   / append-before-erase, so a concurrent probe always sees a
#:   consistent bucket (checked per schedule by
#:   CuckooVisibilityChecker);
#: * schedule points of mutex-guarded structures whose ``yield_point``
#:   sits deliberately *outside* the lock (so the interleaving
#:   scheduler never parks a lock holder) — the label marks a
#:   context-switch opportunity, not an unguarded access, and the
#:   mutation itself runs under a ``threading.Lock`` the sanitizer
#:   cannot see.
DEFAULT_TOLERANT_LABELS = frozenset(
    {
        "cuckoo.probe",
        "pool.alloc",
        "pool.reclaim",
        "pool.available",
        "lockring.enqueue",
        "lockring.consume",
    }
)

_VectorClock = Dict[int, int]


def _join(into: _VectorClock, other: _VectorClock) -> None:
    for tid, tick in other.items():
        if tick > into.get(tid, 0):
            into[tid] = tick


@dataclass
class AccessEvent:
    """One recorded data access."""

    thread_id: int
    thread_name: str
    label: str
    is_write: bool
    epoch: int  # accessing thread's own clock component at the access
    lockset: FrozenSet[int]
    stack: List[str] = field(default_factory=list)


@dataclass
class RaceReport:
    """A candidate race: two conflicting, unordered, unlocked accesses."""

    key: Hashable
    first: AccessEvent
    second: AccessEvent

    def format(self) -> str:
        lines = [
            f"DDS401 candidate race on {self.key!r}:",
            f"  [1] {self.first.label} "
            f"({'write' if self.first.is_write else 'read'}) "
            f"in thread {self.first.thread_name}:",
        ]
        lines += [f"      {frame}" for frame in self.first.stack]
        lines += [
            f"  [2] {self.second.label} "
            f"({'write' if self.second.is_write else 'read'}) "
            f"in thread {self.second.thread_name}:",
        ]
        lines += [f"      {frame}" for frame in self.second.stack]
        return "\n".join(lines)


class _ThreadState:
    __slots__ = ("clock", "held")

    def __init__(self, clock: _VectorClock) -> None:
        self.clock = clock
        self.held: Set[int] = set()


class TrackedLock:
    """A mutex whose acquire/release the sanitizer can see.

    Use in stress tests (and new shared components) wherever a plain
    ``threading.Lock`` would hide the locking discipline from the
    sanitizer.  Supports the context-manager protocol.
    """

    def __init__(
        self, sanitizer: "LocksetSanitizer", name: str = "lock"
    ) -> None:
        self._sanitizer = sanitizer
        self._lock = threading.Lock()
        self.name = name
        self.clock: _VectorClock = {}

    def acquire(self) -> None:
        self._lock.acquire()
        self._sanitizer._on_lock_acquired(self)

    def release(self) -> None:
        self._sanitizer._on_lock_released(self)
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class LocksetSanitizer:
    """Record yield-point events; report lockset/HB candidate races."""

    def __init__(
        self,
        read_labels: FrozenSet[str] = DEFAULT_READ_LABELS,
        tolerant_labels: FrozenSet[str] = DEFAULT_TOLERANT_LABELS,
        capture_stacks: bool = True,
        stack_depth: int = 6,
    ) -> None:
        self.read_labels = read_labels
        self.tolerant_labels = tolerant_labels
        self.capture_stacks = capture_stacks
        self.stack_depth = stack_depth
        self.reports: List[RaceReport] = []
        self._mutex = threading.Lock()
        self._threads: Dict[int, _ThreadState] = {}
        self._sync_clocks: Dict[Hashable, _VectorClock] = {}
        #: key -> thread id -> (last read, last write) events.
        self._accesses: Dict[
            Hashable,
            Dict[int, Tuple[Optional[AccessEvent], Optional[AccessEvent]]],
        ] = {}
        self._seen_pairs: Set[Tuple[Hashable, str, str]] = set()
        self._origin_clock: _VectorClock = {}
        self._previous_hook: Optional[hooks.SchedulerHook] = None
        self._installed = False

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> "LocksetSanitizer":
        """Start observing ``yield_point`` (chains any existing hook)."""
        if self._installed:
            raise RuntimeError("sanitizer already installed")
        origin = self._state_for(threading.get_ident())
        self._origin_clock = dict(origin.clock)
        self._previous_hook = hooks.get_scheduler_hook()
        hooks.set_scheduler_hook(self._hook)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            hooks.set_scheduler_hook(self._previous_hook)
            self._previous_hook = None
            self._installed = False

    def __enter__(self) -> "LocksetSanitizer":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    def lock(self, name: str = "lock") -> TrackedLock:
        """A fresh :class:`TrackedLock` registered with this sanitizer."""
        return TrackedLock(self, name)

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------
    def _hook(self, label: str, key: Hashable) -> None:
        try:
            if key is not None and label not in self.tolerant_labels:
                if label.startswith("atomic."):
                    self._on_sync(key)
                else:
                    self._on_data(label, key)
        finally:
            previous = self._previous_hook
            if previous is not None:
                previous(label, key)

    def _state_for(self, tid: int) -> _ThreadState:
        state = self._threads.get(tid)
        if state is None:
            # A thread first seen by the sanitizer starts ordered after
            # everything the installing thread had done at install time
            # (threads in our tests are created after installation).
            clock = dict(self._origin_clock)
            clock[tid] = clock.get(tid, 0) + 1
            state = _ThreadState(clock)
            self._threads[tid] = state
        return state

    def _on_sync(self, key: Hashable) -> None:
        """Acquire+release RMW on an atomic location."""
        with self._mutex:
            tid = threading.get_ident()
            state = self._state_for(tid)
            clock = self._sync_clocks.setdefault(key, {})
            _join(state.clock, clock)
            _join(clock, state.clock)
            state.clock[tid] = state.clock.get(tid, 0) + 1

    def _on_lock_acquired(self, lock: TrackedLock) -> None:
        with self._mutex:
            tid = threading.get_ident()
            state = self._state_for(tid)
            state.held.add(id(lock))
            _join(state.clock, lock.clock)

    def _on_lock_released(self, lock: TrackedLock) -> None:
        with self._mutex:
            tid = threading.get_ident()
            state = self._state_for(tid)
            _join(lock.clock, state.clock)
            state.clock[tid] = state.clock.get(tid, 0) + 1
            state.held.discard(id(lock))

    def _on_data(self, label: str, key: Hashable) -> None:
        with self._mutex:
            tid = threading.get_ident()
            state = self._state_for(tid)
            event = AccessEvent(
                thread_id=tid,
                thread_name=threading.current_thread().name,
                label=label,
                is_write=label not in self.read_labels,
                epoch=state.clock.get(tid, 0),
                lockset=frozenset(state.held),
                stack=self._stack() if self.capture_stacks else [],
            )
            per_thread = self._accesses.setdefault(key, {})
            for other_tid, (read, write) in per_thread.items():
                if other_tid == tid:
                    continue
                for other in (read, write):
                    if other is None:
                        continue
                    if not (event.is_write or other.is_write):
                        continue
                    if other.lockset & event.lockset:
                        continue
                    if other.epoch <= state.clock.get(other_tid, 0):
                        continue  # other happens-before this access
                    pair = (key, other.label, event.label)
                    if pair in self._seen_pairs:
                        continue
                    self._seen_pairs.add(pair)
                    self.reports.append(RaceReport(key, other, event))
            read, write = per_thread.get(tid, (None, None))
            if event.is_write:
                per_thread[tid] = (read, event)
            else:
                per_thread[tid] = (event, write)

    def _stack(self) -> List[str]:
        frames = traceback.extract_stack()
        # Drop the sanitizer's own frames from the top.  Exact-path
        # comparison: an endswith() match would also swallow frames
        # from files like test_sanitizer.py.
        trimmed = [
            frame
            for frame in frames
            if frame.filename != __file__
        ]
        summary = trimmed[-self.stack_depth:]
        return [
            f"{frame.filename}:{frame.lineno} in {frame.name}"
            for frame in summary
        ]
