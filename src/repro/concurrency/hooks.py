"""The schedule-point layer: ``yield_point()``.

Instrumented structures (:mod:`repro.structures.atomics`,
:mod:`repro.structures.rings`, :mod:`repro.structures.cuckoo`,
:mod:`repro.structures.response`) call ``yield_point(label, key)`` just
before each shared-state access.  In production nothing is registered and
the call is a single global-None check.  Under the interleaving scheduler,
threads it controls are suspended here until the scheduler hands them the
next step; threads it does not control (e.g. the pytest main thread
checking invariants between steps) pass straight through.

``label`` names the operation for traces ("cas", "cuckoo.bucket_set");
``key`` identifies the shared location touched (usually ``(id(obj),
field)``) and feeds the explorer's DPOR-lite independence pruning.  This
module has **no dependencies** on the rest of the package so the
structures can import it without cycles.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

__all__ = [
    "SchedulerHook",
    "yield_point",
    "set_scheduler_hook",
    "get_scheduler_hook",
]

#: Signature of a yield-point observer: ``(label, key) -> None``.
SchedulerHook = Callable[[str, Hashable], None]

#: When a scheduler is active, a callable ``(label, key) -> None`` that
#: suspends controlled threads.  None in production.
_hook: Optional[SchedulerHook] = None


def yield_point(label: str = "", key: Hashable = None) -> None:
    """A potential context-switch point in an instrumented structure."""
    hook = _hook
    if hook is not None:
        hook(label, key)


def set_scheduler_hook(hook: Optional[SchedulerHook]) -> None:
    """Install (or with None, remove) the active scheduler's hook."""
    global _hook
    _hook = hook


def get_scheduler_hook() -> Optional[SchedulerHook]:
    return _hook
