"""Runtime-checkable invariants for the DDS concurrent structures.

Each checker pairs with one structure and exposes ``check()`` — run after
every scheduler step, while all logical threads are suspended — plus
``finish()`` for end-of-schedule properties.  Tasks report *intent* to
the checker (e.g. a payload about to be enqueued) so the checker can
distinguish "not yet written" from "lost".

These are deliberately written against the structures' public surface
plus a few read-only peeks at private fields; they must never mutate the
structure under test (cuckoo lookups do bump read-side stats counters,
which the fixed table makes safe from any thread).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Hashable, List, Optional

from repro.structures.cuckoo import CuckooCacheTable
from repro.structures.response import ResponseBuffer
from repro.structures.rings import FarmRing, ProgressRing

__all__ = [
    "CuckooVisibilityChecker",
    "FarmRingChecker",
    "ProgressRingChecker",
    "ResponseBufferChecker",
]


class ProgressRingChecker:
    """§4.1 invariants: head <= progress <= tail, batches parse cleanly.

    * pointer ordering and the max-progress bound hold at every step;
    * pointers are monotone;
    * every consumed record is byte-identical to a record some producer
      set out to enqueue (no torn/partial records are ever returned);
    * at the end, consumed records == successfully enqueued records.
    """

    def __init__(self, ring: ProgressRing) -> None:
        self.ring = ring
        self.intended: Counter = Counter()
        self.enqueued: List[bytes] = []
        self.consumed: List[bytes] = []
        self._last = (0, 0, 0)

    # -- task-side reporting ------------------------------------------
    def note_intent(self, payload: bytes) -> None:
        """Producer is about to attempt try_enqueue(payload)."""
        self.intended[payload] += 1

    def note_enqueued(self, payload: bytes) -> None:
        self.enqueued.append(payload)

    def note_consumed(self, batch: List[bytes]) -> None:
        self.consumed.extend(batch)

    # -- invariant checks ---------------------------------------------
    def check(self, _record: Any = None) -> None:
        head, progress, tail = self.ring.pointers
        assert head <= progress <= tail, (
            f"pointer order violated: head={head} progress={progress} "
            f"tail={tail}"
        )
        assert tail - head <= self.ring.max_progress, (
            f"max_progress exceeded: tail-head={tail - head} > "
            f"{self.ring.max_progress}"
        )
        last = self._last
        assert (head, progress, tail) >= last, (
            f"pointer went backwards: {last} -> {(head, progress, tail)}"
        )
        self._last = (head, progress, tail)
        for payload in self.consumed:
            assert self.intended[payload] > 0, (
                f"consumed a record nobody enqueued (torn?): {payload!r}"
            )

    def finish(self) -> None:
        self.check()
        assert Counter(self.consumed) == Counter(self.enqueued), (
            "consumed records != enqueued records: "
            f"{Counter(self.consumed) - Counter(self.enqueued)} extra, "
            f"{Counter(self.enqueued) - Counter(self.consumed)} missing"
        )


class FarmRingChecker:
    """FaRM-ring invariants: slots are reused only after release."""

    def __init__(self, ring: FarmRing) -> None:
        self.ring = ring
        self.intended: Counter = Counter()
        self.enqueued: List[bytes] = []
        self.consumed: List[bytes] = []

    def note_intent(self, payload: bytes) -> None:
        self.intended[payload] += 1

    def note_enqueued(self, payload: bytes) -> None:
        self.enqueued.append(payload)

    def note_consumed(self, payload: Optional[bytes]) -> None:
        if payload is not None:
            self.consumed.append(payload)

    def check(self, _record: Any = None) -> None:
        ring = self.ring
        outstanding = ring._tail.load() - ring._released.load()
        assert 0 <= outstanding <= ring.slots, (
            f"slot accounting violated: tail-released={outstanding} "
            f"not in [0, {ring.slots}]"
        )
        flags = [flag.load() for flag in ring._flags]
        assert all(value in (0, 1) for value in flags), f"bad flag: {flags}"
        # Completed-but-unconsumed slots can never exceed reserved ones.
        assert sum(flags) <= outstanding, (
            f"{sum(flags)} completed slots > {outstanding} reserved — "
            "a slot was reused before release"
        )
        for payload in self.consumed:
            assert self.intended[payload] > 0, (
                f"consumed a payload nobody enqueued: {payload!r}"
            )

    def finish(self) -> None:
        self.check()
        assert Counter(self.consumed) == Counter(self.enqueued), (
            "messages lost or duplicated: consumed != enqueued"
        )


class ResponseBufferChecker:
    """§4.3 invariants: TailC <= TailB <= TailA, monotone, capacity-bounded."""

    def __init__(self, buffer: ResponseBuffer) -> None:
        self.buffer = buffer
        self._last = (0, 0, 0)

    def check(self, _record: Any = None) -> None:
        buffer = self.buffer
        buffer.check_invariants()
        tails = (
            buffer.tail_completed,
            buffer.tail_buffered,
            buffer.tail_allocated,
        )
        assert tails >= self._last, (
            f"a tail pointer went backwards: {self._last} -> {tails}"
        )
        self._last = tails
        # Spans still queued for DMA can never exceed the TailB-TailC gap
        # (the gap also covers batches taken but not yet marked delivered).
        queued = sum(r.size for r in buffer._buffered)
        assert queued <= buffer.deliverable_bytes, (
            f"buffered spans ({queued}B) exceed TailB-TailC gap "
            f"({buffer.deliverable_bytes}B)"
        )

    def finish(self) -> None:
        self.check()


class CuckooVisibilityChecker:
    """Table 2's reader guarantee, checked at every schedule point.

    A key that was inserted (insert() returned) and not deleted
    (delete() not yet called) must be visible to a lock-free reader at
    *every* schedule point, including mid-displacement.  The writer task
    maintains ``expected`` around its calls:

    * after ``insert(k, v)`` returns True -> ``note_inserted(k, v)``;
    * before calling ``delete(k)``       -> ``note_deleting(k)``.
    """

    def __init__(self, table: CuckooCacheTable) -> None:
        self.table = table
        self.expected: Dict[Hashable, Any] = {}

    def note_inserted(self, key: Hashable, value: Any) -> None:
        self.expected[key] = value

    def note_deleting(self, key: Hashable) -> None:
        self.expected.pop(key, None)

    def check(self, _record: Any = None) -> None:
        for key, value in self.expected.items():
            found = self.table.lookup(key, default=_MISSING)
            assert found is not _MISSING, (
                f"reader missed key {key!r}: inserted and not deleted, "
                "but invisible at this schedule point"
            )
            assert found == value, (
                f"reader saw stale value for {key!r}: {found!r} != {value!r}"
            )

    def finish(self) -> None:
        self.check()
        assert len(self.table) == len(self.expected), (
            f"table count {len(self.table)} != expected "
            f"{len(self.expected)}"
        )


_MISSING = object()
