"""Deterministic concurrency testing for the lock-free structures.

The DDS paper's core contributions are concurrent protocols — the
progress-pointer ring (§4.1), the TailA/B/C response buffer (§4.3) and the
single-writer/multi-reader cuckoo cache table (§6.1).  Wall-clock thread
stress tests cannot reliably reproduce narrow interleavings, so this
package provides a *virtual* scheduler that runs N logical threads
cooperatively and explores their interleavings deterministically:

* :mod:`repro.concurrency.hooks` — the ``yield_point()`` schedule-point
  layer.  Instrumented structures call it at every shared-state access; it
  is a no-op unless a scheduler is driving the calling thread, so
  production code pays one global read per call.
* :mod:`repro.concurrency.scheduler` — the cooperative scheduler plus the
  seeded-random and replay strategies.  Logical threads may be plain
  callables (gated OS threads, so yield points inside library code work)
  or generators (stepped directly).
* :mod:`repro.concurrency.explore` — schedule exploration: seeded-random
  sweeps and exhaustive-bounded DFS (preemption bound, DPOR-lite pruning
  of adjacent commuting steps), with seed-replay of failures.
* :mod:`repro.concurrency.invariants` — runtime-checkable invariants for
  ``ProgressRing``, ``FarmRing``, ``ResponseBuffer`` and
  ``CuckooCacheTable``.

See DESIGN.md §"Concurrency testing" for the replay workflow.
"""

from .hooks import yield_point
from .scheduler import (
    DeadlockError,
    GeneratorTask,
    InterleavingScheduler,
    RandomStrategy,
    ReplayStrategy,
    SchedulerError,
    TaskFailure,
    ThreadTask,
)
from .explore import (
    BoundedExplorer,
    ExplorationFailure,
    Scenario,
    explore_bounded,
    explore_random,
    replay_seed,
)

__all__ = [
    "BoundedExplorer",
    "DeadlockError",
    "ExplorationFailure",
    "GeneratorTask",
    "InterleavingScheduler",
    "RandomStrategy",
    "ReplayStrategy",
    "Scenario",
    "SchedulerError",
    "TaskFailure",
    "ThreadTask",
    "explore_bounded",
    "explore_random",
    "replay_seed",
    "yield_point",
]
