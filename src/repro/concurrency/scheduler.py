"""Cooperative virtual scheduler for deterministic interleaving tests.

The scheduler runs N logical threads one at a time and decides, at every
schedule point, which one advances next.  Because at most one logical
thread executes Python between two schedule points, a schedule is fully
determined by the sequence of choices the strategy makes — so any failure
can be replayed exactly from the strategy's seed (or recorded choice
list).

Two task flavours:

* :class:`ThreadTask` — wraps a plain callable in a *gated* OS thread.
  The thread only runs while the scheduler has handed it the token, and
  parks itself whenever instrumented library code reaches
  :func:`repro.concurrency.hooks.yield_point`.  This is what lets yield
  points buried inside ``CuckooCacheTable._place`` or
  ``AtomicCounter.compare_and_swap`` act as context switches without
  rewriting the structures as coroutines.
* :class:`GeneratorTask` — wraps a generator; each ``yield`` is a
  schedule point.  Useful for coarse-grained drivers and for testing the
  scheduler itself.

A *step* runs one task from its current park point to its next one (or to
completion).  The trace entry for a step records the access the task was
parked at — i.e. the access that step executes first — which is what the
explorer's DPOR-lite independence check reasons about.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Hashable, Iterator, List, Optional, Sequence, Tuple

from .hooks import set_scheduler_hook

__all__ = [
    "DeadlockError",
    "GeneratorTask",
    "InterleavingScheduler",
    "RandomStrategy",
    "ReplayStrategy",
    "SchedulerError",
    "StepRecord",
    "TaskFailure",
    "ThreadTask",
]

#: One executed step: (task index, task name, label, key) of the access
#: released by the step.  ``key`` is None when the access is unknown or
#: deliberately treated as conflicting with everything.
StepRecord = Tuple[int, str, str, Hashable]


class SchedulerError(Exception):
    """Base class for scheduler-detected problems."""


class DeadlockError(SchedulerError):
    """A task failed to reach its next schedule point in time.

    Almost always means a logical thread blocked on a real lock held by a
    *suspended* logical thread.  The instrumented structures only hold a
    lock across a yield point in the cuckoo writer path, so scenarios must
    not run two cuckoo writers against one table.
    """


class TaskFailure(SchedulerError):
    """An exception escaped a task; carries the schedule for replay."""

    def __init__(self, task_name: str, cause: BaseException, trace: List[StepRecord]):
        self.task_name = task_name
        self.cause = cause
        self.trace = trace
        super().__init__(
            f"task {task_name!r} failed after {len(trace)} steps: "
            f"{type(cause).__name__}: {cause}"
        )


class _TaskCancelled(BaseException):
    """Raised inside a gated thread to unwind it when a run is abandoned."""


#: Set by each gated thread on entry so the global yield hook can find the
#: task it should park, without any scheduler-side registry (which would
#: race with the task's very first yield point).
_current_task = threading.local()


class _TaskBase:
    """Common bookkeeping for logical threads."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.index = -1  # assigned by the scheduler
        self.done = False
        self.error: Optional[BaseException] = None
        # The schedule point the task is parked at (executed by its next
        # step).  "start" until the task first runs.
        self.parked_label: str = "start"
        self.parked_key: Hashable = None

    def step(self, timeout: float) -> None:
        raise NotImplementedError

    def cancel(self) -> None:  # pragma: no cover - overridden when needed
        pass


class GeneratorTask(_TaskBase):
    """A logical thread defined by a generator; each ``yield`` is a point.

    The generator may yield ``None``, a label string, or a
    ``(label, key)`` tuple describing the access it is about to perform.
    """

    def __init__(self, name: str, gen: Iterator[Any]) -> None:
        super().__init__(name)
        self._gen = gen

    def step(self, timeout: float) -> None:
        try:
            value = next(self._gen)
        except StopIteration:
            self.done = True
            return
        except Exception as exc:  # deliberate: reported via TaskFailure
            self.done = True
            self.error = exc
            return
        if isinstance(value, tuple) and len(value) == 2:
            self.parked_label, self.parked_key = value
        elif isinstance(value, str):
            self.parked_label, self.parked_key = value, None
        else:
            self.parked_label, self.parked_key = "yield", None

    def cancel(self) -> None:
        self._gen.close()
        self.done = True


class ThreadTask(_TaskBase):
    """A plain callable run on an OS thread gated by the scheduler.

    The thread executes only between ``step()`` handing it the token and
    the next ``yield_point()`` in instrumented code (or the callable
    returning).  All other logical threads are parked on their own
    semaphores meanwhile, so execution is single-threaded and
    deterministic regardless of GIL behaviour.
    """

    def __init__(self, name: str, fn: Callable[[], Any]) -> None:
        super().__init__(name)
        self._fn = fn
        self._resume = threading.Semaphore(0)
        self._parked = threading.Semaphore(0)
        self._cancelled = False
        self._thread = threading.Thread(target=self._body, name=name, daemon=True)
        self._started = False

    @property
    def ident(self) -> Optional[int]:
        return self._thread.ident

    def _body(self) -> None:
        _current_task.task = self
        self._resume.acquire()
        try:
            if not self._cancelled:
                self._fn()
        except _TaskCancelled:
            pass
        except BaseException as exc:  # deliberate: reported via TaskFailure
            self.error = exc
        finally:
            self.done = True
            self._parked.release()

    def park(self, label: str, key: Hashable) -> None:
        """Called (via the scheduler hook) from inside this task's thread."""
        if self._cancelled:
            raise _TaskCancelled()
        self.parked_label, self.parked_key = label, key
        self._parked.release()
        self._resume.acquire()
        if self._cancelled:
            raise _TaskCancelled()

    def step(self, timeout: float) -> None:
        if not self._started:
            self._started = True
            self._thread.start()
        self._resume.release()
        if not self._parked.acquire(timeout=timeout):
            raise DeadlockError(
                f"task {self.name!r} did not reach a schedule point within "
                f"{timeout}s — likely blocked on a lock held by a suspended "
                "task"
            )

    def cancel(self) -> None:
        if self._started and not self.done:
            self._cancelled = True
            self._resume.release()
            self._thread.join(timeout=1.0)
            self.done = True


class RandomStrategy:
    """Choose uniformly among runnable tasks with a private seeded RNG."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(
        self, runnable: Sequence[_TaskBase], trace: List[StepRecord]
    ) -> _TaskBase:
        return runnable[self._rng.randrange(len(runnable))]

    def describe(self) -> str:
        return f"RandomStrategy(seed={self.seed})"


class ReplayStrategy:
    """Follow a recorded list of task *indices*; then run first-runnable.

    Used by the bounded explorer: a schedule prefix is replayed exactly,
    after which the default policy (keep running the current task while it
    is runnable, else lowest index) extends the schedule.  The full choice
    list actually taken is recorded by the scheduler's trace.
    """

    def __init__(self, choices: Sequence[int]) -> None:
        self.choices = list(choices)
        self._cursor = 0
        self._last_index: Optional[int] = None

    def choose(
        self, runnable: Sequence[_TaskBase], trace: List[StepRecord]
    ) -> _TaskBase:
        if self._cursor < len(self.choices):
            wanted = self.choices[self._cursor]
            self._cursor += 1
            for task in runnable:
                if task.index == wanted:
                    self._last_index = wanted
                    return task
            raise SchedulerError(
                f"replay diverged: task index {wanted} not runnable"
            )
        # Default extension: stay on the current task when possible (this
        # makes preemption counting meaningful), else lowest index.
        if self._last_index is not None:
            for task in runnable:
                if task.index == self._last_index:
                    return task
        chosen = min(runnable, key=lambda t: t.index)
        self._last_index = chosen.index
        return chosen

    def describe(self) -> str:
        return f"ReplayStrategy(prefix={self.choices})"


class InterleavingScheduler:
    """Runs added tasks to completion under a strategy's choices."""

    def __init__(
        self,
        strategy: Any,
        step_limit: int = 20000,
        deadlock_timeout: float = 10.0,
    ) -> None:
        self.strategy = strategy
        self.step_limit = step_limit
        self.deadlock_timeout = deadlock_timeout
        self.tasks: List[_TaskBase] = []
        self.trace: List[StepRecord] = []

    # ------------------------------------------------------------------
    # task registration
    # ------------------------------------------------------------------
    def add(self, task: _TaskBase) -> _TaskBase:
        task.index = len(self.tasks)
        self.tasks.append(task)
        return task

    def spawn(self, fn: Callable[[], Any], name: Optional[str] = None) -> ThreadTask:
        return self.add(ThreadTask(name or f"task-{len(self.tasks)}", fn))

    def spawn_generator(
        self, gen: Iterator[Any], name: Optional[str] = None
    ) -> GeneratorTask:
        return self.add(GeneratorTask(name or f"task-{len(self.tasks)}", gen))

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    @staticmethod
    def _hook(label: str, key: Hashable) -> None:
        task = getattr(_current_task, "task", None)
        if task is not None:
            task.park(label, key)

    def run(
        self, on_step: Optional[Callable[[StepRecord], None]] = None
    ) -> List[StepRecord]:
        """Execute all tasks to completion; returns the step trace.

        ``on_step`` runs in the scheduler's own thread after every step,
        while every logical thread is parked — the place to check
        invariants that must hold at each schedule point.  Exceptions it
        raises abort the run and propagate wrapped in TaskFailure.
        """
        from . import hooks as _hooks

        previous_hook = _hooks.get_scheduler_hook()
        set_scheduler_hook(self._hook)
        try:
            steps = 0
            while True:
                runnable = [t for t in self.tasks if not t.done]
                if not runnable:
                    break
                if steps >= self.step_limit:
                    raise SchedulerError(
                        f"schedule exceeded {self.step_limit} steps "
                        "(livelock?)"
                    )
                task = self.strategy.choose(runnable, self.trace)
                record: StepRecord = (
                    task.index,
                    task.name,
                    task.parked_label,
                    task.parked_key,
                )
                task.step(self.deadlock_timeout)
                self.trace.append(record)
                steps += 1
                if task.error is not None:
                    raise TaskFailure(task.name, task.error, self.trace)
                if on_step is not None:
                    try:
                        on_step(record)
                    except Exception as exc:
                        raise TaskFailure(f"<on_step after {task.name}>", exc, self.trace)
            return self.trace
        finally:
            set_scheduler_hook(previous_hook)
            for task in self.tasks:
                task.cancel()
