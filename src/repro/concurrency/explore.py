"""Schedule exploration: seeded-random sweeps and bounded exhaustive DFS.

A :class:`Scenario` is a factory that builds a *fresh* structure plus its
logical threads for every schedule, so each explored interleaving starts
from identical state.  Two exploration strategies:

* :func:`explore_random` — N schedules driven by
  ``RandomStrategy(base_seed + i)``.  On a violation it raises
  :class:`ExplorationFailure` whose message contains the exact seed;
  :func:`replay_seed` reruns that single schedule deterministically.
* :func:`explore_bounded` / :class:`BoundedExplorer` — stateless DFS over
  scheduler choices in the style of CHESS: at every decision point of an
  executed schedule, each not-taken runnable task becomes a new schedule
  prefix to explore.  Two prunings keep the tree tractable:

  - **preemption bound** (default 3): a schedule may switch away from a
    still-runnable task at most ``preemption_bound`` times.  Most real
    concurrency bugs need very few preemptions (CHESS's empirical result),
    so a small bound finds them while cutting the space from exponential
    to polynomial.
  - **DPOR-lite**: a branch that would merely swap two *adjacent
    independent* accesses (different non-None location keys from
    ``yield_point``) is skipped, because the swapped order is reachable by
    branching one step later and is behaviourally identical.  The keys
    are structure-supplied approximations, so this is a heuristic
    reduction — the random sweep backstops it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

from .scheduler import (
    InterleavingScheduler,
    RandomStrategy,
    ReplayStrategy,
    SchedulerError,
    StepRecord,
)

__all__ = [
    "BoundedExplorer",
    "ExplorationFailure",
    "ExplorationStats",
    "Scenario",
    "explore_bounded",
    "explore_random",
    "replay_seed",
]

#: What Scenario.build returns: ([(name, callable_or_generator), ...],
#: on_step or None, on_done or None).
ScenarioRun = Tuple[
    List[Tuple[str, Any]],
    Optional[Callable[[StepRecord], None]],
    Optional[Callable[[], None]],
]


class Scenario:
    """A reproducible concurrency scenario.

    ``build()`` is invoked once per schedule and must return fresh state:
    ``(tasks, on_step, on_done)`` where ``tasks`` is a list of
    ``(name, body)`` pairs (``body`` a zero-arg callable for a gated
    thread, or a generator for a coarse-grained task), ``on_step`` an
    invariant checker run after every step with all tasks suspended, and
    ``on_done`` a final checker run when the schedule completes.  Either
    checker may be None; both signal violations by raising.
    """

    def __init__(self, name: str, build: Callable[[], ScenarioRun]) -> None:
        self.name = name
        self.build = build

    def _make_scheduler(self, strategy: Any, step_limit: int) -> Tuple[
        InterleavingScheduler,
        Optional[Callable[[StepRecord], None]],
        Optional[Callable[[], None]],
    ]:
        tasks, on_step, on_done = self.build()
        scheduler = InterleavingScheduler(strategy, step_limit=step_limit)
        for name, body in tasks:
            if hasattr(body, "__next__"):
                scheduler.spawn_generator(body, name)
            else:
                scheduler.spawn(body, name)
        return scheduler, on_step, on_done

    def run_once(self, strategy: Any, step_limit: int = 20000) -> List[StepRecord]:
        """Run a single schedule under ``strategy``; returns the trace."""
        scheduler, on_step, on_done = self._make_scheduler(strategy, step_limit)
        trace = scheduler.run(on_step=on_step)
        if on_done is not None:
            try:
                on_done()
            except Exception as exc:
                # Keep the schedule on the exception so failure reports
                # can show the interleaving that led to the end state.
                if not hasattr(exc, "trace"):
                    exc.trace = trace
                raise
        return trace


class ExplorationFailure(AssertionError):
    """An invariant violation (or crash) found on a specific schedule.

    Inherits AssertionError so pytest renders it as a test failure.  The
    ``replay`` attribute is everything needed to reproduce: a
    ``("seed", n)`` pair for random exploration or ``("prefix", [...])``
    for bounded exploration.
    """

    def __init__(
        self,
        scenario: str,
        replay: Tuple[str, Any],
        trace: List[StepRecord],
        cause: BaseException,
    ) -> None:
        self.scenario = scenario
        self.replay = replay
        self.trace = trace
        self.cause = cause
        kind, value = replay
        if kind == "seed":
            how = (
                f"replay_seed(scenario, {value}) or "
                f"RandomStrategy(seed={value})"
            )
        else:
            how = f"ReplayStrategy({value!r})"
        steps = " -> ".join(
            f"{name}@{label}" for (_i, name, label, _k) in trace[-12:]
        )
        super().__init__(
            f"scenario {scenario!r} violated an invariant "
            f"[{kind}={value}]: {type(cause).__name__}: {cause}\n"
            f"  replay with: {how}\n"
            f"  last steps: ...{steps}"
        )


@dataclass
class ExplorationStats:
    """What an exploration run covered."""

    schedules: int = 0
    steps: int = 0
    pruned_preemption: int = 0
    pruned_dpor: int = 0
    frontier_exhausted: bool = False

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.schedules} schedules / {self.steps} steps "
            f"(pruned: {self.pruned_preemption} preemption, "
            f"{self.pruned_dpor} dpor; "
            f"exhausted={self.frontier_exhausted})"
        )


# ----------------------------------------------------------------------
# seeded-random exploration
# ----------------------------------------------------------------------
def explore_random(
    scenario: Scenario,
    schedules: int = 1000,
    base_seed: int = 0,
    step_limit: int = 20000,
) -> ExplorationStats:
    """Run ``schedules`` random interleavings; raise on the first violation."""
    stats = ExplorationStats()
    for i in range(schedules):
        seed = base_seed + i
        try:
            trace = scenario.run_once(RandomStrategy(seed), step_limit)
        except (AssertionError, SchedulerError) as exc:
            trace = getattr(exc, "trace", [])
            raise ExplorationFailure(
                scenario.name, ("seed", seed), trace, exc
            ) from exc
        stats.schedules += 1
        stats.steps += len(trace)
    return stats


def replay_seed(
    scenario: Scenario, seed: int, step_limit: int = 20000
) -> List[StepRecord]:
    """Re-run the single schedule that ``RandomStrategy(seed)`` produces."""
    return scenario.run_once(RandomStrategy(seed), step_limit)


# ----------------------------------------------------------------------
# exhaustive-bounded exploration
# ----------------------------------------------------------------------
#: Per-decision record: (runnable task info, chosen index).  Runnable info
#: is a tuple of (index, parked_label, parked_key) for each runnable task.
_Decision = Tuple[Tuple[Tuple[int, str, Hashable], ...], int]


class _RecordingReplay(ReplayStrategy):
    """ReplayStrategy that records runnable sets + choices for branching."""

    def __init__(self, choices: Sequence[int]) -> None:
        super().__init__(choices)
        self.decisions: List[_Decision] = []

    def choose(self, runnable, trace):
        task = super().choose(runnable, trace)
        info = tuple(
            (t.index, t.parked_label, t.parked_key)
            for t in sorted(runnable, key=lambda t: t.index)
        )
        self.decisions.append((info, task.index))
        return task


def _preemptions(decisions: Sequence[_Decision], upto: int, alt: int) -> int:
    """Preemptions in decisions[:upto] + [alt at point upto]."""
    count = 0
    prev: Optional[int] = None
    for i in range(upto):
        runnable, chosen = decisions[i]
        if prev is not None and chosen != prev and any(
            idx == prev for idx, _l, _k in runnable
        ):
            count += 1
        prev = chosen
    if prev is not None and alt != prev and any(
        idx == prev for idx, _l, _k in decisions[upto][0]
    ):
        count += 1
    return count


def _independent(key_a: Hashable, key_b: Hashable) -> bool:
    """Accesses commute when they touch different known locations."""
    return key_a is not None and key_b is not None and key_a != key_b


class BoundedExplorer:
    """Stateless DFS over scheduler choices with bounded preemptions."""

    def __init__(
        self,
        scenario: Scenario,
        preemption_bound: int = 3,
        max_schedules: int = 2000,
        step_limit: int = 20000,
        use_dpor: bool = True,
    ) -> None:
        self.scenario = scenario
        self.preemption_bound = preemption_bound
        self.max_schedules = max_schedules
        self.step_limit = step_limit
        self.use_dpor = use_dpor

    def explore(self) -> ExplorationStats:
        stats = ExplorationStats()
        frontier: List[List[int]] = [[]]
        while frontier and stats.schedules < self.max_schedules:
            prefix = frontier.pop()
            strategy = _RecordingReplay(prefix)
            try:
                trace = self.scenario.run_once(strategy, self.step_limit)
            except (AssertionError, SchedulerError) as exc:
                taken = [chosen for _r, chosen in strategy.decisions]
                trace = getattr(exc, "trace", [])
                raise ExplorationFailure(
                    self.scenario.name, ("prefix", taken), trace, exc
                ) from exc
            stats.schedules += 1
            stats.steps += len(trace)
            decisions = strategy.decisions
            taken = [chosen for _r, chosen in decisions]
            # Branch in the free extension region (>= len(prefix)); earlier
            # alternatives were enqueued by the runs that discovered them.
            for point in range(len(prefix), len(decisions)):
                runnable, chosen = decisions[point]
                chosen_key = next(
                    (k for idx, _l, k in runnable if idx == chosen), None
                )
                for idx, _label, key in runnable:
                    if idx == chosen:
                        continue
                    if (
                        _preemptions(decisions, point, idx)
                        > self.preemption_bound
                    ):
                        stats.pruned_preemption += 1
                        continue
                    if self.use_dpor and _independent(chosen_key, key):
                        # Swapping two adjacent independent accesses yields
                        # an equivalent schedule reachable one point later.
                        stats.pruned_dpor += 1
                        continue
                    frontier.append(taken[:point] + [idx])
        stats.frontier_exhausted = not frontier
        return stats


def explore_bounded(
    scenario: Scenario,
    preemption_bound: int = 3,
    max_schedules: int = 2000,
    step_limit: int = 20000,
) -> ExplorationStats:
    """Exhaustive-bounded DFS; raises ExplorationFailure on a violation."""
    return BoundedExplorer(
        scenario,
        preemption_bound=preemption_bound,
        max_schedules=max_schedules,
        step_limit=step_limit,
    ).explore()
