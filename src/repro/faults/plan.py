"""Typed fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is a seed plus a tuple of typed fault events, each
scheduled at a simulation time.  Plans are frozen values: the same plan
attached to the same deployment replays the identical fault sequence,
which is what makes a chaos run a regression test rather than a dice
roll.  All randomness used *while* a fault window is open (which packets
drop, which operations spike) derives from the plan's seed through
labelled :class:`~repro.sim.rng.SeededRng` child streams.

The event vocabulary mirrors the failure domains of the paper's testbed:

* :class:`NicFault` — the wire between client and DPU misbehaves
  (drop / duplicate / reorder / corrupt) for a window.
* :class:`SsdErrorBurst` / :class:`SsdLatencySpike` — one shard's NVMe
  device returns media errors or stalls (§8's fault discussion).
* :class:`EngineCrash` — the offload engine on one DPU dies and restarts;
  the traffic director keeps running and falls back to the host.
* :class:`ShardKill` — a whole DPU dies: director, engine, and the
  in-DPU state are lost; recovery replays §4.3's metadata-segment
  recovery from raw disk and rejoins the shard map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..sim import SeededRng

__all__ = [
    "FaultEvent",
    "NicFault",
    "SsdErrorBurst",
    "SsdLatencySpike",
    "EngineCrash",
    "ShardKill",
    "FaultPlan",
    "FaultRecord",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base: one fault scheduled at simulation time ``at`` (seconds)."""

    at: float

    def describe(self) -> str:
        return type(self).__name__.lower()

    def _check(self) -> None:
        if self.at < 0:
            raise ValueError("fault time must be non-negative")

    def __post_init__(self) -> None:
        self._check()


@dataclass(frozen=True)
class NicFault(FaultEvent):
    """A lossy window on the client↔server wire.

    Rates are per-message probabilities drawn from the plan's seeded
    stream; ``corrupt`` models a payload that fails its checksum at the
    receiver and is therefore indistinguishable from a drop (but counted
    separately).  ``reorder_delay`` is how long a reordered delivery is
    held back.
    """

    duration: float = 0.0
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    reorder_delay: float = 20e-6

    def describe(self) -> str:
        knobs = ",".join(
            f"{name}={value:g}"
            for name, value in (
                ("drop", self.drop),
                ("dup", self.duplicate),
                ("reorder", self.reorder),
                ("corrupt", self.corrupt),
            )
            if value > 0
        )
        return f"nic[{knobs}]"

    def _check(self) -> None:
        super()._check()
        if self.duration <= 0:
            raise ValueError("NicFault needs a positive duration")
        for rate in (self.drop, self.duplicate, self.reorder, self.corrupt):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fault rates must be probabilities")


@dataclass(frozen=True)
class SsdErrorBurst(FaultEvent):
    """Force the next ``count`` operations on one shard's SSD to fail."""

    count: int = 1
    shard: int = 0

    def describe(self) -> str:
        return f"ssd-errors[n={self.count},shard={self.shard}]"

    def _check(self) -> None:
        super()._check()
        if self.count < 1:
            raise ValueError("SsdErrorBurst needs count >= 1")


@dataclass(frozen=True)
class SsdLatencySpike(FaultEvent):
    """Stall the next ``ops`` operations on one shard's SSD by ``extra``."""

    ops: int = 1
    extra: float = 1e-3
    shard: int = 0

    def describe(self) -> str:
        return f"ssd-spike[n={self.ops},extra={self.extra:g},shard={self.shard}]"

    def _check(self) -> None:
        super()._check()
        if self.ops < 1:
            raise ValueError("SsdLatencySpike needs ops >= 1")
        if self.extra <= 0:
            raise ValueError("SsdLatencySpike needs positive extra latency")


@dataclass(frozen=True)
class EngineCrash(FaultEvent):
    """Crash one shard's offload engine; restart it ``down_for`` later."""

    down_for: float = 1e-3
    shard: int = 0

    def describe(self) -> str:
        return f"engine-crash[shard={self.shard},down={self.down_for:g}]"

    def _check(self) -> None:
        super()._check()
        if self.down_for <= 0:
            raise ValueError("EngineCrash needs a positive down_for")


@dataclass(frozen=True)
class ShardKill(FaultEvent):
    """Kill a whole shard (director + engine); recover it ``down_for``
    later from its raw disk via metadata-segment recovery."""

    down_for: float = 1e-3
    shard: int = 0

    def describe(self) -> str:
        return f"shard-kill[shard={self.shard},down={self.down_for:g}]"

    def _check(self) -> None:
        super()._check()
        if self.down_for <= 0:
            raise ValueError("ShardKill needs a positive down_for")


@dataclass(frozen=True)
class FaultRecord:
    """One line of the deterministic fault log."""

    time: float
    kind: str
    detail: str

    def format(self) -> str:
        return f"[{self.time * 1e6:10.2f}us] {self.kind:18s} {self.detail}"


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus a time-ordered tuple of fault events."""

    seed: int = 0
    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda event: (event.at, event.describe()))
        )
        object.__setattr__(self, "events", ordered)

    def rng(self, label: str) -> SeededRng:
        """An independent seeded stream for one fault window."""
        return SeededRng(f"faultplan:{self.seed}:{label}")

    def __len__(self) -> int:
        return len(self.events)
