"""Deterministic chaos layer: fault plans, injection, durability audit.

Quickstart::

    from repro.faults import FaultPlan, ShardKill, FaultInjector

    plan = FaultPlan(seed=7, events=(
        ShardKill(at=10e-3, down_for=8e-3, shard=2),
    ))
    FaultInjector(env, server, plan).arm()
    # ... run the workload; then audit with DurabilityChecker.check()

Every fault draws its randomness from the plan's seed, so a chaos run
is replayable: same seed, same fault log, same final state.
"""

from .durability import (
    DurabilityChecker,
    DurabilityReport,
    InvariantViolation,
    ReplicationInvariantChecker,
)
from .injector import FaultInjector
from .netem import NetworkChaos
from .overload import OverloadInvariantChecker, OverloadReport
from .plan import (
    EngineCrash,
    FaultEvent,
    FaultPlan,
    FaultRecord,
    NicFault,
    ShardKill,
    SsdErrorBurst,
    SsdLatencySpike,
)

__all__ = [
    "DurabilityChecker",
    "DurabilityReport",
    "EngineCrash",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "InvariantViolation",
    "NetworkChaos",
    "NicFault",
    "OverloadInvariantChecker",
    "OverloadReport",
    "ReplicationInvariantChecker",
    "ShardKill",
    "SsdErrorBurst",
    "SsdLatencySpike",
]
