"""Runtime overload invariants OL1–OL4 (DESIGN §15).

Following *Specification and Runtime Checking of Derecho* — the same
posture as RI1–RI5 in :mod:`repro.faults.durability` — overload safety
is expressed as invariants checked *while the system is overloaded*,
not asserted after the fact from aggregate counters:

* **OL1 — goodput floor.**  While a declared overload window is open
  (offered load ≥ 2× capacity, a flash crowd, a flood), acked goodput
  sampled per interval must stay above a floor derived from the
  measured peak (the acceptance bar: ≥ 80% of peak at 2× capacity).
  Goodput collapsing under overload *is* metastability; this invariant
  is the tripwire.
* **OL2 — tenant SLO.**  A flooding tenant must not push a compliant
  tenant's p99 latency past its declared SLO.  Checked over each
  compliant tenant's acks (flooders are exempt — they asked for it).
* **OL3 — bounded queues.**  Every QoS gate enqueue reports the
  tenant's queue depth; depth must never exceed the configured
  capacity.  Checked synchronously on the hot path.
* **OL4 — no acked request shed.**  A shed request whose id the dedup
  table has already *completed* would throttle an acked write — the
  client would believe an applied write was refused.  Checked
  synchronously at every shed.

The checker is both a **client observer** (``on_issue`` / ``on_ack`` /
``on_give_up``, the protocol every chaos client speaks) and the **QoS
gate observer** (``on_enqueue`` / ``on_shed`` / ``on_dispatch``).
Progress counters (``acks_seen``, ``sheds_seen``, ...) let a scenario
prove the checker actually witnessed overload — a run with zero
violations and zero sheds proves nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..core.messages import IoRequest, IoResponse
from ..sim import Environment
from .durability import InvariantViolation

__all__ = ["OverloadReport", "OverloadInvariantChecker"]


def _percentile(ordered: List[float], p: float) -> float:
    """p-th percentile of an already-sorted latency list."""
    if not ordered:
        return 0.0
    index = min(
        len(ordered) - 1, max(0, int(round(p / 100 * len(ordered))) - 1)
    )
    return ordered[index]


@dataclass
class OverloadReport:
    """Outcome of an overload run: empty ``violations`` == pass."""

    violations: List[InvariantViolation] = field(default_factory=list)
    acks_seen: int = 0
    sheds_seen: int = 0
    enqueues_seen: int = 0
    dispatches_seen: int = 0
    goodput_samples: int = 0
    #: tenant -> measured p99 (seconds) over the run, SLO-audited
    #: tenants only.
    tenant_p99: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        if self.violations:
            lines = "\n".join(v.format() for v in self.violations[:20])
            raise AssertionError(
                f"{len(self.violations)} overload invariant "
                f"violation(s):\n{lines}"
            )


class OverloadInvariantChecker:
    """Live OL1–OL4 checking during overload and chaos runs.

    Wire it as the client observer *and* pass it to
    :meth:`~repro.topology.sharding.ShardedOffloadServer.enable_qos`;
    give it the deployment's dedup table via :meth:`attach_dedup` so
    OL4 has ground truth.  OL1 windows are opened around the overload
    phases of a scenario with :meth:`begin_overload_window` /
    :meth:`end_overload_window`.
    """

    def __init__(
        self,
        env: Environment,
        sample_interval: float = 1e-3,
        tenant_of=None,
    ) -> None:
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.env = env
        self.sample_interval = sample_interval
        #: request -> tenant name; default derives from the request tag
        #: (the workload engine stamps each request with its tenant
        #: index via ``tag``).
        self._tenant_of = tenant_of or (lambda request: str(request.tag))
        self.violations: List[InvariantViolation] = []
        # progress counters — a clean report must also prove coverage
        self.acks_seen = 0
        self.sheds_seen = 0
        self.enqueues_seen = 0
        self.dispatches_seen = 0
        self.goodput_samples = 0
        self._dedup = None
        #: tenant -> declared p99 SLO (seconds); flooders are exempt.
        self._slos: Dict[str, float] = {}
        self._exempt: Dict[str, bool] = {}
        #: tenant -> first-issue time per request id (latency ground
        #: truth measured from *first* issue: what the user felt).
        self._first_issue: Dict[int, float] = {}
        self._issue_tenant: Dict[int, str] = {}
        self._latencies: Dict[str, List[float]] = {}
        self._acks_in_window = 0
        self._window_floor: Optional[float] = None
        self._window_process = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_dedup(self, dedup) -> None:
        """Give OL4 the deployment's dedup table (ground truth for
        "was this id already acked server-side")."""
        self._dedup = dedup

    def set_slo(
        self, tenant: str, p99: float, exempt: bool = False
    ) -> None:
        """Declare a tenant's p99 SLO; ``exempt`` marks a flooder
        (tracked but never held to the SLO)."""
        if p99 <= 0:
            raise ValueError("p99 SLO must be positive")
        self._slos[tenant] = p99
        self._exempt[tenant] = exempt

    def _flag(self, rule: str, detail: str) -> None:
        self.violations.append(
            InvariantViolation(self.env.now, rule, detail)
        )

    # ------------------------------------------------------------------
    # client observer protocol
    # ------------------------------------------------------------------
    def on_issue(self, request: IoRequest) -> None:
        if request.request_id not in self._first_issue:
            self._first_issue[request.request_id] = self.env.now
            self._issue_tenant[request.request_id] = self._tenant_of(
                request
            )

    def on_ack(self, request: IoRequest, response: IoResponse) -> None:
        self.acks_seen += 1
        self._acks_in_window += 1
        issued = self._first_issue.pop(request.request_id, None)
        tenant = self._issue_tenant.pop(
            request.request_id, self._tenant_of(request)
        )
        if issued is not None:
            self._latencies.setdefault(tenant, []).append(
                self.env.now - issued
            )

    def on_give_up(self, request: IoRequest) -> None:
        self._first_issue.pop(request.request_id, None)
        self._issue_tenant.pop(request.request_id, None)

    # ------------------------------------------------------------------
    # QoS gate observer protocol (synchronous, hot path)
    # ------------------------------------------------------------------
    def on_enqueue(self, tenant: str, depth: int, capacity: int) -> None:
        self.enqueues_seen += 1
        if depth > capacity:
            # OL3: the bounded queue must actually be bounded.
            self._flag(
                "OL3",
                f"tenant {tenant} queue depth {depth} exceeds "
                f"capacity {capacity}",
            )

    def on_shed(
        self, request: IoRequest, tenant: str, reason: str
    ) -> None:
        self.sheds_seen += 1
        if self._dedup is not None:
            if self._dedup.cached(request.request_id) is not None:
                # OL4: this id already completed server-side — the shed
                # throttles a request the client is entitled to see
                # acked (the gate must replay, not refuse).
                self._flag(
                    "OL4",
                    f"request {request.request_id} (tenant {tenant}) "
                    f"shed ({reason}) after completion",
                )

    def on_dispatch(self, tenant: str, sojourn: float) -> None:
        self.dispatches_seen += 1

    # ------------------------------------------------------------------
    # OL1: live goodput floor during a declared overload window
    # ------------------------------------------------------------------
    def begin_overload_window(self, min_goodput_iops: float) -> None:
        """Open an overload window: from now until
        :meth:`end_overload_window`, acked goodput per sample interval
        must stay >= ``min_goodput_iops``."""
        if min_goodput_iops <= 0:
            raise ValueError("min_goodput_iops must be positive")
        if self._window_floor is not None:
            raise RuntimeError("an overload window is already open")
        self._window_floor = min_goodput_iops
        self._acks_in_window = 0
        self._window_process = self.env.process(self._sample_goodput())

    def end_overload_window(self) -> None:
        """Close the current overload window (stops OL1 sampling)."""
        self._window_floor = None

    def _sample_goodput(self) -> Generator:
        # The first interval is a grace period: the window typically
        # opens at the instant the flood starts, before any flood-era
        # ack could exist.
        while self._window_floor is not None:
            self._acks_in_window = 0
            floor = self._window_floor
            yield self.env.timeout(self.sample_interval)
            if self._window_floor is None:
                return
            self.goodput_samples += 1
            goodput = self._acks_in_window / self.sample_interval
            if goodput < floor:
                # OL1: goodput under overload fell below the declared
                # floor — the metastability tripwire.
                self._flag(
                    "OL1",
                    f"goodput {goodput:.0f} IOPS below floor "
                    f"{floor:.0f} IOPS during overload window",
                )

    # ------------------------------------------------------------------
    # audit roll-up
    # ------------------------------------------------------------------
    def check(self) -> OverloadReport:
        """Fold OL2 over collected latencies and return the report.

        Call once the run is drained; the synchronous rules (OL1/OL3/
        OL4) have already contributed any violations as they happened.
        """
        report = OverloadReport(
            violations=list(self.violations),
            acks_seen=self.acks_seen,
            sheds_seen=self.sheds_seen,
            enqueues_seen=self.enqueues_seen,
            dispatches_seen=self.dispatches_seen,
            goodput_samples=self.goodput_samples,
        )
        for tenant in sorted(self._slos):
            slo = self._slos[tenant]
            latencies = sorted(self._latencies.get(tenant, []))
            p99 = _percentile(latencies, 99)
            report.tenant_p99[tenant] = p99
            if self._exempt.get(tenant, False):
                continue
            if latencies and p99 > slo:
                report.violations.append(
                    InvariantViolation(
                        self.env.now,
                        "OL2",
                        f"tenant {tenant} p99 {p99 * 1e6:.0f}us exceeds "
                        f"SLO {slo * 1e6:.0f}us",
                    )
                )
        return report
