"""The fault injector: schedules a plan's events on the sim clock.

``FaultInjector(env, server, plan).arm()`` spawns one named process per
fault event; recoveries run as their own named processes, so an
:class:`~repro.sim.trace.EventLog` attached to the environment shows
``fault:...`` and ``recover:...`` entries at exactly the times the plan
dictates.  Every application and revert is also appended to
``fault_log`` — a list of :class:`~repro.faults.plan.FaultRecord` —
whose formatted lines are byte-identical across same-seed runs (the
golden artifact chaos tests compare).

Fault targets are resolved against the server's public wiring:

* NIC windows install a :class:`~repro.faults.netem.NetworkChaos` on the
  server's ``submit`` boundary;
* SSD events reach the owning shard's :class:`~repro.hardware.ssd.
  NvmeDevice` through its filesystem's bdev;
* engine crashes call :meth:`~repro.core.offload_engine.OffloadEngine.
  crash` / ``restart``;
* shard kills call the sharded server's ``kill_shard`` /
  ``recover_shard`` (the latter replays §4.3 metadata recovery from the
  raw disk).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from ..core.offload_engine import OffloadEngine
from ..hardware.ssd import NvmeDevice
from ..sim import Environment
from ..storage.filesystem import DdsFileSystem
from .netem import NetworkChaos
from .plan import (
    EngineCrash,
    FaultEvent,
    FaultPlan,
    FaultRecord,
    NicFault,
    ShardKill,
    SsdErrorBurst,
    SsdLatencySpike,
)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a :class:`FaultPlan` to a running deployment."""

    def __init__(
        self,
        env: Environment,
        server,
        plan: FaultPlan,
        filesystems: Optional[Sequence[DdsFileSystem]] = None,
    ) -> None:
        self.env = env
        self.server = server
        self.plan = plan
        self._filesystems = (
            list(filesystems) if filesystems is not None else None
        )
        self.fault_log: List[FaultRecord] = []
        self.chaos: Optional[NetworkChaos] = None
        self._armed = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Schedule every event of the plan; idempotent per injector."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for index, event in enumerate(self.plan.events):
            self._spawn(
                self._run_event(index, event), f"fault:{event.describe()}"
            )
        return self

    def _spawn(self, generator: Generator, name: str) -> None:
        generator.__name__ = name  # type: ignore[attr-defined]
        self.env.process(generator)

    def _log(self, kind: str, detail: str) -> None:
        self.fault_log.append(FaultRecord(self.env.now, kind, detail))

    def fault_log_lines(self) -> List[str]:
        """The deterministic, formatted fault log (golden artifact)."""
        return [record.format() for record in self.fault_log]

    # ------------------------------------------------------------------
    # target resolution
    # ------------------------------------------------------------------
    def _filesystem(self, shard: int) -> DdsFileSystem:
        if self._filesystems is not None:
            return self._filesystems[shard]
        filesystems = getattr(self.server, "filesystems", None)
        if filesystems is not None:
            return filesystems[shard]
        file_service = getattr(self.server, "file_service", None)
        if file_service is not None:
            return file_service.filesystem
        backend = getattr(self.server, "backend", None)
        if backend is not None:
            return backend.filesystem
        raise TypeError(
            f"cannot resolve shard {shard}'s filesystem on "
            f"{type(self.server).__name__}; pass filesystems= explicitly"
        )

    def _device(self, shard: int) -> NvmeDevice:
        return self._filesystem(shard).bdev.device

    def _engine(self, shard: int) -> OffloadEngine:
        shards = getattr(self.server, "shards", None)
        if shards is not None:
            return shards[shard].engine
        engine = getattr(self.server, "engine", None)
        if engine is None:
            raise TypeError(
                f"{type(self.server).__name__} has no offload engine"
            )
        return engine

    # ------------------------------------------------------------------
    # event execution
    # ------------------------------------------------------------------
    def _run_event(self, index: int, event: FaultEvent) -> Generator:
        yield self.env.timeout(event.at)
        if isinstance(event, NicFault):
            yield from self._run_nic(index, event)
        elif isinstance(event, SsdErrorBurst):
            self._device(event.shard).inject_errors(event.count)
            self._log("ssd-error-burst", event.describe())
        elif isinstance(event, SsdLatencySpike):
            self._device(event.shard).inject_latency_spikes(
                event.ops, event.extra
            )
            self._log("ssd-latency-spike", event.describe())
        elif isinstance(event, EngineCrash):
            self._run_engine_crash(event)
        elif isinstance(event, ShardKill):
            self._run_shard_kill(event)
        else:  # pragma: no cover - plan validates its vocabulary
            raise TypeError(f"unknown fault event {event!r}")

    def _run_nic(self, index: int, event: NicFault) -> Generator:
        chaos = NetworkChaos(
            self.env,
            self.plan.rng(f"nic:{index}"),
            drop=event.drop,
            duplicate=event.duplicate,
            reorder=event.reorder,
            corrupt=event.corrupt,
            reorder_delay=event.reorder_delay,
        )
        self.chaos = chaos
        self.server.network_chaos = chaos
        self._log("nic-fault", event.describe())
        yield self.env.timeout(event.duration)
        if self.server.network_chaos is chaos:
            self.server.network_chaos = None
        self._log(
            "nic-clear",
            f"dropped={chaos.dropped} corrupted={chaos.corrupted} "
            f"duplicated={chaos.duplicated} reordered={chaos.reordered}",
        )

    def _run_engine_crash(self, event: EngineCrash) -> None:
        engine = self._engine(event.shard)
        dropped = engine.crash()
        self._log(
            "engine-crash",
            f"{event.describe()} dropped_contexts={dropped}",
        )

        def restart() -> Generator:
            yield self.env.timeout(event.down_for)
            engine.restart()
            self._log("engine-restart", f"shard={event.shard}")

        self._spawn(restart(), f"recover:engine:shard{event.shard}")

    def _run_shard_kill(self, event: ShardKill) -> None:
        kill = getattr(self.server, "kill_shard", None)
        if kill is None:
            raise TypeError(
                f"{type(self.server).__name__} cannot kill shards"
            )
        kill(event.shard)
        self._log("shard-kill", event.describe())

        def recover() -> Generator:
            yield self.env.timeout(event.down_for)
            started = self.env.now
            yield from self.server.recover_shard(event.shard)
            self._log(
                "shard-recover",
                f"shard={event.shard} "
                f"recovery_time={(self.env.now - started) * 1e6:.2f}us",
            )

        self._spawn(recover(), f"recover:shard{event.shard}")
