"""Network chaos: seeded per-message drop / duplicate / reorder / corrupt.

:class:`NetworkChaos` sits at the server's ``submit`` boundary — the
point where a client message crosses the wire into the NIC, and where
responses cross back.  Each crossing draws one uniform variate from the
chaos stream and classifies the message:

* ``deliver`` — untouched (the overwhelmingly common case);
* ``drop`` — the message never arrives; the client's retry timer is the
  only recovery path;
* ``corrupt`` — the payload fails its checksum at the receiver, which
  discards it: observationally a drop, but counted separately;
* ``duplicate`` — the message is delivered twice (a retransmit racing
  its original), exercising request-id dedup at the server and response
  dedup at the client;
* ``reorder`` — delivery is held back ``reorder_delay`` seconds, landing
  behind younger messages.

The classification order (drop, corrupt, duplicate, reorder) is fixed so
a plan's rates map onto disjoint probability bands of the single draw —
one draw per crossing keeps the stream alignment independent of which
faults are enabled.
"""

from __future__ import annotations

from typing import Callable, Generator

from ..sim import Environment, SeededRng

__all__ = ["NetworkChaos"]


class NetworkChaos:
    """Seeded fault gate for one direction-pair of a server's wire."""

    def __init__(
        self,
        env: Environment,
        rng: SeededRng,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        reorder_delay: float = 20e-6,
    ) -> None:
        for rate in (drop, duplicate, reorder, corrupt):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be probabilities")
        if drop + duplicate + reorder + corrupt > 1.0:
            raise ValueError("rates must sum to at most 1")
        self.env = env
        self.rng = rng
        self.drop = drop
        self.duplicate = duplicate
        self.reorder = reorder
        self.corrupt = corrupt
        self.reorder_delay = reorder_delay
        self.dropped = 0
        self.corrupted = 0
        self.duplicated = 0
        self.reordered = 0
        self.delivered = 0

    # ------------------------------------------------------------------
    # classification: one uniform draw per wire crossing
    # ------------------------------------------------------------------
    def classify(self) -> str:
        draw = self.rng.random()
        edge = self.drop
        if draw < edge:
            self.dropped += 1
            return "drop"
        edge += self.corrupt
        if draw < edge:
            self.corrupted += 1
            return "corrupt"
        edge += self.duplicate
        if draw < edge:
            self.duplicated += 1
            return "duplicate"
        edge += self.reorder
        if draw < edge:
            self.reordered += 1
            return "reorder"
        self.delivered += 1
        return "deliver"

    # ------------------------------------------------------------------
    # request direction: the server decides how to spawn its ingress
    # ------------------------------------------------------------------
    def ingress_copies(self) -> int:
        """How many copies of an arriving message to process.

        0 = dropped (or corrupted: the NIC discards a bad checksum),
        1 = normal, 2 = duplicated.  Reordered requests are handled by
        :meth:`ingress_delay` below.
        """
        action = self.classify()
        if action in ("drop", "corrupt"):
            return 0
        if action == "duplicate":
            return 2
        if action == "reorder":
            return -1  # sentinel: deliver once, after reorder_delay
        return 1

    def delayed(self, start: Callable[[], None]) -> Generator:
        """Named process body that delivers a held-back message."""
        yield self.env.timeout(self.reorder_delay)
        start()

    # ------------------------------------------------------------------
    # response direction: wraps the per-response delivery callback
    # ------------------------------------------------------------------
    def wrap_response(self, deliver: Callable) -> Callable:
        """Gate a response-delivery callback through the chaos stream."""

        def gated(response) -> None:
            action = self.classify()
            if action in ("drop", "corrupt"):
                return
            if action == "duplicate":
                deliver(response)
                deliver(response)
                return
            if action == "reorder":
                generator = self.delayed(lambda: deliver(response))
                generator.__name__ = "chaos:reorder-response"
                self.env.process(generator)
                return
            deliver(response)

        return gated
