"""Durability invariants: post-run audit plus a runtime protocol checker.

:class:`DurabilityChecker` rides the client as an observer (``on_issue``
/ ``on_ack``) and, once the simulation drains, audits the final on-disk
state against the acknowledgement history:

* **No acked write lost** — for every WRITE the client saw acknowledged,
  the bytes at (file, offset) on the owning shard's recovered filesystem
  must equal that write's payload.  When several acked writes hit the
  same offset, the latest acknowledgement wins; writes that were issued
  later but never acknowledged are also admissible final contents (they
  may legitimately have been applied without their response surviving).
* **No double-apply** — the deployment's :class:`~repro.core.dedup.
  RequestDedup` history must show zero second applications of the same
  write id.

:class:`ReplicationInvariantChecker` extends the audit into a
Derecho-style *runtime* checker (PAPERS.md: *Specification and Runtime
Checking of Derecho*): it receives a synchronous callback at every
replication protocol step and verifies the invariants while chaos runs,
not post-hoc —

* **RI1 append well-formedness** — log records are dense (lsn == index),
  carry the group's current epoch, and are appended by the acting
  leader.
* **RI2 log-prefix agreement** — each member's applied watermark is
  monotone and bounded by the log, and the bytes a member applied match
  the log record (unless a later record legitimately overwrote the
  range).
* **RI3 no-ack-before-quorum** — a write ack is only released once every
  live member of its group applied it (both members when both are
  alive; the survivor alone when one is dark).
* **RI4 handoff determinism** — leadership changes go to the alive
  primary-first candidate and bump the epoch strictly monotonically.
* **RI5 catch-up before rejoin** — a recovering member's watermark
  equals the log length at the instant it rejoins.

Chaos scenarios that want the strict per-offset check (one writer per
offset) get it for free by issuing unique offsets per request id, which
is what ``benchmarks/test_chaos_recovery.py`` does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.dedup import RequestDedup
from ..core.messages import IoRequest, IoResponse, OpCode

__all__ = [
    "DurabilityChecker",
    "DurabilityReport",
    "InvariantViolation",
    "ReplicationInvariantChecker",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One runtime protocol invariant breach, stamped with sim time."""

    time: float
    rule: str  # "RI1" .. "RI5"
    detail: str

    def format(self) -> str:
        return f"[{self.time * 1e6:.2f}us] {self.rule}: {self.detail}"


@dataclass
class DurabilityReport:
    """Audit outcome: empty ``lost_writes`` and zero doubles == pass.

    Runs under a :class:`ReplicationInvariantChecker` additionally fold
    the runtime protocol violations into ``ok``.
    """

    verified_writes: int = 0
    acked_reads: int = 0
    double_applies: int = 0
    lost_writes: List[str] = field(default_factory=list)
    invariant_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.lost_writes
            and self.double_applies == 0
            and not self.invariant_violations
        )

    def assert_ok(self) -> None:
        if not self.ok:
            problems = list(self.lost_writes)
            if self.double_applies:
                problems.append(
                    f"{self.double_applies} write(s) applied twice"
                )
            problems.extend(self.invariant_violations)
            raise AssertionError(
                "durability violated:\n" + "\n".join(problems)
            )


class DurabilityChecker:
    """Client observer + post-run auditor for chaos scenarios."""

    def __init__(self) -> None:
        self._issue_seq = 0
        #: Monotonic ack stamp.  Deliberately NOT ``len(acked_writes)``:
        #: a duplicated delivery of an already-recorded ack (a NIC dup
        #: window, or a dedup replay racing the original) would reuse a
        #: stale length and could tie — or even *exceed* — a later
        #: write's stamp, misordering the latest-write-wins audit.
        self._ack_seq = 0
        #: request_id -> (request, issue order)
        self.issued: Dict[int, Tuple[IoRequest, int]] = {}
        #: request_id -> (request, ack order)
        self.acked_writes: Dict[int, Tuple[IoRequest, int]] = {}
        self.acked_reads = 0
        self.failed_requests = 0
        #: Write acks observed again for an already-recorded request id.
        self.duplicate_acks = 0

    # ------------------------------------------------------------------
    # client observer protocol
    # ------------------------------------------------------------------
    def on_issue(self, request: IoRequest) -> None:
        if request.request_id not in self.issued:
            self.issued[request.request_id] = (request, self._issue_seq)
            self._issue_seq += 1

    def on_ack(self, request: IoRequest, response: IoResponse) -> None:
        if not response.ok:
            self.failed_requests += 1
            return
        if request.op is OpCode.WRITE:
            if request.request_id in self.acked_writes:
                # First ack wins: a duplicate delivery carries no new
                # ordering information, and restamping it would wrongly
                # demand stale content at its offset.
                self.duplicate_acks += 1
                return
            self.acked_writes[request.request_id] = (
                request,
                self._ack_seq,
            )
            self._ack_seq += 1
        else:
            self.acked_reads += 1

    def on_give_up(self, request: IoRequest) -> None:
        self.failed_requests += 1

    # ------------------------------------------------------------------
    # post-run audit
    # ------------------------------------------------------------------
    def check(
        self, server, dedup: Optional[RequestDedup] = None
    ) -> DurabilityReport:
        """Audit final disk state against the acknowledgement history.

        ``server`` needs per-file filesystem resolution: a sharded server
        exposes ``shard_map`` + ``filesystems``; single-backend servers
        expose ``file_service.filesystem`` (or ``backend.filesystem``).
        """
        report = DurabilityReport(acked_reads=self.acked_reads)
        if dedup is not None:
            report.double_applies = dedup.double_applies
        # Latest acked write per (file, offset) is the required content.
        latest: Dict[Tuple[int, int], Tuple[IoRequest, int]] = {}
        for request, ack_seq in self.acked_writes.values():
            key = (request.file_id, request.offset)
            if key not in latest or ack_seq > latest[key][1]:
                latest[key] = (request, ack_seq)
        for (file_id, offset), (request, _seq) in sorted(latest.items()):
            filesystem = self._filesystem_for(server, file_id)
            found = filesystem.read_sync(file_id, offset, request.size)
            if found == request.payload:
                report.verified_writes += 1
                continue
            # An unacked overwrite of the same range may have been
            # applied without its response surviving the run.
            admissible = [
                issued.payload
                for issued, _ in self.issued.values()
                if issued.op is OpCode.WRITE
                and issued.file_id == file_id
                and issued.offset == offset
                and issued.request_id not in self.acked_writes
            ]
            if found in admissible:
                report.verified_writes += 1
                continue
            report.lost_writes.append(
                f"file {file_id} offset {offset}: acked write "
                f"{request.request_id} not found on disk"
            )
        return report

    @staticmethod
    def _filesystem_for(server, file_id: int):
        shard_map = getattr(server, "shard_map", None)
        filesystems = getattr(server, "filesystems", None)
        if shard_map is not None and filesystems is not None:
            return filesystems[shard_map.owner(file_id)]
        file_service = getattr(server, "file_service", None)
        if file_service is not None:
            return file_service.filesystem
        backend = getattr(server, "backend", None)
        if backend is not None:
            return backend.filesystem
        raise TypeError(
            "cannot resolve a filesystem for durability checking on "
            f"{type(server).__name__}"
        )


class ReplicationInvariantChecker(DurabilityChecker):
    """Runtime checker for replicated shard groups (RI1–RI5).

    Doubles as the client observer (inherited ``on_issue``/``on_ack``,
    with ``on_ack`` additionally enforcing RI3 against the replicator's
    commit records) and as the :class:`~repro.topology.replication.
    ShardReplicator` observer — the replicator invokes the ``on_*``
    protocol callbacks synchronously at each step, so a violated
    invariant is caught at the simulated instant it happens, with the
    run still live.  ``check()`` folds any violations into the final
    :class:`DurabilityReport`.
    """

    def __init__(self, env) -> None:
        super().__init__()
        self.env = env
        #: Set via :meth:`attach` (``enable_replication`` does it).
        self.replicator = None
        self.violations: List[InvariantViolation] = []
        # Progress counters: a run that reports "no violations" must
        # also prove the checker actually saw the protocol run.
        self.appends_seen = 0
        self.applies_seen = 0
        self.commits_seen = 0
        self.handoffs_seen = 0
        self.rejoins_seen = 0
        self.resizes_seen = 0
        #: (keyspace, member) -> highest watermark observed (RI2).
        self._watermarks: Dict[Tuple[int, int], int] = {}
        #: keyspace -> highest epoch observed in a handoff (RI4).
        self._epochs: Dict[int, int] = {}

    def attach(self, replicator) -> None:
        self.replicator = replicator

    def _flag(self, rule: str, detail: str) -> None:
        self.violations.append(
            InvariantViolation(self.env.now, rule, detail)
        )

    # ------------------------------------------------------------------
    # replicator observer protocol (called synchronously per step)
    # ------------------------------------------------------------------
    def on_append(self, group, record, executor: int) -> None:
        """RI1: dense lsn, current epoch, appended by the leader."""
        self.appends_seen += 1
        if record.lsn != len(group.log) - 1 or (
            group.log[record.lsn] is not record
        ):
            self._flag(
                "RI1",
                f"group {group.keyspace}: non-dense append "
                f"({record.describe()}, log length {len(group.log)})",
            )
        if record.epoch != group.epoch:
            self._flag(
                "RI1",
                f"group {group.keyspace}: append carries epoch "
                f"{record.epoch} but the group is at {group.epoch}",
            )
        if executor != group.leader:
            self._flag(
                "RI1",
                f"group {group.keyspace}: shard {executor} appended "
                f"while shard {group.leader} leads",
            )

    def on_apply(self, group, record, member: int, catchup: bool) -> None:
        """RI2: watermark monotone and log-bounded, bytes match the log."""
        self.applies_seen += 1
        if member not in group.members:
            self._flag(
                "RI2",
                f"group {group.keyspace}: non-member shard {member} "
                f"applied {record.describe()}",
            )
            return
        mark = group.applied_watermark(member)
        key = (group.keyspace, member)
        if mark < self._watermarks.get(key, 0) or mark > len(group.log):
            self._flag(
                "RI2",
                f"group {group.keyspace}: shard {member} watermark "
                f"{mark} regressed or passed the log "
                f"(last {self._watermarks.get(key, 0)}, "
                f"log length {len(group.log)})",
            )
        self._watermarks[key] = max(self._watermarks.get(key, 0), mark)
        if self.replicator is None:
            return
        filesystem = self.replicator.server.filesystems[member]
        found = filesystem.read_sync(
            record.file_id, record.offset, record.size
        )
        if found != record.payload and not any(
            later.lsn > record.lsn
            and later.file_id == record.file_id
            and later.offset == record.offset
            for later in group.log
        ):
            self._flag(
                "RI2",
                f"group {group.keyspace}: shard {member} content "
                f"diverges from the log at {record.describe()}"
                + (" (during catch-up)" if catchup else ""),
            )

    def on_commit(self, group, record, commit) -> None:
        """RI3 (release side): the quorum held when the ack was freed."""
        self.commits_seen += 1
        needed = min(2, max(1, len(commit.live)))
        if len(commit.applied) < needed:
            self._flag(
                "RI3",
                f"group {group.keyspace}: write {record.request_id} "
                f"committed with {len(commit.applied)} applied of "
                f"{len(commit.live)} live members",
            )

    def on_handoff(
        self, group, old_leader: int, new_leader: int, alive
    ) -> None:
        """RI4: primary-first deterministic choice, strict epoch bump."""
        self.handoffs_seen += 1
        if group.primary in alive:
            expected = group.primary
        elif group.backup in alive:
            expected = group.backup
        else:
            expected = old_leader
        if new_leader != expected:
            self._flag(
                "RI4",
                f"group {group.keyspace}: handoff chose shard "
                f"{new_leader}, deterministic choice is {expected} "
                f"(alive={list(alive)})",
            )
        last_epoch = self._epochs.get(group.keyspace, 0)
        if group.epoch <= last_epoch:
            self._flag(
                "RI4",
                f"group {group.keyspace}: epoch {group.epoch} did not "
                f"advance past {last_epoch} on handoff",
            )
        self._epochs[group.keyspace] = group.epoch

    def on_resize(
        self, group, old_backup, new_backup, synced: int
    ) -> None:
        """Elastic pairing change (sync-before-adopt, RI5's sibling).

        ``new_backup is None`` marks a retired keyspace's group being
        dropped; ``old_backup is None`` marks a fresh group for a newly
        added keyspace.  A backup *adoption* (both set) must only
        happen once the incoming member holds the entire log — the same
        no-dark-window rule RI5 enforces for rejoins.
        """
        self.resizes_seen += 1
        if new_backup is None or old_backup is None:
            self._epochs[group.keyspace] = max(
                self._epochs.get(group.keyspace, 0), group.epoch
            )
            return
        # The swap is completion-triggered, so by the time this
        # callback runs new appends may already be mid-mirror — judge
        # coverage by the evidence captured at the swap instant.
        adoption = group.last_adoption
        if adoption is None:
            self._flag(
                "RI5",
                f"group {group.keyspace}: resize reported backup "
                f"{new_backup} adopted but no swap was recorded",
            )
            return
        member, mark, log_len = adoption
        if member != new_backup or mark < log_len:
            self._flag(
                "RI5",
                f"group {group.keyspace}: backup {member} adopted at "
                f"watermark {mark} with {log_len} log entries",
            )
        # Adoption is a view change: fold the new epoch and watermark
        # into the RI2/RI4 baselines so the next handoff/apply is
        # judged against the post-resize state.
        key = (group.keyspace, new_backup)
        self._watermarks[key] = max(self._watermarks.get(key, 0), mark)
        self._epochs[group.keyspace] = max(
            self._epochs.get(group.keyspace, 0), group.epoch
        )

    def on_rejoin(self, group, member: int) -> None:
        """RI5: catch-up finished before the member rejoined."""
        self.rejoins_seen += 1
        mark = group.applied_watermark(member)
        if mark != len(group.log):
            self._flag(
                "RI5",
                f"group {group.keyspace}: shard {member} rejoined at "
                f"watermark {mark} with {len(group.log)} log entries",
            )

    # ------------------------------------------------------------------
    # client observer: RI3 on the ack itself
    # ------------------------------------------------------------------
    def on_ack(self, request: IoRequest, response: IoResponse) -> None:
        super().on_ack(request, response)
        if not response.ok or request.op is not OpCode.WRITE:
            return
        if self.replicator is None:
            return
        commit = self.replicator.commits.get(request.request_id)
        if commit is None:
            self._flag(
                "RI3",
                f"write {request.request_id} acked with no commit "
                "record (ack released before the quorum hop)",
            )
            return
        needed = min(2, max(1, len(commit.live)))
        if len(commit.applied) < needed:
            self._flag(
                "RI3",
                f"write {request.request_id} acked with "
                f"{len(commit.applied)} applied of {len(commit.live)} "
                "live members",
            )

    # ------------------------------------------------------------------
    # post-run audit
    # ------------------------------------------------------------------
    def check(
        self, server, dedup: Optional[RequestDedup] = None
    ) -> DurabilityReport:
        report = super().check(server, dedup=dedup)
        report.invariant_violations = [
            violation.format() for violation in self.violations
        ]
        return report
