"""Durability invariants checked after every chaos run.

The checker rides the client as an observer (``on_issue`` / ``on_ack``)
and, once the simulation drains, audits the final on-disk state against
the acknowledgement history:

* **No acked write lost** — for every WRITE the client saw acknowledged,
  the bytes at (file, offset) on the owning shard's recovered filesystem
  must equal that write's payload.  When several acked writes hit the
  same offset, the latest acknowledgement wins; writes that were issued
  later but never acknowledged are also admissible final contents (they
  may legitimately have been applied without their response surviving).
* **No double-apply** — the deployment's :class:`~repro.core.dedup.
  RequestDedup` history must show zero second applications of the same
  write id.

Chaos scenarios that want the strict per-offset check (one writer per
offset) get it for free by issuing unique offsets per request id, which
is what ``benchmarks/test_chaos_recovery.py`` does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.dedup import RequestDedup
from ..core.messages import IoRequest, IoResponse, OpCode

__all__ = ["DurabilityChecker", "DurabilityReport"]


@dataclass
class DurabilityReport:
    """Audit outcome: empty ``lost_writes`` and zero doubles == pass."""

    verified_writes: int = 0
    acked_reads: int = 0
    double_applies: int = 0
    lost_writes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.lost_writes and self.double_applies == 0

    def assert_ok(self) -> None:
        if not self.ok:
            problems = list(self.lost_writes)
            if self.double_applies:
                problems.append(
                    f"{self.double_applies} write(s) applied twice"
                )
            raise AssertionError(
                "durability violated:\n" + "\n".join(problems)
            )


class DurabilityChecker:
    """Client observer + post-run auditor for chaos scenarios."""

    def __init__(self) -> None:
        self._issue_seq = 0
        #: request_id -> (request, issue order)
        self.issued: Dict[int, Tuple[IoRequest, int]] = {}
        #: request_id -> (request, ack order)
        self.acked_writes: Dict[int, Tuple[IoRequest, int]] = {}
        self.acked_reads = 0
        self.failed_requests = 0

    # ------------------------------------------------------------------
    # client observer protocol
    # ------------------------------------------------------------------
    def on_issue(self, request: IoRequest) -> None:
        if request.request_id not in self.issued:
            self.issued[request.request_id] = (request, self._issue_seq)
            self._issue_seq += 1

    def on_ack(self, request: IoRequest, response: IoResponse) -> None:
        if not response.ok:
            self.failed_requests += 1
            return
        if request.op is OpCode.WRITE:
            self.acked_writes[request.request_id] = (
                request,
                len(self.acked_writes),
            )
        else:
            self.acked_reads += 1

    def on_give_up(self, request: IoRequest) -> None:
        self.failed_requests += 1

    # ------------------------------------------------------------------
    # post-run audit
    # ------------------------------------------------------------------
    def check(
        self, server, dedup: Optional[RequestDedup] = None
    ) -> DurabilityReport:
        """Audit final disk state against the acknowledgement history.

        ``server`` needs per-file filesystem resolution: a sharded server
        exposes ``shard_map`` + ``filesystems``; single-backend servers
        expose ``file_service.filesystem`` (or ``backend.filesystem``).
        """
        report = DurabilityReport(acked_reads=self.acked_reads)
        if dedup is not None:
            report.double_applies = dedup.double_applies
        # Latest acked write per (file, offset) is the required content.
        latest: Dict[Tuple[int, int], Tuple[IoRequest, int]] = {}
        for request, ack_seq in self.acked_writes.values():
            key = (request.file_id, request.offset)
            if key not in latest or ack_seq > latest[key][1]:
                latest[key] = (request, ack_seq)
        for (file_id, offset), (request, _seq) in sorted(latest.items()):
            filesystem = self._filesystem_for(server, file_id)
            found = filesystem.read_sync(file_id, offset, request.size)
            if found == request.payload:
                report.verified_writes += 1
                continue
            # An unacked overwrite of the same range may have been
            # applied without its response surviving the run.
            admissible = [
                issued.payload
                for issued, _ in self.issued.values()
                if issued.op is OpCode.WRITE
                and issued.file_id == file_id
                and issued.offset == offset
                and issued.request_id not in self.acked_writes
            ]
            if found in admissible:
                report.verified_writes += 1
                continue
            report.lost_writes.append(
                f"file {file_id} offset {offset}: acked write "
                f"{request.request_id} not found on disk"
            )
        return report

    @staticmethod
    def _filesystem_for(server, file_id: int):
        shard_map = getattr(server, "shard_map", None)
        filesystems = getattr(server, "filesystems", None)
        if shard_map is not None and filesystems is not None:
            return filesystems[shard_map.owner(file_id)]
        file_service = getattr(server, "file_service", None)
        if file_service is not None:
            return file_service.filesystem
        backend = getattr(server, "backend", None)
        if backend is not None:
            return backend.filesystem
        raise TypeError(
            "cannot resolve a filesystem for durability checking on "
            f"{type(server).__name__}"
        )
