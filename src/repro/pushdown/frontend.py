"""Restricted-Python frontend: compile a predicate function to bytecode.

Offload filters can be authored as tiny Python functions over a record
accessor instead of raw bytecode::

    def hot_rows(rec):
        return rec.u32(16) > 1000 and rec.match(rb"needle-\\d{8}")

``compile_predicate(hot_rows)`` compiles the body to a ``filter``
:class:`~repro.pushdown.isa.Program`.  The grammar is deliberately a
straight-line expression language — comparisons, arithmetic, boolean
logic, ``rec.u8/u16/u32/u64(offset)`` field loads, and
``rec.match(pattern)`` — so everything it emits is verifiable.

The shared-state rule is enforced *at the source level* here, before
bytecode even exists: the function may read nothing but its record
parameter.  Closures, globals, and attribute chains rooted anywhere
else are exactly the DDS101/DDS102 accesses :func:`repro.analysis.
shared_state.external_state_roots` models, and compiling them is
refused with verifier rule PDV302 (see :data:`~repro.pushdown.
verifier.PDV_RULES`).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, List

from ..analysis.shared_state import external_state_roots
from .isa import WIDTHS, Instruction, Op, Program
from .verifier import Verdict

__all__ = ["SourceRejected", "compile_predicate"]

#: ``rec.<accessor>(offset)`` -> load width in bytes.
_FIELD_ACCESSORS = {"u8": 1, "u16": 2, "u32": 4, "u64": 8}


class SourceRejected(Exception):
    """The source cannot be compiled; carries the typed verdict."""

    def __init__(self, verdict: Verdict) -> None:
        super().__init__(verdict.explain())
        self.verdict = verdict


def _reject(rule: str, detail: str, line: int) -> SourceRejected:
    return SourceRejected(Verdict(False, rule, detail, pc=None))


class _Compiler:
    """Emit stack code for one expression tree."""

    def __init__(self, record_param: str) -> None:
        self.record_param = record_param
        self.code: List[Instruction] = []
        self.patterns: List[bytes] = []

    def emit(self, op: Op, a: int = 0, b: int = 0) -> None:
        self.code.append(Instruction(op, a, b))

    # -- expression dispatch -------------------------------------------
    def expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Constant):
            self.constant(node)
        elif isinstance(node, ast.Call):
            self.call(node)
        elif isinstance(node, ast.BinOp):
            self.binop(node)
        elif isinstance(node, ast.Compare):
            self.compare(node)
        elif isinstance(node, ast.BoolOp):
            self.boolop(node)
        elif isinstance(node, ast.UnaryOp):
            self.unaryop(node)
        else:
            raise _reject(
                "PDV401",
                f"unsupported syntax: {type(node).__name__}",
                node.lineno,
            )

    def constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, bool):
            self.emit(Op.PUSH, int(node.value))
        elif isinstance(node.value, int):
            self.emit(Op.PUSH, node.value)
        else:
            raise _reject(
                "PDV401",
                f"only int constants, got {type(node.value).__name__}",
                node.lineno,
            )

    def call(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self.record_param
        ):
            raise _reject(
                "PDV401",
                "only record-accessor calls are compilable",
                node.lineno,
            )
        name = func.attr
        if name in _FIELD_ACCESSORS:
            width = _FIELD_ACCESSORS[name]
            if width not in WIDTHS:  # pragma: no cover - table is fixed
                raise _reject("PDV401", f"bad width {width}", node.lineno)
            if len(node.args) != 1 or not (
                isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, int)
                and not isinstance(node.args[0].value, bool)
            ):
                raise _reject(
                    "PDV401",
                    f"rec.{name}(offset) needs one constant int offset",
                    node.lineno,
                )
            self.emit(Op.LOAD, node.args[0].value, width)
        elif name == "match":
            if len(node.args) != 1 or not (
                isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, bytes)
            ):
                raise _reject(
                    "PDV401",
                    "rec.match(pattern) needs one constant bytes "
                    "pattern",
                    node.lineno,
                )
            self.patterns.append(node.args[0].value)
            self.emit(Op.MATCH, len(self.patterns) - 1)
        else:
            raise _reject(
                "PDV401",
                f"unknown record accessor rec.{name}",
                node.lineno,
            )

    def binop(self, node: ast.BinOp) -> None:
        ops = {ast.Add: Op.ADD, ast.Sub: Op.SUB, ast.Mult: Op.MUL}
        op = ops.get(type(node.op))
        if op is None:
            raise _reject(
                "PDV401",
                f"unsupported operator {type(node.op).__name__}",
                node.lineno,
            )
        self.expr(node.left)
        self.expr(node.right)
        self.emit(op)

    def compare(self, node: ast.Compare) -> None:
        if len(node.ops) != 1:
            raise _reject(
                "PDV401", "chained comparisons are not compilable",
                node.lineno,
            )
        self.expr(node.left)
        self.expr(node.comparators[0])
        op = node.ops[0]
        if isinstance(op, ast.Eq):
            self.emit(Op.EQ)
        elif isinstance(op, ast.NotEq):
            self.emit(Op.EQ)
            self.emit(Op.NOT)
        elif isinstance(op, ast.Lt):
            self.emit(Op.LT)
        elif isinstance(op, ast.Gt):
            self.emit(Op.GT)
        elif isinstance(op, ast.LtE):  # a <= b  ==  a < b + 1
            self.emit(Op.PUSH, 1)
            self.emit(Op.ADD)
            self.emit(Op.LT)
        elif isinstance(op, ast.GtE):  # a >= b  ==  a + 1 > b
            self.emit(Op.SWAP)
            self.emit(Op.PUSH, 1)
            self.emit(Op.ADD)
            self.emit(Op.SWAP)
            self.emit(Op.GT)
        else:
            raise _reject(
                "PDV401",
                f"unsupported comparison {type(op).__name__}",
                node.lineno,
            )

    def boolop(self, node: ast.BoolOp) -> None:
        fold = Op.AND if isinstance(node.op, ast.And) else Op.OR
        self.expr(node.values[0])
        for value in node.values[1:]:
            self.expr(value)
            self.emit(fold)

    def unaryop(self, node: ast.UnaryOp) -> None:
        if isinstance(node.op, ast.Not):
            self.expr(node.operand)
            self.emit(Op.NOT)
        elif isinstance(node.op, ast.USub) and isinstance(
            node.operand, ast.Constant
        ) and isinstance(node.operand.value, int):
            self.emit(Op.PUSH, -node.operand.value)
        else:
            raise _reject(
                "PDV401",
                f"unsupported unary {type(node.op).__name__}",
                node.lineno,
            )


def compile_predicate(fn: Callable[..., object]) -> Program:
    """Compile ``def pred(rec): return <expr>`` to a filter program.

    Raises :class:`SourceRejected` with a typed verdict when the source
    touches shared state (PDV302) or uses syntax outside the grammar
    (PDV401).  The result still goes through :func:`~repro.pushdown.
    verifier.verify` like any other program — the frontend narrows the
    language, it does not replace the proof.
    """
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise SourceRejected(
            Verdict(False, "PDV401", f"source unavailable: {exc}")
        ) from None
    tree = ast.parse(source)
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        raise _reject("PDV401", "expected a plain function", 1)
    fndef = tree.body[0]
    args = fndef.args
    if (
        len(args.args) + len(args.posonlyargs) != 1
        or args.vararg or args.kwarg or args.kwonlyargs
    ):
        raise _reject(
            "PDV401",
            "offload predicates take exactly one record parameter",
            fndef.lineno,
        )
    params = args.posonlyargs + args.args
    record_param = params[0].arg
    body = [
        stmt for stmt in fndef.body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )  # docstring
    ]
    if len(body) != 1 or not isinstance(body[0], ast.Return) or (
        body[0].value is None
    ):
        raise _reject(
            "PDV401",
            "offload predicates are a single return expression",
            fndef.lineno,
        )
    returned = body[0].value

    touched = external_state_roots(returned, frozenset({record_param}))
    if touched:
        what, line = touched[0]
        raise SourceRejected(
            Verdict(
                False,
                "PDV302",
                f"offload source reads shared state '{what}' (line "
                f"{line}); only the record parameter "
                f"'{record_param}' is owned (DDS101/DDS102 model)",
            )
        )

    compiler = _Compiler(record_param)
    compiler.expr(returned)
    compiler.emit(Op.RET)
    return Program(
        kind="filter",
        code=tuple(compiler.code),
        patterns=tuple(compiler.patterns),
    )
