"""Verified programmable pushdown: a bytecode DSL for DPU offload.

The package splits cleanly into *authoring* (:mod:`~repro.pushdown.isa`
builders and the restricted-Python :mod:`~repro.pushdown.frontend`),
*admission* (:mod:`~repro.pushdown.verifier` — the static proof of
termination, bounded memory, window confinement, and type soundness),
and *execution* (:mod:`~repro.pushdown.interp` reference semantics,
:mod:`~repro.pushdown.engine` DES cost model, :mod:`~repro.pushdown.
scan` full storage-stack scans).

The intended flow — and the one ddslint's DDS501/DDS502 enforce — is::

    pipeline = Pipeline((regex_filter(rb"needle-\\d{8}"),
                         aggregate_fields((0, 4))))
    verdict, token = verify(pipeline, Geometry(128, 64))
    if token is None:        # typed rejection -> host fallback
        ...
    else:                    # proof token -> DPU execution
        ...
"""

from .frontend import SourceRejected, compile_predicate
from .interp import (
    ExecStats,
    FuelTrap,
    OperandTrap,
    ScratchTrap,
    StackTrap,
    StageResult,
    Trap,
    WindowTrap,
    interpret,
    interpret_pipeline,
)
from .isa import (
    ACC_REGS,
    FUEL_PER_RECORD_BYTE,
    MAX_CODE,
    MAX_LOOP_NEST,
    SCRATCH_LIMIT,
    STACK_LIMIT,
    WIDTHS,
    Geometry,
    Instruction,
    Op,
    Pipeline,
    Program,
    aggregate_fields,
    field_filter,
    lowers_to_regex,
    project_fields,
    regex_filter,
)
from .verifier import (
    PDV_RULES,
    PipelineVerdict,
    Verdict,
    VerifiedPipeline,
    VerifiedProgram,
    verify,
    verify_program,
)

__all__ = [
    # isa
    "Op",
    "Instruction",
    "Program",
    "Pipeline",
    "Geometry",
    "STACK_LIMIT",
    "SCRATCH_LIMIT",
    "ACC_REGS",
    "MAX_LOOP_NEST",
    "MAX_CODE",
    "FUEL_PER_RECORD_BYTE",
    "WIDTHS",
    "regex_filter",
    "field_filter",
    "project_fields",
    "aggregate_fields",
    "lowers_to_regex",
    # interp
    "Trap",
    "FuelTrap",
    "WindowTrap",
    "StackTrap",
    "ScratchTrap",
    "OperandTrap",
    "ExecStats",
    "StageResult",
    "interpret",
    "interpret_pipeline",
    # verifier
    "PDV_RULES",
    "Verdict",
    "PipelineVerdict",
    "VerifiedProgram",
    "VerifiedPipeline",
    "verify_program",
    "verify",
    # frontend
    "SourceRejected",
    "compile_predicate",
]
