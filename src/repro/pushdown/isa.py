"""The pushdown bytecode ISA: a BPF-for-the-DPU (ROADMAP item 5).

Offload programs are tiny stack-machine bytecode run once per fixed-size
record.  The machine is deliberately small enough to verify statically
(:mod:`repro.pushdown.verifier`) before a program is admitted to a DPU:

* an **operand stack** of 64-bit signed integers (saturating, not
  wrapping, so interval analysis stays sound), depth-bounded;
* the **record window** — the current record's bytes, read-only;
* a per-invocation **scratch buffer** the program declares up front;
* four write-only **accumulator registers** for aggregation;
* a **pattern pool** of byte regexes (:data:`Op.MATCH` is the opcode the
  RXP engine can absorb — see :func:`lowers_to_regex`).

Control flow is structured: forward-only ``JMP``/``JZ`` plus a counted
``LOOP n … END`` pair whose trip count is a static immediate bounded by
the record geometry.  Back-edges exist *only* through ``END``'s
decreasing counter, which is what makes termination a syntactic theorem
rather than a search (the verifier's PDV101).

Programs compose into a :class:`Pipeline` — filter → project →
aggregate — evaluated per record; stage kinds fix the stack contract at
``RET`` (a filter leaves exactly the selection flag, the others leave an
empty stack).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

__all__ = [
    "Op",
    "Instruction",
    "Program",
    "Pipeline",
    "Geometry",
    "STACK_LIMIT",
    "SCRATCH_LIMIT",
    "ACC_REGS",
    "MAX_LOOP_NEST",
    "MAX_CODE",
    "FUEL_PER_RECORD_BYTE",
    "I64_MIN",
    "I64_MAX",
    "WIDTHS",
    "regex_filter",
    "field_filter",
    "project_fields",
    "aggregate_fields",
    "lowers_to_regex",
]

#: Operand-stack depth ceiling the verifier enforces (PDV201).
STACK_LIMIT = 32

#: Largest scratch buffer a program may declare, in bytes (PDV202).
SCRATCH_LIMIT = 64

#: Write-only accumulator registers available to aggregate stages.
ACC_REGS = 4

#: Deepest legal ``LOOP`` nesting (PDV101 beyond this).
MAX_LOOP_NEST = 2

#: Longest legal program, in instructions (PDV102 beyond this).
MAX_CODE = 256

#: Fuel budget scale: a program may take at most this many interpreter
#: steps per record byte (PDV102 when the proven worst case exceeds it).
FUEL_PER_RECORD_BYTE = 64

I64_MIN = -(1 << 63)
I64_MAX = (1 << 63) - 1

#: Legal load/store widths, bytes.
WIDTHS = (1, 2, 4, 8)


class Op(enum.Enum):
    """One opcode.  Operand meanings are noted per value."""

    PUSH = "push"        # a = constant pushed
    POP = "pop"
    DUP = "dup"
    SWAP = "swap"
    LOAD = "load"        # a = record offset, b = width: push LE uint
    LOADD = "loadd"      # b = width: pop offset, push LE uint
    LOADS = "loads"      # a = scratch offset, b = width
    STORE = "store"      # a = scratch offset, b = width: pop value
    PUSHCTR = "pushctr"  # push innermost loop induction value (0-based)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    EQ = "eq"
    LT = "lt"
    GT = "gt"
    AND = "and"
    OR = "or"
    NOT = "not"
    JMP = "jmp"          # a = absolute target (forward-only to verify)
    JZ = "jz"            # a = absolute target: pop, jump when zero
    LOOP = "loop"        # a = static trip count (geometry-bounded)
    END = "end"          # decrement counter, back-edge while positive
    EMITF = "emitf"      # a = record offset, b = width: append bytes
    EMITV = "emitv"      # b = width: pop value, append LE bytes
    MATCH = "match"      # a = pattern-pool index: push 1/0
    AADD = "aadd"        # a = register: pop value, acc[a] += value
    AMAX = "amax"        # a = register: pop value, acc[a] = max(...)
    AMIN = "amin"        # a = register: pop value, acc[a] = min(...)
    ACNT = "acnt"        # a = register: acc[a] += 1
    RET = "ret"          # filter: pop selection flag; must be last


#: Opcodes that read an operand from the stack (count popped).
POPS = {
    Op.PUSH: 0, Op.POP: 1, Op.DUP: 1, Op.SWAP: 2, Op.LOAD: 0,
    Op.LOADD: 1, Op.LOADS: 0, Op.STORE: 1, Op.PUSHCTR: 0, Op.ADD: 2,
    Op.SUB: 2, Op.MUL: 2, Op.EQ: 2, Op.LT: 2, Op.GT: 2, Op.AND: 2,
    Op.OR: 2, Op.NOT: 1, Op.JMP: 0, Op.JZ: 1, Op.LOOP: 0, Op.END: 0,
    Op.EMITF: 0, Op.EMITV: 1, Op.MATCH: 0, Op.AADD: 1, Op.AMAX: 1,
    Op.AMIN: 1, Op.ACNT: 0, Op.RET: 0,
}

#: Opcodes that push a result (count pushed).
PUSHES = {
    Op.PUSH: 1, Op.POP: 0, Op.DUP: 2, Op.SWAP: 2, Op.LOAD: 1,
    Op.LOADD: 1, Op.LOADS: 1, Op.STORE: 0, Op.PUSHCTR: 1, Op.ADD: 1,
    Op.SUB: 1, Op.MUL: 1, Op.EQ: 1, Op.LT: 1, Op.GT: 1, Op.AND: 1,
    Op.OR: 1, Op.NOT: 1, Op.JMP: 0, Op.JZ: 0, Op.LOOP: 0, Op.END: 0,
    Op.EMITF: 0, Op.EMITV: 0, Op.MATCH: 1, Op.AADD: 0, Op.AMAX: 0,
    Op.AMIN: 0, Op.ACNT: 0, Op.RET: 0,
}


@dataclass(frozen=True)
class Instruction:
    """One instruction: opcode plus up to two integer immediates."""

    op: Op
    a: int = 0
    b: int = 0

    def __repr__(self) -> str:
        if self.op in (Op.LOAD, Op.LOADS, Op.STORE, Op.EMITF):
            return f"{self.op.value}[{self.a}:{self.a}+{self.b}]"
        if self.b:
            return f"{self.op.value}({self.a},{self.b})"
        if self.a or self.op in (Op.PUSH, Op.JMP, Op.JZ, Op.LOOP):
            return f"{self.op.value}({self.a})"
        return self.op.value


#: Stage kinds and their stack contract at ``RET``.
KINDS = ("filter", "project", "aggregate")


@dataclass(frozen=True)
class Program:
    """One pipeline stage: bytecode + declared resources.

    ``kind`` fixes the result contract: a ``filter`` leaves its
    selection flag on the stack for ``RET`` to pop; ``project`` emits
    the output record via ``EMITF``/``EMITV``; ``aggregate`` folds into
    the accumulator registers.
    """

    kind: str
    code: Tuple[Instruction, ...]
    scratch: int = 0
    patterns: Tuple[bytes, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown program kind: {self.kind!r}")


@dataclass(frozen=True)
class Pipeline:
    """Composed stages, evaluated per record in declaration order.

    At most one stage of each kind, in filter → project → aggregate
    order; every combination (including an empty filter) is legal.
    """

    stages: Tuple[Program, ...]

    def __post_init__(self) -> None:
        order = [stage.kind for stage in self.stages]
        expected = [kind for kind in KINDS if kind in order]
        if order != expected or len(set(order)) != len(order):
            raise ValueError(
                "pipeline stages must be unique and ordered "
                f"filter->project->aggregate, got {order}"
            )

    def stage(self, kind: str) -> Optional[Program]:
        for program in self.stages:
            if program.kind == kind:
                return program
        return None


@dataclass(frozen=True)
class Geometry:
    """The record/page shape a program is verified against.

    The verifier derives every loop and fuel bound from this — a
    program is admitted *for a geometry*, not in the abstract.
    """

    record_bytes: int
    records_per_page: int

    def __post_init__(self) -> None:
        if self.record_bytes <= 0 or self.records_per_page <= 0:
            raise ValueError("geometry dimensions must be positive")

    @property
    def page_bytes(self) -> int:
        return self.record_bytes * self.records_per_page

    @property
    def fuel_limit(self) -> int:
        """Per-record interpreter step budget this geometry admits."""
        return FUEL_PER_RECORD_BYTE * self.record_bytes


# ----------------------------------------------------------------------
# assembler helpers: the pipelines the benches and examples use
# ----------------------------------------------------------------------
def regex_filter(pattern: bytes) -> Program:
    """A filter that selects records matching ``pattern``.

    This exact shape — ``MATCH 0; RET`` with a single pattern — is the
    one the RXP accelerator absorbs whole (:func:`lowers_to_regex`).
    """
    return Program(
        kind="filter",
        code=(Instruction(Op.MATCH, 0), Instruction(Op.RET)),
        patterns=(pattern,),
    )


def field_filter(
    offset: int, width: int, low: int, high: int
) -> Program:
    """Select records whose LE uint field lies in ``[low, high]``."""
    return Program(
        kind="filter",
        code=(
            Instruction(Op.LOAD, offset, width),
            Instruction(Op.PUSH, low - 1),
            Instruction(Op.GT),
            Instruction(Op.LOAD, offset, width),
            Instruction(Op.PUSH, high + 1),
            Instruction(Op.LT),
            Instruction(Op.AND),
            Instruction(Op.RET),
        ),
    )


def project_fields(fields: Iterable[Tuple[int, int]]) -> Program:
    """Emit the given ``(offset, width)`` record slices, in order."""
    code: List[Instruction] = [
        Instruction(Op.EMITF, offset, width) for offset, width in fields
    ]
    code.append(Instruction(Op.RET))
    return Program(kind="project", code=tuple(code))


def aggregate_fields(
    sum_field: Tuple[int, int],
    max_field: Optional[Tuple[int, int]] = None,
) -> Program:
    """Fold ``sum(field)`` into acc0, count into acc1, optional
    ``max(field)`` into acc2 — the bench's aggregate stage."""
    code: List[Instruction] = [
        Instruction(Op.LOAD, sum_field[0], sum_field[1]),
        Instruction(Op.AADD, 0),
        Instruction(Op.ACNT, 1),
    ]
    if max_field is not None:
        code.append(Instruction(Op.LOAD, max_field[0], max_field[1]))
        code.append(Instruction(Op.AMAX, 2))
    code.append(Instruction(Op.RET))
    return Program(kind="aggregate", code=tuple(code))


def lowers_to_regex(pipeline: Pipeline) -> Optional[bytes]:
    """The pattern the RXP engine can evaluate in place of the filter.

    A filter lowers when it is exactly ``MATCH <single pattern>; RET``:
    the accelerator then replaces the per-record interpretation of that
    stage (remaining stages still run on the Arm cores, over survivors
    only).  Returns the pattern, or None when the filter — or the whole
    pipeline — needs software.
    """
    program = pipeline.stage("filter")
    if program is None or len(program.patterns) != 1:
        return None
    if len(program.code) != 2:
        return None
    first, last = program.code
    if first.op is Op.MATCH and first.a == 0 and last.op is Op.RET:
        return program.patterns[0]
    return None
