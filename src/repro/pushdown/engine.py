"""DES execution engine for *verified* pushdown pipelines.

This is the sanctioned execution path: it accepts only the
:class:`~repro.pushdown.verifier.VerifiedPipeline` proof token, never a
raw :class:`~repro.pushdown.isa.Pipeline` (calling the interpreter
directly is what ddslint's DDS501 flags; forging a token is DDS502).

Cost model
----------
Software execution charges the owning :class:`~repro.hardware.cpu.
CpuCore` per *executed opcode* from :data:`OP_CYCLES` (plus
:data:`DISPATCH_CYCLES` of decode per step and :data:`MATCH_BYTE_CYCLES`
per byte a software ``MATCH`` scans), converted to host-core-seconds at
:data:`HOST_HZ`.  The core's ``speed`` then does the host-vs-Arm scaling
exactly as everywhere else in the simulator (DPU cores run at 0.35x —
:data:`~repro.hardware.specs.DPU_CPU`).

When the pipeline's filter lowers to a single regex
(``token.pattern``), an attached RXP :class:`~repro.extensions.
accelerators.HardwareAccelerator` absorbs the filter stage at page
granularity; only the surviving records pay software cycles for the
remaining stages.  That is the §11 string-operator story: the regex
engine evaluates the operator where the data lives, the Arm cores stay
nearly idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from ..extensions.accelerators import HardwareAccelerator, compile_pattern
from ..hardware.cpu import CpuCore
from .interp import ExecStats, interpret_pipeline
from .isa import ACC_REGS, Op, Pipeline
from .verifier import VerifiedPipeline

__all__ = [
    "OP_CYCLES",
    "DISPATCH_CYCLES",
    "MATCH_BYTE_CYCLES",
    "HOST_HZ",
    "cycles_of",
    "PageOutcome",
    "PushdownEngine",
]

#: Nominal host-core clock used to turn cycle counts into core-seconds.
HOST_HZ = 3.0e9

#: Decode/dispatch overhead charged per executed instruction.
DISPATCH_CYCLES = 2

#: Per-byte cost of a *software* regex scan (``MATCH`` outside the RXP).
MATCH_BYTE_CYCLES = 2

#: Execute cost per opcode, in host-core cycles (on top of dispatch).
OP_CYCLES = {
    Op.PUSH: 1, Op.POP: 1, Op.DUP: 1, Op.SWAP: 1,
    Op.LOAD: 2, Op.LOADD: 3, Op.LOADS: 2, Op.STORE: 2,
    Op.PUSHCTR: 1,
    Op.ADD: 1, Op.SUB: 1, Op.MUL: 3,
    Op.EQ: 1, Op.LT: 1, Op.GT: 1, Op.AND: 1, Op.OR: 1, Op.NOT: 1,
    Op.JMP: 1, Op.JZ: 1, Op.LOOP: 1, Op.END: 1,
    Op.EMITF: 2, Op.EMITV: 2,
    Op.MATCH: 4,
    Op.AADD: 2, Op.AMAX: 2, Op.AMIN: 2, Op.ACNT: 2,
    Op.RET: 1,
}


def cycles_of(stats: ExecStats) -> int:
    """Host-core cycles the recorded execution costs in software."""
    total = stats.match_bytes * MATCH_BYTE_CYCLES
    for op, count in stats.counts.items():
        total += count * (DISPATCH_CYCLES + OP_CYCLES[op])
    return total


@dataclass
class PageOutcome:
    """What one page scan produced and what it cost."""

    #: ``(slot, record)`` for records the filter selected.
    selected: List[Tuple[int, bytes]] = field(default_factory=list)
    #: Projection output per selected record (empty w/o a project stage).
    emitted: List[bytes] = field(default_factory=list)
    #: Software cycles charged to the engine's core.
    cycles: int = 0
    #: Bytes the RXP accelerator scanned (0 on the software path).
    accel_bytes: int = 0


class PushdownEngine:
    """Per-record pipeline execution on one core, optionally with RXP.

    ``accelerator`` (an RXP :class:`HardwareAccelerator`) is used only
    when the admitted pipeline lowers to a pure regex scan; everything
    else runs in software on ``core``.
    """

    def __init__(
        self,
        env: object,
        core: CpuCore,
        accelerator: Optional[HardwareAccelerator] = None,
    ) -> None:
        self.env = env
        self.core = core
        self.accelerator = accelerator
        self.acc: List[int] = [0] * ACC_REGS

    def execute_page(
        self, token: VerifiedPipeline, page: bytes
    ) -> Generator:
        """Run the verified pipeline over every record in ``page``.

        A DES process generator: charges the accelerator and/or the core
        as it goes and returns a :class:`PageOutcome`.  Accumulator
        registers fold across pages in ``self.acc``.
        """
        if not isinstance(token, VerifiedPipeline):
            raise TypeError(
                "PushdownEngine executes VerifiedPipeline proof tokens "
                f"only, got {type(token).__name__}; run repro.pushdown."
                "verifier.verify() first"
            )
        geometry = token.geometry
        if len(page) % geometry.record_bytes:
            raise ValueError(
                f"page of {len(page)}B is not whole "
                f"{geometry.record_bytes}B records"
            )
        records = [
            page[start:start + geometry.record_bytes]
            for start in range(0, len(page), geometry.record_bytes)
        ]
        outcome = PageOutcome()
        stats = ExecStats()
        fuel = token.verdict.fuel

        if self.accelerator is not None and token.pattern is not None:
            # RXP absorbs the filter at page granularity; survivors pay
            # software cycles for the remaining stages only.
            yield from self.accelerator.process(len(page))
            outcome.accel_bytes = len(page)
            pattern = compile_pattern(token.pattern)
            rest = Pipeline(
                tuple(
                    program for program in token.pipeline.stages
                    if program.kind != "filter"
                )
            )
            for slot, record in enumerate(records):
                if not pattern.search(record):
                    continue
                outcome.selected.append((slot, record))
                if rest.stages:
                    result = interpret_pipeline(
                        rest, record, geometry, fuel, acc=self.acc
                    )
                    stats.merge(result.stats)
                    if result.emitted:
                        outcome.emitted.append(result.emitted)
        else:
            for slot, record in enumerate(records):
                result = interpret_pipeline(
                    token.pipeline, record, geometry, fuel, acc=self.acc
                )
                stats.merge(result.stats)
                if not result.selected:
                    continue
                outcome.selected.append((slot, record))
                if result.emitted:
                    outcome.emitted.append(result.emitted)

        outcome.cycles = cycles_of(stats)
        if outcome.cycles:
            yield from self.core.execute(outcome.cycles / HOST_HZ)
        return outcome
