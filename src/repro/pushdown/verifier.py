"""Static verifier: proves a pushdown program safe before DPU admission.

An offload program runs on the storage side only after this module
proves, from the bytecode alone (no execution), the four properties the
BPF-oF posture demands:

1. **Termination** (PDV101/PDV102) — control flow is forward-only
   except through ``LOOP n … END``'s decreasing counter, trip counts
   are static immediates bounded by the record geometry, and the
   worst-case step count (loops multiplied through) fits the
   geometry's fuel budget.
2. **Bounded memory** (PDV201/PDV202) — the operand stack stays under
   :data:`~repro.pushdown.isa.STACK_LIMIT` on every path, depth agrees
   at every join, loop bodies are stack-neutral and never reach below
   their frame, and scratch/emit stay inside their declared bounds.
3. **No shared-state access** (PDV301) — every record read, static or
   computed, provably lands inside the record window.  This is the
   DDS101/DDS102 shared-state model of :mod:`repro.analysis.
   shared_state` transplanted to data: bytes outside the window belong
   to other records/requests, i.e. state the program does not own.
   Computed offsets are proven by interval abstract interpretation
   (sound because the machine's arithmetic saturates, never wraps).
4. **Type/arity soundness** (PDV401) — operands are well-formed
   (widths, registers, pattern indices, jump targets), ``RET`` is the
   unique terminator, and the stage kind's stack contract holds
   (a filter leaves exactly the selection flag; others leave nothing).

The proof artifact is a :class:`VerifiedProgram`/:class:`VerifiedPipeline`
token carrying the proven fuel, stack, and emit bounds; the execution
engines accept only these tokens.  ddslint's DDS501/DDS502 statically
flag call sites that execute raw programs or forge tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .isa import (
    ACC_REGS,
    I64_MAX,
    I64_MIN,
    MAX_CODE,
    MAX_LOOP_NEST,
    SCRATCH_LIMIT,
    STACK_LIMIT,
    WIDTHS,
    Geometry,
    Instruction,
    Op,
    Pipeline,
    Program,
    lowers_to_regex,
)

__all__ = [
    "PDV_RULES",
    "Verdict",
    "PipelineVerdict",
    "VerifiedProgram",
    "VerifiedPipeline",
    "verify_program",
    "verify",
]

#: Rule id -> one-line summary (kept in sync with DESIGN.md §14).
PDV_RULES: Dict[str, str] = {
    "PDV101": (
        "unbounded control flow: back-edge, loop-crossing jump, "
        "unmatched or over-deep LOOP, or trip count beyond the "
        "record geometry"
    ),
    "PDV102": (
        "step budget: program too long or worst-case fuel exceeds "
        "the geometry's per-record limit"
    ),
    "PDV201": (
        "operand-stack bound: overflow, underflow, depth mismatch at "
        "a join, or a loop body that is not stack-neutral"
    ),
    "PDV202": "scratch or emit access outside the declared bounds",
    "PDV301": (
        "record-window violation: a read that cannot be proven inside "
        "the record window (the shared-state rule applied to data)"
    ),
    "PDV401": (
        "type/arity violation: malformed operand, misplaced RET, "
        "missing terminator, or stage stack-contract breach"
    ),
}


@dataclass(frozen=True)
class Verdict:
    """The verifier's typed answer for one program.

    ``ok`` with the proven bounds, or the first rule that fired with
    the offending pc — rejected programs fall back to host execution
    and this verdict is the explanation the client sees.
    """

    ok: bool
    rule: Optional[str] = None
    detail: str = ""
    pc: Optional[int] = None
    fuel: int = 0
    max_stack: int = 0
    max_emit: int = 0

    def explain(self) -> str:
        if self.ok:
            return (
                f"verified: fuel<={self.fuel}, stack<={self.max_stack}, "
                f"emit<={self.max_emit}B"
            )
        where = "" if self.pc is None else f" at pc {self.pc}"
        return f"{self.rule}{where}: {self.detail}"


@dataclass(frozen=True)
class VerifiedProgram:
    """Proof token: ``program`` is safe for ``geometry``.

    Constructed only by :func:`verify_program` — hand-building one
    bypasses the proof and is flagged statically (ddslint DDS502).
    """

    program: Program
    geometry: Geometry
    verdict: Verdict


@dataclass(frozen=True)
class PipelineVerdict:
    """Per-stage verdicts plus the admission decision for a pipeline."""

    ok: bool
    stage_verdicts: Tuple[Verdict, ...]
    rule: Optional[str] = None
    detail: str = ""
    fuel: int = 0

    def explain(self) -> str:
        if self.ok:
            return f"verified pipeline: fuel<={self.fuel} per record"
        return f"{self.rule}: {self.detail}"


@dataclass(frozen=True)
class VerifiedPipeline:
    """Proof token for a whole pipeline (see :class:`VerifiedProgram`)."""

    pipeline: Pipeline
    geometry: Geometry
    verdict: PipelineVerdict
    #: The single regex the RXP engine can absorb for the filter stage,
    #: when the filter lowers (``None`` -> software filter).
    pattern: Optional[bytes] = None


# ----------------------------------------------------------------------
# interval arithmetic (saturating, mirroring the interpreter)
# ----------------------------------------------------------------------
Interval = Tuple[int, int]


def _clamp(value: int) -> int:
    return max(I64_MIN, min(I64_MAX, value))


def _iv(lo: int, hi: int) -> Interval:
    return (_clamp(lo), _clamp(hi))


def _iv_add(x: Interval, y: Interval) -> Interval:
    return _iv(x[0] + y[0], x[1] + y[1])


def _iv_sub(x: Interval, y: Interval) -> Interval:
    return _iv(x[0] - y[1], x[1] - y[0])


def _iv_mul(x: Interval, y: Interval) -> Interval:
    corners = (x[0] * y[0], x[0] * y[1], x[1] * y[0], x[1] * y[1])
    return _iv(min(corners), max(corners))


def _iv_join(x: Interval, y: Interval) -> Interval:
    return (min(x[0], y[0]), max(x[1], y[1]))


_BOOL: Interval = (0, 1)


def _width_range(width: int) -> Interval:
    return (0, (1 << (8 * width)) - 1)


# ----------------------------------------------------------------------
# structural passes
# ----------------------------------------------------------------------
def _match_loops(
    code: Tuple[Instruction, ...], geometry: Geometry
) -> Tuple[Optional[Verdict], List[Optional[int]], Dict[int, int]]:
    """Pair LOOP/END, assign each pc its innermost LOOP pc.

    Returns (error verdict or None, loop-of-pc table, loop->end map).
    """
    loop_of: List[Optional[int]] = [None] * len(code)
    ends: Dict[int, int] = {}
    stack: List[int] = []
    for pc, instr in enumerate(code):
        loop_of[pc] = stack[-1] if stack else None
        if instr.op is Op.LOOP:
            if len(stack) >= MAX_LOOP_NEST:
                return (
                    Verdict(
                        False, "PDV101",
                        f"loop nesting deeper than {MAX_LOOP_NEST}", pc,
                    ),
                    loop_of, ends,
                )
            if not 1 <= instr.a <= geometry.record_bytes:
                return (
                    Verdict(
                        False, "PDV101",
                        f"trip count {instr.a} outside [1, "
                        f"{geometry.record_bytes}] (record geometry)", pc,
                    ),
                    loop_of, ends,
                )
            stack.append(pc)
            loop_of[pc] = pc  # the LOOP opcode belongs to its own loop
        elif instr.op is Op.END:
            if not stack:
                return (
                    Verdict(False, "PDV101", "END without LOOP", pc),
                    loop_of, ends,
                )
            ends[stack.pop()] = pc
    if stack:
        return (
            Verdict(False, "PDV101", "LOOP without END", stack[-1]),
            loop_of, ends,
        )
    return None, loop_of, ends


def _worst_case_bounds(
    code: Tuple[Instruction, ...]
) -> Tuple[int, int]:
    """(worst-case steps, worst-case emitted bytes), loops multiplied.

    An upper bound: branches are not short-circuited, every loop runs
    its full trip count.  ``LOOP``/``END`` charge one step per
    iteration boundary, matching the interpreter's accounting.
    """
    frames: List[List[int]] = [[0, 0, 1]]  # [steps, emit, multiplier]
    for instr in code:
        if instr.op is Op.LOOP:
            frames.append([1, 0, instr.a])  # the LOOP step itself
        elif instr.op is Op.END:
            steps, emit, trip = frames.pop()
            # body + END once per iteration; LOOP charged on entry.
            frames[-1][0] += (steps - 1) * trip + trip + 1
            frames[-1][1] += emit * trip
        else:
            frames[-1][0] += 1
            if instr.op is Op.EMITF or instr.op is Op.EMITV:
                frames[-1][1] += instr.b
    return frames[0][0], frames[0][1]


# ----------------------------------------------------------------------
# the verifier
# ----------------------------------------------------------------------
def verify_program(program: Program, geometry: Geometry) -> Verdict:
    """Prove one program safe for ``geometry`` (or say which rule fired).

    Static only: the program is never executed.  See the module
    docstring for the four properties and their rule families.
    """
    code = program.code
    if len(code) == 0:
        return Verdict(False, "PDV401", "empty program", None)
    if len(code) > MAX_CODE:
        return Verdict(
            False, "PDV102",
            f"{len(code)} instructions exceeds MAX_CODE={MAX_CODE}", None,
        )
    if not 0 <= program.scratch <= SCRATCH_LIMIT:
        return Verdict(
            False, "PDV202",
            f"scratch {program.scratch}B outside [0, {SCRATCH_LIMIT}]",
            None,
        )
    for index, pattern in enumerate(program.patterns):
        try:
            re.compile(pattern)
        except re.error as exc:
            return Verdict(
                False, "PDV401", f"pattern {index} invalid: {exc}", None
            )
    if code[-1].op is not Op.RET:
        return Verdict(
            False, "PDV401", "program must end with RET", len(code) - 1
        )

    error, loop_of, ends = _match_loops(code, geometry)
    if error is not None:
        return error

    # Per-instruction operand/window checks (positions are static).
    for pc, instr in enumerate(code):
        op = instr.op
        if op is Op.RET and pc != len(code) - 1:
            return Verdict(
                False, "PDV401", "RET before the final position", pc
            )
        if op in (Op.LOAD, Op.EMITF):
            if instr.b not in WIDTHS:
                return Verdict(
                    False, "PDV401", f"bad width {instr.b}", pc
                )
            if instr.a < 0 or instr.a + instr.b > geometry.record_bytes:
                return Verdict(
                    False, "PDV301",
                    f"static read [{instr.a}:{instr.a + instr.b}] "
                    f"outside the {geometry.record_bytes}B window", pc,
                )
        if op in (Op.LOADD, Op.EMITV):
            if instr.b not in WIDTHS:
                return Verdict(
                    False, "PDV401", f"bad width {instr.b}", pc
                )
        if op in (Op.LOADS, Op.STORE):
            if instr.b not in WIDTHS:
                return Verdict(
                    False, "PDV401", f"bad width {instr.b}", pc
                )
            if instr.a < 0 or instr.a + instr.b > program.scratch:
                return Verdict(
                    False, "PDV202",
                    f"scratch access [{instr.a}:{instr.a + instr.b}] "
                    f"outside {program.scratch}B", pc,
                )
        if op in (Op.AADD, Op.AMAX, Op.AMIN, Op.ACNT):
            if not 0 <= instr.a < ACC_REGS:
                return Verdict(
                    False, "PDV401",
                    f"accumulator {instr.a} outside [0, {ACC_REGS})", pc,
                )
        if op is Op.MATCH:
            if not 0 <= instr.a < len(program.patterns):
                return Verdict(
                    False, "PDV401",
                    f"pattern index {instr.a} outside the pool "
                    f"({len(program.patterns)} patterns)", pc,
                )
        if op is Op.PUSHCTR and loop_of[pc] is None:
            return Verdict(
                False, "PDV401", "PUSHCTR outside a loop", pc
            )
        if op in (Op.JMP, Op.JZ):
            if not 0 <= instr.a < len(code):
                return Verdict(
                    False, "PDV401",
                    f"jump target {instr.a} out of range", pc,
                )
            if instr.a <= pc:
                return Verdict(
                    False, "PDV101",
                    f"back-edge {pc} -> {instr.a} without a "
                    "decreasing counter (only LOOP/END may loop)", pc,
                )
            if loop_of[instr.a] != loop_of[pc]:
                return Verdict(
                    False, "PDV101",
                    f"jump {pc} -> {instr.a} crosses a loop boundary",
                    pc,
                )

    # Termination/size budget: loops multiplied through, statically.
    fuel, max_emit = _worst_case_bounds(code)
    if fuel > geometry.fuel_limit:
        return Verdict(
            False, "PDV102",
            f"worst case {fuel} steps exceeds the geometry budget "
            f"{geometry.fuel_limit}", None,
        )
    if max_emit > geometry.record_bytes:
        return Verdict(
            False, "PDV202",
            f"worst case emits {max_emit}B, more than one "
            f"{geometry.record_bytes}B record", None,
        )

    # Abstract interpretation: stack depth + value intervals.
    verdict = _abstract_pass(program, geometry, loop_of)
    if verdict is not None:
        return verdict
    max_stack = _max_stack(program, geometry, loop_of)
    return Verdict(
        True, fuel=fuel, max_stack=max_stack, max_emit=max_emit
    )


def _abstract_pass(
    program: Program,
    geometry: Geometry,
    loop_of: List[Optional[int]],
) -> Optional[Verdict]:
    """One forward pass of interval abstract interpretation.

    Sound in a single pass because nothing live crosses a loop
    back-edge: loop bodies are stack-neutral, may not reach below
    their frame, scratch reads always return full-width ranges, and
    accumulators are write-only.
    """
    code = program.code
    pending: Dict[int, List[Interval]] = {0: []}
    loop_entry_depth: Dict[int, int] = {}
    state: Optional[List[Interval]] = None
    _max_stack_seen = 0

    for pc, instr in enumerate(code):
        incoming = pending.pop(pc, None)
        if state is None:
            state = incoming
        elif incoming is not None:
            if len(incoming) != len(state):
                return Verdict(
                    False, "PDV201",
                    f"stack depth {len(incoming)} vs {len(state)} at "
                    "join", pc,
                )
            state = [
                _iv_join(a, b) for a, b in zip(state, incoming)
            ]
        if state is None:
            continue  # unreachable instruction
        op = instr.op

        # Loop-frame discipline: pops stay above the innermost frame.
        frame = loop_of[pc]
        if frame is not None and frame != pc:
            floor = loop_entry_depth.get(frame, 0)
            pops = _POPS[op]
            if len(state) - pops < floor:
                return Verdict(
                    False, "PDV201",
                    "loop body reaches below its stack frame", pc,
                )

        def pop() -> Interval:
            assert state is not None
            if not state:
                raise _Underflow
            return state.pop()

        def push(value: Interval) -> None:
            assert state is not None
            state.append(value)

        try:
            next_state: Optional[List[Interval]] = state
            if op is Op.PUSH:
                push(_iv(instr.a, instr.a))
            elif op is Op.POP:
                pop()
            elif op is Op.DUP:
                value = pop()
                push(value)
                push(value)
            elif op is Op.SWAP:
                first, second = pop(), pop()
                push(first)
                push(second)
            elif op in (Op.LOAD, Op.LOADS):
                push(_width_range(instr.b))
            elif op is Op.LOADD:
                offset = pop()
                if offset[0] < 0 or offset[1] + instr.b > (
                    geometry.record_bytes
                ):
                    return Verdict(
                        False, "PDV301",
                        f"computed offset in [{offset[0]}, "
                        f"{offset[1]}] + {instr.b}B not provably "
                        f"inside the {geometry.record_bytes}B window",
                        pc,
                    )
                push(_width_range(instr.b))
            elif op is Op.STORE:
                pop()
            elif op is Op.PUSHCTR:
                assert frame is not None  # checked structurally
                push((0, code[frame].a - 1))
            elif op is Op.ADD:
                right, left = pop(), pop()
                push(_iv_add(left, right))
            elif op is Op.SUB:
                right, left = pop(), pop()
                push(_iv_sub(left, right))
            elif op is Op.MUL:
                right, left = pop(), pop()
                push(_iv_mul(left, right))
            elif op in (Op.EQ, Op.LT, Op.GT, Op.AND, Op.OR):
                pop()
                pop()
                push(_BOOL)
            elif op is Op.NOT:
                pop()
                push(_BOOL)
            elif op is Op.MATCH:
                push(_BOOL)
            elif op is Op.EMITV:
                pop()
            elif op is Op.EMITF:
                pass
            elif op in (Op.AADD, Op.AMAX, Op.AMIN):
                pop()
            elif op is Op.ACNT:
                pass
            elif op is Op.JMP:
                pending[instr.a] = _merge_pending(
                    pending.get(instr.a), list(state), instr.a
                )
                next_state = None
            elif op is Op.JZ:
                pop()
                pending[instr.a] = _merge_pending(
                    pending.get(instr.a), list(state), instr.a
                )
            elif op is Op.LOOP:
                loop_entry_depth[pc] = len(state)
            elif op is Op.END:
                entry = loop_entry_depth.get(frame if frame is not None
                                             else -1)
                # frame of END is its own loop (loop_of[END] = LOOP pc).
                if entry is None or len(state) != entry:
                    return Verdict(
                        False, "PDV201",
                        "loop body is not stack-neutral "
                        f"(entry depth {entry}, END depth "
                        f"{len(state)})", pc,
                    )
            elif op is Op.RET:
                expected = 1 if program.kind == "filter" else 0
                if len(state) != expected:
                    return Verdict(
                        False, "PDV401",
                        f"{program.kind} must RET with stack depth "
                        f"{expected}, has {len(state)}", pc,
                    )
                next_state = None
        except _Underflow:
            return Verdict(
                False, "PDV201", "operand-stack underflow", pc
            )
        if next_state is not None and len(next_state) > STACK_LIMIT:
            return Verdict(
                False, "PDV201",
                f"stack depth {len(next_state)} exceeds "
                f"{STACK_LIMIT}", pc,
            )
        state = next_state

    # Pending merges that target past the end cannot exist (targets
    # are range-checked), so reaching here means every path RETs.
    return None


class _Underflow(Exception):
    pass


def _merge_pending(
    existing: Optional[List[Interval]],
    incoming: List[Interval],
    target: int,
) -> List[Interval]:
    if existing is None:
        return incoming
    if len(existing) != len(incoming):
        # Surfaced as PDV201 when the target pc is reached.
        return existing + [(0, 0)] * 1024  # force a depth mismatch
    return [_iv_join(a, b) for a, b in zip(existing, incoming)]


# END's loop is the LOOP it closes, not the enclosing one; patch the
# table view used above.
_POPS = {
    Op.PUSH: 0, Op.POP: 1, Op.DUP: 1, Op.SWAP: 2, Op.LOAD: 0,
    Op.LOADD: 1, Op.LOADS: 0, Op.STORE: 1, Op.PUSHCTR: 0, Op.ADD: 2,
    Op.SUB: 2, Op.MUL: 2, Op.EQ: 2, Op.LT: 2, Op.GT: 2, Op.AND: 2,
    Op.OR: 2, Op.NOT: 1, Op.JMP: 0, Op.JZ: 1, Op.LOOP: 0, Op.END: 0,
    Op.EMITF: 0, Op.EMITV: 1, Op.MATCH: 0, Op.AADD: 1, Op.AMAX: 1,
    Op.AMIN: 1, Op.ACNT: 0, Op.RET: 0,
}


def _max_stack(
    program: Program,
    geometry: Geometry,
    loop_of: List[Optional[int]],
) -> int:
    """Worst-case stack depth (the abstract pass already proved it
    bounded; this recomputes the maximum for the verdict)."""
    depth = 0
    max_depth = 0
    by_pc: Dict[int, int] = {}
    for pc, instr in enumerate(code_of(program)):
        if pc in by_pc:
            depth = max(depth, by_pc[pc])
        depth = depth - _POPS[instr.op] + _PUSHES[instr.op]
        if instr.op in (Op.JMP, Op.JZ):
            by_pc[instr.a] = max(by_pc.get(instr.a, 0), depth)
        max_depth = max(max_depth, depth)
    return max_depth


_PUSHES = {
    Op.PUSH: 1, Op.POP: 0, Op.DUP: 2, Op.SWAP: 2, Op.LOAD: 1,
    Op.LOADD: 1, Op.LOADS: 1, Op.STORE: 0, Op.PUSHCTR: 1, Op.ADD: 1,
    Op.SUB: 1, Op.MUL: 1, Op.EQ: 1, Op.LT: 1, Op.GT: 1, Op.AND: 1,
    Op.OR: 1, Op.NOT: 1, Op.JMP: 0, Op.JZ: 0, Op.LOOP: 0, Op.END: 0,
    Op.EMITF: 0, Op.EMITV: 0, Op.MATCH: 1, Op.AADD: 0, Op.AMAX: 0,
    Op.AMIN: 0, Op.ACNT: 0, Op.RET: 0,
}


def code_of(program: Program) -> Tuple[Instruction, ...]:
    return program.code


def verify(
    pipeline: Pipeline, geometry: Geometry
) -> Tuple[PipelineVerdict, Optional[VerifiedPipeline]]:
    """Verify a whole pipeline; the admission entry the datapath uses.

    Returns the typed verdict plus the proof token when every stage
    verifies (``None`` otherwise — the caller falls back to host
    execution and ships the verdict).
    """
    verdicts: List[Verdict] = []
    for program in pipeline.stages:
        verdicts.append(verify_program(program, geometry))
    for program, verdict in zip(pipeline.stages, verdicts):
        if not verdict.ok:
            summary = PipelineVerdict(
                False,
                tuple(verdicts),
                rule=verdict.rule,
                detail=f"{program.kind} stage: {verdict.detail}",
            )
            return summary, None
    if not pipeline.stages:
        summary = PipelineVerdict(
            False, (), rule="PDV401", detail="empty pipeline"
        )
        return summary, None
    fuel = sum(verdict.fuel for verdict in verdicts)
    summary = PipelineVerdict(True, tuple(verdicts), fuel=fuel)
    token = VerifiedPipeline(
        pipeline, geometry, summary, pattern=lowers_to_regex(pipeline)
    )
    return summary, token
