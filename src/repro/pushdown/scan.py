"""Storage-stack scan operators built on the verified pushdown DSL.

Two scanners share the same DDS filesystem/table plumbing:

* :class:`PushdownScanner` — the original §11 string-operator scan
  (``ship-all`` / ``dpu-software`` / ``dpu-regex``), moved here from
  :mod:`repro.extensions.pushdown` (which remains as a compatibility
  shim).  Its behaviour and costs are pinned byte-identical by
  ``tests/test_pushdown_golden.py``; what changed is that its operator
  is now *admitted*: the scanner builds the equivalent one-stage
  pipeline and requires a verifier proof token before scanning.

* :class:`PipelineScanner` — the general verified path: any admitted
  filter → project → aggregate :class:`~repro.pushdown.isa.Pipeline`
  executed by :class:`~repro.pushdown.engine.PushdownEngine` at one of
  three placements (``ship-all`` on the compute node, ``dpu-software``
  on the Arm cores, ``dpu-accel`` with the RXP absorbing a lowered
  filter).

Wire accounting: a project stage ships its emitted bytes per selected
record; an aggregate stage ships nothing per record and one
``ACC_REGS * 8``-byte register dump at the end; a bare filter ships the
selected records whole.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..hardware.cpu import CpuCore
from ..hardware.nic import NetworkLink
from ..hardware.specs import DPU_CPU, HOST_CPU
from ..sim import Environment, SeededRng
from ..storage.disk import RamDisk, SpdkBdev
from ..storage.filesystem import DdsFileSystem
from ..extensions.accelerators import (
    ARM_SOFTWARE_REGEX,
    BF2_REGEX,
    HardwareAccelerator,
    compile_pattern,
    regex_scan,
)
from .engine import PushdownEngine
from .isa import (
    ACC_REGS,
    Geometry,
    Pipeline,
    aggregate_fields,
    project_fields,
    regex_filter,
)
from .verifier import VerifiedPipeline, verify

__all__ = [
    "RECORD_BYTES",
    "PAGE_BYTES",
    "RECORDS_PER_PAGE",
    "GEOMETRY",
    "MODES",
    "PLACEMENTS",
    "PIPELINES",
    "NEEDLE_PATTERN",
    "VALUE_OFFSET",
    "WEIGHT_OFFSET",
    "ScanResult",
    "PushdownScanner",
    "run_pushdown_experiment",
    "canonical_pipeline",
    "PipelineScanResult",
    "PipelineScanner",
    "run_pipeline_experiment",
]

RECORD_BYTES = 128
PAGE_BYTES = 8192
RECORDS_PER_PAGE = PAGE_BYTES // RECORD_BYTES

#: The record/page shape every scan in this module verifies against.
GEOMETRY = Geometry(RECORD_BYTES, RECORDS_PER_PAGE)

MODES = ("ship-all", "dpu-software", "dpu-regex")

#: The byte regex the demo tables are seeded around.
NEEDLE_PATTERN = rb"needle-\d{8}"


def _make_record(index: int, rng: SeededRng, hit: bool) -> bytes:
    """A record that may contain the needle the query searches for."""
    body = bytes(97 + rng.randrange(26) for _ in range(RECORD_BYTES - 24))
    marker = b"needle-%08d" % index if hit else b"chaff--%08d" % index
    return (marker + body)[:RECORD_BYTES].ljust(RECORD_BYTES, b".")


class PushdownScanner:
    """A table of records in the DDS filesystem plus a scan operator."""

    def __init__(
        self,
        env: Environment,
        pages: int = 128,
        selectivity: float = 0.05,
        mode: str = "dpu-regex",
        seed: int = 55,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode: {mode!r}")
        if not 0 <= selectivity <= 1:
            raise ValueError("selectivity must be in [0, 1]")
        self.env = env
        self.mode = mode
        self.pages = pages
        self.link = NetworkLink(env)
        self.fs = DdsFileSystem(
            env, SpdkBdev(env, RamDisk(pages * PAGE_BYTES + (32 << 20)))
        )
        self.fs.create_directory("table")
        self.file_id = self.fs.create_file("table", "records")
        self.spdk_core = CpuCore(env, speed=DPU_CPU.speed, name="spdk")
        self.scan_core = CpuCore(env, speed=DPU_CPU.speed, name="scan")
        if mode == "dpu-regex":
            self.engine: Optional[HardwareAccelerator] = HardwareAccelerator(
                env, BF2_REGEX
            )
        elif mode == "dpu-software":
            self.engine = HardwareAccelerator(
                env, ARM_SOFTWARE_REGEX, software_core=self.scan_core
            )
        else:
            self.engine = None
        # Admission: even this fixed operator goes through the verifier
        # now.  The proof token also certifies the RXP lowering the
        # ``dpu-regex`` mode relies on (``token.pattern``).
        self.admission, token = verify(
            Pipeline((regex_filter(NEEDLE_PATTERN),)), GEOMETRY
        )
        if token is None or token.pattern is None:  # pragma: no cover
            raise AssertionError(
                f"needle scan failed admission: {self.admission.explain()}"
            )
        self.token: VerifiedPipeline = token
        rng = SeededRng(seed)
        self.expected_hits = 0
        for page_id in range(pages):
            records = []
            for slot in range(RECORDS_PER_PAGE):
                hit = rng.random() < selectivity
                self.expected_hits += hit
                records.append(
                    _make_record(page_id * RECORDS_PER_PAGE + slot, rng, hit)
                )
            self.fs.write_sync(
                self.file_id, page_id * PAGE_BYTES, b"".join(records)
            )
        self.pattern = compile_pattern(self.token.pattern)
        self.wire_bytes = 0

    # ------------------------------------------------------------------
    # scan
    # ------------------------------------------------------------------
    def scan_page(self, page_id: int) -> Generator:
        """Scan one page; returns the matching records at the client."""
        yield from self.spdk_core.execute(0.35e-6)
        page = yield self.env.process(
            self.fs.read(self.file_id, page_id * PAGE_BYTES, PAGE_BYTES)
        )
        if self.mode == "ship-all":
            # Ship the whole page; the compute node filters.
            yield from self.link.transmit("server_to_client", PAGE_BYTES)
            self.wire_bytes += PAGE_BYTES
            return regex_scan(page, self.pattern, RECORD_BYTES)
        # Pushdown: evaluate on the DPU, ship matches only.
        yield from self.engine.process(PAGE_BYTES)
        matches = regex_scan(page, self.pattern, RECORD_BYTES)
        payload = len(matches) * RECORD_BYTES
        if payload:
            yield from self.link.transmit("server_to_client", payload)
        self.wire_bytes += payload
        return matches

    def scan_table(self, concurrency: int = 16) -> Generator:
        """Scan every page; returns all matches."""
        results: List[Tuple[int, bytes]] = []

        def worker(page_ids):
            for page_id in page_ids:
                matches = yield self.env.process(self.scan_page(page_id))
                results.extend(matches)

        chunks = [
            list(range(start, self.pages, concurrency))
            for start in range(concurrency)
        ]
        workers = [self.env.process(worker(chunk)) for chunk in chunks]
        yield self.env.all_of(workers)
        return results


@dataclass
class ScanResult:
    """Outcome of one pushdown experiment."""

    mode: str
    scan_seconds: float
    matches: int
    wire_bytes: int
    arm_core_seconds: float


def run_pushdown_experiment(
    mode: str,
    pages: int = 128,
    selectivity: float = 0.05,
    seed: int = 55,
) -> ScanResult:
    """Full-table scan at one operator placement."""
    env = Environment()
    scanner = PushdownScanner(
        env, pages=pages, selectivity=selectivity, mode=mode, seed=seed
    )
    proc = env.process(scanner.scan_table())
    env.run(until=proc)
    matches = proc.value
    assert len(matches) == scanner.expected_hits
    assert all(record.startswith(b"needle-") for _idx, record in matches)
    return ScanResult(
        mode=mode,
        scan_seconds=env.now,
        matches=len(matches),
        wire_bytes=scanner.wire_bytes,
        arm_core_seconds=scanner.scan_core.busy_time,
    )


# ----------------------------------------------------------------------
# verified pipeline scans
# ----------------------------------------------------------------------

#: Where the verified pipeline executes.
PLACEMENTS = ("ship-all", "dpu-software", "dpu-accel")

#: Canonical operator pipelines the bench sweeps.
PIPELINES = ("filter", "filter-project", "filter-project-agg")

#: LE u32 "value" column offset in the pipeline tables.
VALUE_OFFSET = 16

#: LE u32 "weight" column offset in the pipeline tables.
WEIGHT_OFFSET = 20


def canonical_pipeline(name: str) -> Pipeline:
    """The named operator pipeline over the pipeline-table layout."""
    filt = regex_filter(NEEDLE_PATTERN)
    if name == "filter":
        return Pipeline((filt,))
    project = project_fields(((0, 8), (VALUE_OFFSET, 4)))
    if name == "filter-project":
        return Pipeline((filt, project))
    if name == "filter-project-agg":
        aggregate = aggregate_fields(
            (VALUE_OFFSET, 4), max_field=(WEIGHT_OFFSET, 4)
        )
        return Pipeline((filt, project, aggregate))
    raise ValueError(f"unknown pipeline: {name!r} (want one of {PIPELINES})")


def _make_pipeline_record(index: int, rng: SeededRng, hit: bool) -> bytes:
    """Marker at 0, u32 value at 16, u32 weight at 20, random tail."""
    marker = b"needle-%08d" % index if hit else b"chaff--%08d" % index
    value = rng.randrange(10_000)
    weight = rng.randrange(100)
    tail = bytes(
        97 + rng.randrange(26) for _ in range(RECORD_BYTES - WEIGHT_OFFSET - 4)
    )
    record = (
        marker.ljust(VALUE_OFFSET, b".")
        + value.to_bytes(4, "little")
        + weight.to_bytes(4, "little")
        + tail
    )
    assert len(record) == RECORD_BYTES
    return record


class PipelineScanner:
    """A pipeline-table plus a verified pushdown scan at one placement.

    Construction *is* admission: the pipeline goes through
    :func:`~repro.pushdown.verifier.verify` and an unverifiable one is
    refused here with the typed verdict (callers that want graceful host
    fallback — :meth:`repro.topology.sharding.ShardedOffloadServer.
    pushdown_scan` — call ``verify`` themselves first).
    """

    def __init__(
        self,
        env: Environment,
        pipeline: Pipeline,
        pages: int = 64,
        selectivity: float = 0.05,
        placement: str = "dpu-accel",
        seed: int = 55,
    ) -> None:
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement: {placement!r}")
        if not 0 <= selectivity <= 1:
            raise ValueError("selectivity must be in [0, 1]")
        self.admission, token = verify(pipeline, GEOMETRY)
        if token is None:
            raise ValueError(
                f"pipeline refused admission: {self.admission.explain()}"
            )
        self.token: VerifiedPipeline = token
        self.env = env
        self.placement = placement
        self.pages = pages
        self.has_project = pipeline.stage("project") is not None
        self.has_aggregate = pipeline.stage("aggregate") is not None
        self.link = NetworkLink(env)
        self.fs = DdsFileSystem(
            env, SpdkBdev(env, RamDisk(pages * PAGE_BYTES + (32 << 20)))
        )
        self.fs.create_directory("table")
        self.file_id = self.fs.create_file("table", "records")
        self.spdk_core = CpuCore(env, speed=DPU_CPU.speed, name="spdk")
        self.dpu_core = CpuCore(env, speed=DPU_CPU.speed, name="pushdown")
        self.client_core = CpuCore(env, speed=HOST_CPU.speed, name="client")
        if placement == "ship-all":
            self.engine = PushdownEngine(env, self.client_core)
        elif placement == "dpu-software":
            self.engine = PushdownEngine(env, self.dpu_core)
        else:
            accelerator = (
                HardwareAccelerator(env, BF2_REGEX)
                if token.pattern is not None
                else None
            )
            self.engine = PushdownEngine(env, self.dpu_core, accelerator)
        rng = SeededRng(seed)
        self.expected_hits = 0
        self.expected_sum = 0
        self.expected_max_weight = 0
        for page_id in range(pages):
            records = []
            for slot in range(RECORDS_PER_PAGE):
                hit = rng.random() < selectivity
                record = _make_pipeline_record(
                    page_id * RECORDS_PER_PAGE + slot, rng, hit
                )
                if hit:
                    self.expected_hits += 1
                    value = int.from_bytes(
                        record[VALUE_OFFSET:VALUE_OFFSET + 4], "little"
                    )
                    weight = int.from_bytes(
                        record[WEIGHT_OFFSET:WEIGHT_OFFSET + 4], "little"
                    )
                    self.expected_sum += value
                    self.expected_max_weight = max(
                        self.expected_max_weight, weight
                    )
                records.append(record)
            self.fs.write_sync(
                self.file_id, page_id * PAGE_BYTES, b"".join(records)
            )
        self.wire_bytes = 0

    def _page_payload(self, emitted: List[bytes], selected: int) -> int:
        """Bytes a scanned page puts on the wire under pushdown."""
        if self.has_project:
            return sum(len(chunk) for chunk in emitted)
        if self.has_aggregate:
            return 0
        return selected * RECORD_BYTES

    def scan_page(self, page_id: int) -> Generator:
        """Scan one page through the verified engine."""
        yield from self.spdk_core.execute(0.35e-6)
        page = yield self.env.process(
            self.fs.read(self.file_id, page_id * PAGE_BYTES, PAGE_BYTES)
        )
        if self.placement == "ship-all":
            yield from self.link.transmit("server_to_client", PAGE_BYTES)
            self.wire_bytes += PAGE_BYTES
            outcome = yield from self.engine.execute_page(self.token, page)
            return outcome.selected
        outcome = yield from self.engine.execute_page(self.token, page)
        payload = self._page_payload(outcome.emitted, len(outcome.selected))
        if payload:
            yield from self.link.transmit("server_to_client", payload)
        self.wire_bytes += payload
        return outcome.selected

    def scan_table(self, concurrency: int = 16) -> Generator:
        """Scan every page; returns all selected records."""
        results: List[Tuple[int, bytes]] = []

        def worker(page_ids):
            for page_id in page_ids:
                matches = yield self.env.process(self.scan_page(page_id))
                results.extend(matches)

        chunks = [
            list(range(start, self.pages, concurrency))
            for start in range(concurrency)
        ]
        workers = [self.env.process(worker(chunk)) for chunk in chunks]
        yield self.env.all_of(workers)
        if self.has_aggregate and self.placement != "ship-all":
            # The folded registers are the aggregate's entire answer.
            yield from self.link.transmit("server_to_client", ACC_REGS * 8)
            self.wire_bytes += ACC_REGS * 8
        return results

    @property
    def acc(self) -> Tuple[int, ...]:
        """The engine's accumulator registers (aggregate results)."""
        return tuple(self.engine.acc)


@dataclass
class PipelineScanResult:
    """Outcome of one verified-pipeline experiment."""

    placement: str
    pipeline: str
    scan_seconds: float
    rows: int
    wire_bytes: int
    dpu_core_seconds: float
    client_core_seconds: float
    acc: Tuple[int, ...]


def run_pipeline_experiment(
    placement: str,
    pipeline: str = "filter-project-agg",
    pages: int = 64,
    selectivity: float = 0.05,
    seed: int = 55,
) -> PipelineScanResult:
    """Full-table verified-pipeline scan at one placement."""
    env = Environment()
    scanner = PipelineScanner(
        env,
        canonical_pipeline(pipeline),
        pages=pages,
        selectivity=selectivity,
        placement=placement,
        seed=seed,
    )
    proc = env.process(scanner.scan_table())
    env.run(until=proc)
    selected = proc.value
    assert len(selected) == scanner.expected_hits
    assert all(record.startswith(b"needle-") for _slot, record in selected)
    if scanner.has_aggregate:
        acc = scanner.acc
        assert acc[0] == scanner.expected_sum
        assert acc[1] == scanner.expected_hits
        assert acc[2] == scanner.expected_max_weight
    return PipelineScanResult(
        placement=placement,
        pipeline=pipeline,
        scan_seconds=env.now,
        rows=len(selected),
        wire_bytes=scanner.wire_bytes,
        dpu_core_seconds=scanner.dpu_core.busy_time,
        client_core_seconds=scanner.client_core.busy_time,
        acc=scanner.acc,
    )
