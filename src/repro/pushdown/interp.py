"""Fueled reference interpreter for the pushdown bytecode.

This is the *raw* execution entry: it runs any :class:`~repro.pushdown.
isa.Program`, verified or not, and therefore defends every resource at
runtime — fuel, the record window, the scratch buffer, the operand
stack.  A violation raises a typed :class:`Trap`; the interpreter never
reads a byte outside the record window and never runs past its fuel,
no matter what bytecode it is fed (the hypothesis suite in
``tests/test_pushdown_properties.py`` hammers exactly this contract).

Admitted programs reach the DPU through :func:`repro.pushdown.verifier.
verify` instead, which proves these traps unreachable up front; direct
calls to :func:`interpret`/:func:`interpret_pipeline` outside the
pushdown machinery are what ddslint's DDS501 exists to flag.

Arithmetic is saturating at the signed-64-bit bounds (not wrapping), so
the verifier's interval analysis is sound without modular reasoning.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Pattern, Tuple

from .isa import (
    ACC_REGS,
    I64_MAX,
    I64_MIN,
    SCRATCH_LIMIT,
    STACK_LIMIT,
    WIDTHS,
    Geometry,
    Instruction,
    Op,
    Pipeline,
    Program,
)

__all__ = [
    "Trap",
    "FuelTrap",
    "WindowTrap",
    "StackTrap",
    "ScratchTrap",
    "OperandTrap",
    "ExecStats",
    "StageResult",
    "interpret",
    "interpret_pipeline",
]


class Trap(Exception):
    """A runtime guard fired: the program tried to exceed a resource."""


class FuelTrap(Trap):
    """Step budget exhausted (a loop the verifier would have rejected)."""


class WindowTrap(Trap):
    """Attempted read outside the record window (the shared-state rule
    enforced dynamically: bytes beyond the window belong to other
    records, i.e. state the program does not own)."""


class StackTrap(Trap):
    """Operand-stack overflow or underflow."""


class ScratchTrap(Trap):
    """Scratch-buffer access outside the declared bounds."""


class OperandTrap(Trap):
    """Malformed instruction: bad width, register, target, or pattern."""


@dataclass
class ExecStats:
    """What one interpretation actually executed (drives cycle costs)."""

    counts: Dict[Op, int] = field(default_factory=dict)
    steps: int = 0
    match_bytes: int = 0

    def count(self, op: Op) -> None:
        self.steps += 1
        self.counts[op] = self.counts.get(op, 0) + 1

    def merge(self, other: "ExecStats") -> None:
        self.steps += other.steps
        self.match_bytes += other.match_bytes
        for op, count in other.counts.items():
            self.counts[op] = self.counts.get(op, 0) + count


@dataclass
class StageResult:
    """Outcome of one program over one record."""

    selected: bool
    emitted: bytes
    stats: ExecStats


@lru_cache(maxsize=256)
def _compiled(patterns: Tuple[bytes, ...]) -> Tuple[Pattern[bytes], ...]:
    return tuple(re.compile(pattern) for pattern in patterns)


def _clamp(value: int) -> int:
    if value > I64_MAX:
        return I64_MAX
    if value < I64_MIN:
        return I64_MIN
    return value


def interpret(
    program: Program,
    record: bytes,
    geometry: Geometry,
    fuel: int,
    acc: Optional[List[int]] = None,
    *,
    stack_limit: int = STACK_LIMIT,
) -> StageResult:
    """Run one program over one record under a hard step budget.

    ``acc`` (length :data:`~repro.pushdown.isa.ACC_REGS`) is mutated in
    place by the accumulator opcodes; pass the same list across records
    to fold an aggregate.  Raises a :class:`Trap` subclass on any
    resource violation — and nothing else.

    ``stack_limit`` defaults to the DPU admission bound; the host
    fallback path raises it (host memory is not the scarce resource the
    verifier protects) so a program rejected *for DPU limits* still
    computes its answer on the host.
    """
    if len(record) != geometry.record_bytes:
        raise WindowTrap(
            f"record is {len(record)}B, geometry says "
            f"{geometry.record_bytes}B"
        )
    code = program.code
    try:
        patterns = _compiled(program.patterns)
    except re.error as exc:
        raise OperandTrap(f"invalid pattern: {exc}") from None
    if not 0 <= program.scratch <= SCRATCH_LIMIT:
        raise ScratchTrap(f"scratch size {program.scratch} out of range")
    scratch = bytearray(program.scratch)
    stack: List[int] = []
    loops: List[List[int]] = []  # [start_pc, remaining, trip]
    emitted = bytearray()
    stats = ExecStats()
    if acc is None:
        acc = [0] * ACC_REGS
    selected = program.kind != "filter"

    def pop() -> int:
        if not stack:
            raise StackTrap("operand-stack underflow")
        return stack.pop()

    def push(value: int) -> None:
        if len(stack) >= stack_limit:
            raise StackTrap("operand-stack overflow")
        stack.append(_clamp(value))

    def window(offset: int, width: int) -> bytes:
        if width not in WIDTHS:
            raise OperandTrap(f"bad load width {width}")
        if offset < 0 or offset + width > geometry.record_bytes:
            raise WindowTrap(
                f"load [{offset}:{offset + width}] outside the "
                f"{geometry.record_bytes}B record window"
            )
        return record[offset:offset + width]

    pc = 0
    while True:
        if pc >= len(code):
            raise OperandTrap("fell off the end of the program (no RET)")
        if stats.steps >= fuel:
            raise FuelTrap(f"fuel exhausted after {stats.steps} steps")
        instr = code[pc]
        op = instr.op
        stats.count(op)
        next_pc = pc + 1
        if op is Op.PUSH:
            push(instr.a)
        elif op is Op.POP:
            pop()
        elif op is Op.DUP:
            value = pop()
            push(value)
            push(value)
        elif op is Op.SWAP:
            first, second = pop(), pop()
            push(first)
            push(second)
        elif op is Op.LOAD:
            push(int.from_bytes(window(instr.a, instr.b), "little"))
        elif op is Op.LOADD:
            push(int.from_bytes(window(pop(), instr.b), "little"))
        elif op is Op.LOADS:
            if instr.b not in WIDTHS:
                raise OperandTrap(f"bad load width {instr.b}")
            if instr.a < 0 or instr.a + instr.b > len(scratch):
                raise ScratchTrap(
                    f"scratch read [{instr.a}:{instr.a + instr.b}] "
                    f"outside {len(scratch)}B"
                )
            push(
                int.from_bytes(
                    scratch[instr.a:instr.a + instr.b], "little"
                )
            )
        elif op is Op.STORE:
            if instr.b not in WIDTHS:
                raise OperandTrap(f"bad store width {instr.b}")
            if instr.a < 0 or instr.a + instr.b > len(scratch):
                raise ScratchTrap(
                    f"scratch write [{instr.a}:{instr.a + instr.b}] "
                    f"outside {len(scratch)}B"
                )
            value = pop() & ((1 << (8 * instr.b)) - 1)
            scratch[instr.a:instr.a + instr.b] = value.to_bytes(
                instr.b, "little"
            )
        elif op is Op.PUSHCTR:
            if not loops:
                raise OperandTrap("PUSHCTR outside a loop")
            start, remaining, trip = loops[-1]
            push(trip - remaining)
        elif op is Op.ADD:
            push(pop() + pop())
        elif op is Op.SUB:
            right, left = pop(), pop()
            push(left - right)
        elif op is Op.MUL:
            push(pop() * pop())
        elif op is Op.EQ:
            push(1 if pop() == pop() else 0)
        elif op is Op.LT:
            right, left = pop(), pop()
            push(1 if left < right else 0)
        elif op is Op.GT:
            right, left = pop(), pop()
            push(1 if left > right else 0)
        elif op is Op.AND:
            right, left = pop(), pop()
            push(1 if left and right else 0)
        elif op is Op.OR:
            right, left = pop(), pop()
            push(1 if left or right else 0)
        elif op is Op.NOT:
            push(0 if pop() else 1)
        elif op is Op.JMP:
            if not 0 <= instr.a < len(code):
                raise OperandTrap(f"jump target {instr.a} out of range")
            next_pc = instr.a
        elif op is Op.JZ:
            if not 0 <= instr.a < len(code):
                raise OperandTrap(f"jump target {instr.a} out of range")
            if pop() == 0:
                next_pc = instr.a
        elif op is Op.LOOP:
            if instr.a < 1:
                raise OperandTrap(f"loop trip {instr.a} must be >= 1")
            loops.append([pc, instr.a, instr.a])
        elif op is Op.END:
            if not loops:
                raise OperandTrap("END without a matching LOOP")
            frame = loops[-1]
            frame[1] -= 1
            if frame[1] > 0:
                next_pc = frame[0] + 1
            else:
                loops.pop()
        elif op is Op.EMITF:
            emitted.extend(window(instr.a, instr.b))
        elif op is Op.EMITV:
            if instr.b not in WIDTHS:
                raise OperandTrap(f"bad emit width {instr.b}")
            value = pop() & ((1 << (8 * instr.b)) - 1)
            emitted.extend(value.to_bytes(instr.b, "little"))
        elif op is Op.MATCH:
            if not 0 <= instr.a < len(patterns):
                raise OperandTrap(f"pattern index {instr.a} out of range")
            stats.match_bytes += len(record)
            push(1 if patterns[instr.a].search(record) else 0)
        elif op is Op.AADD or op is Op.AMAX or op is Op.AMIN:
            if not 0 <= instr.a < ACC_REGS:
                raise OperandTrap(f"accumulator {instr.a} out of range")
            value = pop()
            if op is Op.AADD:
                acc[instr.a] = _clamp(acc[instr.a] + value)
            elif op is Op.AMAX:
                acc[instr.a] = max(acc[instr.a], value)
            else:
                acc[instr.a] = min(acc[instr.a], value)
        elif op is Op.ACNT:
            if not 0 <= instr.a < ACC_REGS:
                raise OperandTrap(f"accumulator {instr.a} out of range")
            acc[instr.a] = _clamp(acc[instr.a] + 1)
        elif op is Op.RET:
            if program.kind == "filter":
                selected = pop() != 0
            return StageResult(selected, bytes(emitted), stats)
        else:  # pragma: no cover - enum is closed
            raise OperandTrap(f"unknown opcode {op!r}")
        pc = next_pc


def interpret_pipeline(
    pipeline: Pipeline,
    record: bytes,
    geometry: Geometry,
    fuel: int,
    acc: Optional[List[int]] = None,
    *,
    stack_limit: int = STACK_LIMIT,
) -> StageResult:
    """Run a whole pipeline over one record (raw entry; see DDS501).

    The filter gates the later stages: a rejected record costs only the
    filter's steps.  ``fuel`` bounds each stage independently.
    """
    stats = ExecStats()
    emitted = b""
    selected = True
    for program in pipeline.stages:
        if program.kind != "filter" and not selected:
            break
        result = interpret(
            program, record, geometry, fuel, acc=acc,
            stack_limit=stack_limit,
        )
        stats.merge(result.stats)
        if program.kind == "filter":
            selected = result.selected
        elif program.kind == "project":
            emitted = result.emitted
    return StageResult(selected, emitted, stats)
