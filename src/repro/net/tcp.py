"""A compact TCP model: sequence numbers, cumulative ACKs, congestion.

The model exists to reproduce §5.2's core problem (Figure 11): when a DPU
silently consumes ("offloads") some segments of a client→host connection,
the host's TCP sees a sequence-number gap, emits duplicate ACKs, and the
client fast-retransmits everything the DPU already handled.  DDS fixes
this with a TCP-splitting performance-enhancing proxy
(:mod:`repro.net.pep`).

The state machines are *pure* (no simulation clock): tests and the PEP
drive them by exchanging :class:`~repro.net.packet.Segment` objects, so
the retransmission behaviour is deterministic and directly assertable.
Congestion control is NewReno-flavoured: slow start, congestion
avoidance, triple-duplicate-ACK fast retransmit with window halving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .packet import Segment

__all__ = ["TcpSender", "TcpReceiver", "TcpStats", "MSS"]

#: Maximum segment size: MTU 1500 minus 40 bytes of IP+TCP headers.
MSS = 1460


@dataclass
class TcpStats:
    """Counters that the Figure 11 experiment asserts on."""

    segments_sent: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    dup_acks_received: int = 0
    dup_acks_sent: int = 0
    acks_sent: int = 0
    bytes_delivered: int = 0


class TcpSender:
    """Sender half: windowed transmission and loss recovery.

    Loss recovery is two-tier, as in real TCP: triple-duplicate-ACK fast
    retransmit for losses inside a flight, and a retransmission timeout
    (driven by :meth:`on_tick`) for tail losses where no further ACKs
    arrive to generate duplicates.
    """

    #: Ticks without ACK progress before a timeout retransmission.
    RTO_TICKS = 3

    def __init__(
        self,
        initial_cwnd: int = 10,
        ssthresh: int = 64,
        mss: int = MSS,
    ) -> None:
        self.mss = mss
        self._stalled_ticks = 0
        self.snd_una = 0           # oldest unacknowledged byte
        self.snd_nxt = 0           # next new byte to send
        self.cwnd = initial_cwnd   # congestion window, in segments
        self.ssthresh = ssthresh
        self._dup_ack_count = 0
        self._last_ack = 0
        self._ca_credit = 0.0  # fractional cwnd growth in congestion avoidance
        self._queue: List[bytes] = []   # app bytes not yet segmented
        self._queued_bytes = 0
        self._sent: Dict[int, Segment] = {}  # seq -> in-flight segment
        self.stats = TcpStats()

    # ------------------------------------------------------------------
    # application side
    # ------------------------------------------------------------------
    def write(self, data: bytes) -> None:
        """Queue application bytes for transmission."""
        if data:
            self._queue.append(data)
            self._queued_bytes += len(data)

    @property
    def bytes_in_flight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def window_bytes(self) -> int:
        """Unused congestion-window space, in bytes."""
        return max(0, self.cwnd * self.mss - self.bytes_in_flight)

    # ------------------------------------------------------------------
    # wire side
    # ------------------------------------------------------------------
    def transmit(self) -> List[Segment]:
        """Emit as many new segments as the window allows."""
        segments: List[Segment] = []
        budget = self.window_bytes
        pending = b"".join(self._queue)
        self._queue = [pending] if pending else []
        taken = 0
        while taken < len(pending) and budget > 0:
            size = min(self.mss, len(pending) - taken, budget)
            data = pending[taken : taken + size]
            segment = Segment(seq=self.snd_nxt, payload_len=size, data=data)
            self._sent[segment.seq] = segment
            self.snd_nxt += size
            segments.append(segment)
            self.stats.segments_sent += 1
            taken += size
            budget -= size
        remainder = pending[taken:]
        self._queue = [remainder] if remainder else []
        self._queued_bytes = len(remainder)
        return segments

    def on_tick(self) -> List[Segment]:
        """Advance the retransmission timer; fires an RTO when stalled.

        Call once per round-trip-scale interval while data is in flight.
        On timeout the oldest unacknowledged segment is retransmitted and
        the congestion window collapses (classic RTO behaviour).
        """
        if self.bytes_in_flight == 0:
            self._stalled_ticks = 0
            return []
        self._stalled_ticks += 1
        if self._stalled_ticks < self.RTO_TICKS:
            return []
        self._stalled_ticks = 0
        self.ssthresh = max(2, self.cwnd // 2)
        self.cwnd = max(2, self.cwnd // 2)
        segment = self._sent.get(self.snd_una)
        if segment is None:
            return []
        self.stats.retransmissions += 1
        return [
            Segment(
                seq=segment.seq,
                payload_len=segment.payload_len,
                data=segment.data,
            )
        ]

    def on_ack(self, ack: int) -> List[Segment]:
        """Process a cumulative ACK; returns any retransmissions."""
        retransmits: List[Segment] = []
        if ack > self.snd_una:
            # New data acknowledged.
            for seq in [s for s in self._sent if s < ack]:
                del self._sent[seq]
            self.snd_una = ack
            self._dup_ack_count = 0
            self._stalled_ticks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += 1  # slow start
            else:
                # Congestion avoidance: +1 segment per window of ACKs.
                self._ca_credit += 1.0 / self.cwnd
                if self._ca_credit >= 1.0:
                    self.cwnd += 1
                    self._ca_credit -= 1.0
        elif ack == self._last_ack and ack < self.snd_nxt:
            # Duplicate ACK for outstanding data.
            self._dup_ack_count += 1
            self.stats.dup_acks_received += 1
            if self._dup_ack_count == 3:
                retransmits = self._fast_retransmit(ack)
        self._last_ack = ack
        return retransmits

    def _fast_retransmit(self, ack: int) -> List[Segment]:
        """Go-back from the gap: resend everything not yet acknowledged.

        Figure 11's pathology: 'the client will resend all the packets
        between the expected sequence number and the one received by the
        server' — i.e. the whole range the DPU already consumed.
        """
        self.ssthresh = max(2, self.cwnd // 2)
        self.cwnd = self.ssthresh
        self.stats.fast_retransmits += 1
        resent: List[Segment] = []
        for seq in sorted(self._sent):
            if seq >= ack:
                original = self._sent[seq]
                copy = Segment(
                    seq=original.seq,
                    payload_len=original.payload_len,
                    data=original.data,
                )
                resent.append(copy)
                self.stats.retransmissions += 1
        return resent


class TcpReceiver:
    """Receiver half: in-order delivery and duplicate-ACK generation."""

    def __init__(self) -> None:
        self.rcv_nxt = 0
        self._out_of_order: Dict[int, Segment] = {}
        self._delivered: List[bytes] = []
        self.stats = TcpStats()

    def on_segment(self, segment: Segment) -> Segment:
        """Accept one segment; returns the ACK to send back."""
        if segment.seq == self.rcv_nxt:
            self._deliver(segment)
            # Drain any buffered out-of-order segments that now fit.
            while self.rcv_nxt in self._out_of_order:
                self._deliver(self._out_of_order.pop(self.rcv_nxt))
            self.stats.acks_sent += 1
            return Segment(seq=0, payload_len=0, ack=self.rcv_nxt)
        if segment.seq > self.rcv_nxt:
            # Gap: buffer and send a duplicate ACK (triggers the sender's
            # fast retransmit after three of these).
            self._out_of_order.setdefault(segment.seq, segment)
            self.stats.dup_acks_sent += 1
            self.stats.acks_sent += 1
            return Segment(seq=0, payload_len=0, ack=self.rcv_nxt)
        # Entirely old data: re-ACK.
        self.stats.acks_sent += 1
        return Segment(seq=0, payload_len=0, ack=self.rcv_nxt)

    def _deliver(self, segment: Segment) -> None:
        self.rcv_nxt = segment.end_seq
        self.stats.bytes_delivered += segment.payload_len
        if segment.data is not None:
            self._delivered.append(segment.data)

    def read(self) -> bytes:
        """Drain the in-order byte stream delivered so far."""
        data = b"".join(self._delivered)
        self._delivered = []
        return data


def connect() -> tuple:
    """Convenience: a fresh (sender, receiver) pair."""
    return TcpSender(), TcpReceiver()
