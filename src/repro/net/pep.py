"""Transport transparency: TCP splitting vs. naive partial offload (§5.2).

Two ways for a DPU to take over part of a client→host TCP connection:

* :class:`NaiveOffloadPath` — the broken strawman of Figure 11.  The DPU
  silently consumes offloadable segments and forwards the rest to the
  host *unmodified*.  The host's TCP sees sequence-number gaps where the
  DPU consumed bytes, emits duplicate ACKs, and the client's fast
  retransmit resends everything the DPU already served.
* :class:`TcpSplittingPep` — DDS's fix.  The traffic director acts as a
  performance-enhancing proxy that terminates the client connection on
  the DPU and relays host-bound *messages* over a second, independent
  DPU→host connection.  Both connections see perfectly in-order streams,
  so no spurious recovery is ever triggered.

User messages are framed with a 4-byte length prefix
(:class:`LengthPrefixFramer`), matching the request encoding of Figure 9.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Tuple

from .packet import Segment
from .tcp import TcpReceiver, TcpSender

__all__ = ["LengthPrefixFramer", "TcpSplittingPep", "NaiveOffloadPath"]

_LEN = struct.Struct("<I")


class LengthPrefixFramer:
    """Reassembles length-prefixed messages from a TCP byte stream."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        """Append stream bytes; return every complete message."""
        self._buffer.extend(data)
        messages: List[bytes] = []
        while True:
            if len(self._buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack(self._buffer[: _LEN.size])
            total = _LEN.size + length
            if len(self._buffer) < total:
                break
            messages.append(bytes(self._buffer[_LEN.size : total]))
            del self._buffer[:total]
        return messages

    @staticmethod
    def encode(message: bytes) -> bytes:
        """Frame one message for transmission."""
        return _LEN.pack(len(message)) + message

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete message."""
        return len(self._buffer)


class TcpSplittingPep:
    """DDS's traffic director as a TCP-splitting PEP.

    The client connection terminates at the DPU (``client_side``
    receiver); a second connection (``host_sender`` → the host's
    receiver) relays messages the offload predicate rejects.  The
    ``off_pred`` callable receives each reassembled user message and
    returns True to offload it to the DPU's offload engine.
    """

    def __init__(self, off_pred: Callable[[bytes], bool]) -> None:
        self.off_pred = off_pred
        self.client_side = TcpReceiver()
        self.host_sender = TcpSender()
        # Response legs: the host answers on its connection (received
        # here) and the proxy relays every response — host-produced or
        # DPU-produced — to the client on the client connection's
        # reverse direction, as one ordered stream.
        self.client_sender = TcpSender()
        self.host_response_side = TcpReceiver()
        self._framer = LengthPrefixFramer()
        self._host_response_framer = LengthPrefixFramer()
        self.offloaded: List[bytes] = []
        self.forwarded: List[bytes] = []
        self.responses_relayed = 0

    def on_client_segment(
        self, segment: Segment
    ) -> Tuple[Segment, List[Segment]]:
        """Process one client segment.

        Returns ``(ack_to_client, segments_for_host)``.  The ACK belongs
        to the client↔DPU connection; the host segments belong to the
        DPU↔host connection and carry *its* sequence space.
        """
        ack = self.client_side.on_segment(segment)
        data = self.client_side.read()
        for message in self._framer.feed(data):
            if self.off_pred(message):
                self.offloaded.append(message)
            else:
                self.forwarded.append(message)
                self.host_sender.write(LengthPrefixFramer.encode(message))
        return ack, self.host_sender.transmit()

    def on_host_ack(self, ack: Segment) -> List[Segment]:
        """Feed an ACK from the host connection back to the relay sender."""
        if ack.ack is None:
            raise ValueError("segment is not an ACK")
        return self.host_sender.on_ack(ack.ack)

    # ------------------------------------------------------------------
    # response path (DPU -> client)
    # ------------------------------------------------------------------
    def send_response(self, message: bytes) -> List[Segment]:
        """Queue one response (e.g., from the offload engine) for the
        client and emit whatever the client-leg window allows."""
        self.client_sender.write(LengthPrefixFramer.encode(message))
        self.responses_relayed += 1
        return self.client_sender.transmit()

    def on_host_response_segment(
        self, segment: Segment
    ) -> Tuple[Segment, List[Segment]]:
        """A response segment arriving from the host connection.

        Returns ``(ack_to_host, segments_for_client)``: complete host
        responses are re-framed onto the client leg, interleaving with
        offloaded responses in one ordered stream.
        """
        ack = self.host_response_side.on_segment(segment)
        data = self.host_response_side.read()
        client_segments: List[Segment] = []
        for message in self._host_response_framer.feed(data):
            client_segments += self.send_response(message)
        return ack, client_segments

    def on_client_ack(self, ack: Segment) -> List[Segment]:
        """Client ACK for relayed responses; returns retransmissions."""
        if ack.ack is None:
            raise ValueError("segment is not an ACK")
        return self.client_sender.on_ack(ack.ack)


class NaiveOffloadPath:
    """The Figure 11 strawman: consume offloaded segments, forward the rest.

    No proxying — forwarded segments keep their original client sequence
    numbers, so the host receiver observes gaps exactly where the DPU
    consumed data.
    """

    def __init__(self, off_pred: Callable[[Segment], bool]) -> None:
        self.off_pred = off_pred
        self.host_receiver = TcpReceiver()
        self.offloaded: List[Segment] = []

    def on_client_segment(self, segment: Segment) -> Optional[Segment]:
        """Returns the host's ACK, or None when the DPU consumed the segment."""
        if self.off_pred(segment):
            self.offloaded.append(segment)
            return None
        return self.host_receiver.on_segment(segment)
