"""Network-stack cost models bound to CPUs.

A :class:`StackLayer` charges a CPU (host pool or a dedicated DPU core)
for processing a message through one stack — kernel TCP, the DBMS's
network module, TLDK, RDMA verbs — and adds the stack's fixed pipeline
latency.  Specs live in :mod:`repro.hardware.specs`; this module is the
glue that turns them into simulated time and cores-consumed.
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from ..hardware.cpu import CpuCore, CpuPool
from ..hardware.specs import StackSpec
from ..sim import Environment

__all__ = ["StackLayer"]


class StackLayer:
    """One processing layer: CPU charge plus pipeline latency per message."""

    def __init__(
        self,
        env: Environment,
        spec: StackSpec,
        cpu: Optional[Union[CpuCore, CpuPool]] = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self.cpu = cpu
        self.messages = 0
        self.bytes = 0
        self.core_seconds = 0.0  # total host-core time charged (Figure 2)

    def core_time(self, size: int) -> float:
        """Host-core-seconds of CPU work for a message of ``size`` bytes."""
        return (
            self.spec.per_message_core_time
            + size * self.spec.per_byte_core_time
        )

    def service_time(self, size: int) -> float:
        """Unloaded end-to-end time through this layer on a full-speed core."""
        speed = getattr(self.cpu, "speed", 1.0) if self.cpu else 1.0
        return self.core_time(size) / speed + self.spec.per_message_latency

    def process(self, size: int) -> Generator:
        """Process generator: run one message through the layer."""
        if size < 0:
            raise ValueError("message size must be non-negative")
        if self.cpu is not None:
            yield from self.cpu.execute(self.core_time(size))
        if self.spec.per_message_latency > 0:
            yield self.env.timeout(self.spec.per_message_latency)
        self.messages += 1
        self.bytes += size
        self.core_seconds += self.core_time(size)

    def charge_only(self, size: int) -> None:
        """Account the CPU cost without simulating queueing or latency.

        Used by coarse-grained paths where per-message scheduling would
        dominate simulation run time (e.g., aggregate background load).
        """
        if self.cpu is not None:
            self.cpu.charge(self.core_time(size))
        self.messages += 1
        self.bytes += size
        self.core_seconds += self.core_time(size)

    def cores_consumed(self, elapsed: float) -> float:
        """This layer's share of the CPU, in cores (Figure 2 breakdown)."""
        return self.core_seconds / elapsed if elapsed > 0 else 0.0
