"""Network substrate: packets, TCP, TCP-splitting PEP, stack cost models."""

from .packet import WILDCARD, AppSignature, FiveTuple, Segment
from .pep import LengthPrefixFramer, NaiveOffloadPath, TcpSplittingPep
from .stack import StackLayer
from .tcp import MSS, TcpReceiver, TcpSender, TcpStats, connect

__all__ = [
    "AppSignature",
    "FiveTuple",
    "LengthPrefixFramer",
    "MSS",
    "NaiveOffloadPath",
    "Segment",
    "StackLayer",
    "TcpReceiver",
    "TcpSender",
    "TcpSplittingPep",
    "TcpStats",
    "WILDCARD",
    "connect",
]
