"""Packets, flows, and application signatures (§5.1).

The traffic director classifies packets in two stages.  Stage one matches
the L3/L4 headers against a user-supplied *application signature* — a
five-tuple pattern with wildcards — and is pushed down to the NIC's
hardware match engine so packets of no interest reach the host at line
rate.  Stage two (the offload predicate) inspects payloads and lives in
:mod:`repro.core.traffic_director`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = ["FiveTuple", "AppSignature", "Segment", "WILDCARD"]

#: Wildcard marker for signature fields ("*" in the paper's example).
WILDCARD = "*"


@dataclass(frozen=True)
class FiveTuple:
    """A concrete transport flow identity."""

    client_ip: str
    client_port: int
    server_ip: str
    server_port: int
    protocol: str = "tcp"

    def reversed(self) -> "FiveTuple":
        """The reverse direction of the same flow."""
        return FiveTuple(
            client_ip=self.server_ip,
            client_port=self.server_port,
            server_ip=self.client_ip,
            server_port=self.client_port,
            protocol=self.protocol,
        )

    def rss_hash(self, buckets: int) -> int:
        """Symmetric RSS hash: both directions map to the same core (§7).

        Symmetry avoids sharing TCP-splitting connection state between
        DPU cores when the host responds on a split connection.  The
        hash is blake2b over the *sorted* endpoint pair — not the
        builtin ``hash``, which is salted per process (PYTHONHASHSEED)
        and would make core and shard placement differ between runs.
        """
        endpoints = sorted(
            [
                f"{self.client_ip}:{self.client_port}",
                f"{self.server_ip}:{self.server_port}",
            ]
        )
        key = f"{endpoints[0]},{endpoints[1]},{self.protocol}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "little") % buckets


@dataclass(frozen=True)
class AppSignature:
    """Five-tuple pattern with wildcards; the paper's example matches any
    remote client, a specific local port, and TCP."""

    client_ip: Any = WILDCARD
    client_port: Any = WILDCARD
    server_ip: Any = WILDCARD
    server_port: Any = WILDCARD
    protocol: Any = "tcp"

    def matches(self, flow: FiveTuple) -> bool:
        """Hardware-stage match: header fields only."""
        checks = (
            (self.client_ip, flow.client_ip),
            (self.client_port, flow.client_port),
            (self.server_ip, flow.server_ip),
            (self.server_port, flow.server_port),
            (self.protocol, flow.protocol),
        )
        return all(
            pattern == WILDCARD or pattern == value
            for pattern, value in checks
        )


@dataclass
class Segment:
    """One TCP segment: sequence number, payload, and control flags."""

    seq: int
    payload_len: int
    data: Optional[bytes] = None
    ack: Optional[int] = None
    syn: bool = False
    fin: bool = False
    flow: Optional[FiveTuple] = field(default=None, repr=False)

    @property
    def end_seq(self) -> int:
        """Sequence number one past the last payload byte."""
        return self.seq + self.payload_len

    def span(self) -> Tuple[int, int]:
        """(seq, end_seq) half-open byte range."""
        return (self.seq, self.end_seq)
