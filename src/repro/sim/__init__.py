"""Discrete-event simulation engine (SimPy-like, dependency-free)."""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Container, Resource, Store
from .rng import SeededRng, ZipfGenerator
from .trace import EventLog, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "EventLog",
    "Interrupt",
    "Process",
    "Resource",
    "SeededRng",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceRecord",
    "ZipfGenerator",
]
