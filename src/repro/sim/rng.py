"""Deterministic random-number helpers for reproducible experiments.

Every stochastic component in the repository draws from a
:class:`SeededRng` handed down from the experiment harness, so a run is a
pure function of its seed.  The class wraps :class:`random.Random` and adds
the distributions the workload generators need (Zipfian keys for YCSB,
bounded exponentials for service-time jitter).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

__all__ = ["SeededRng", "ZipfGenerator"]


class SeededRng(random.Random):
    """A :class:`random.Random` with convenience draws used by the models."""

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (mean 0 returns 0)."""
        if mean <= 0:
            return 0.0
        return self.expovariate(1.0 / mean)

    def bounded_exponential(self, mean: float, cap_factor: float = 10.0):
        """Exponential variate truncated at ``cap_factor * mean``.

        Service-time jitter in hardware models uses this to avoid the
        unbounded tails a pure exponential would inject into p99 numbers.
        """
        return min(self.exponential(mean), mean * cap_factor)

    def spawn(self, label: str) -> "SeededRng":
        """Derive an independent child stream, stable for a given label."""
        return SeededRng(f"{self.getrandbits(48)}:{label}")


class ZipfGenerator:
    """Zipfian integer generator over ``[0, n)`` via inverse CDF.

    Used by the YCSB workload generator (the paper's §9.2 runs YCSB with a
    uniform read workload; Zipfian is provided for the skewed variants).
    Precomputes the harmonic CDF once, so draws are O(log n).
    """

    def __init__(self, n: int, theta: float = 0.99, rng: SeededRng = None):
        if n < 1:
            raise ValueError("n must be >= 1")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n = n
        self.theta = theta
        self._rng = rng if rng is not None else SeededRng(0)
        weights = [1.0 / math.pow(i + 1, theta) for i in range(n)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf: Sequence[float] = cdf

    def draw(self) -> int:
        """Draw one key; key 0 is the hottest."""
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo
