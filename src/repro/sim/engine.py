"""Discrete-event simulation engine.

A small, dependency-free engine in the style of SimPy: simulation
*processes* are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events trigger.  The :class:`Environment` owns the
virtual clock and the event queues.

The engine is the substrate on which every hardware and protocol model in
this repository runs (CPU cores, SSDs, DMA engines, network links, TCP).
It is deliberately minimal but complete: events carry values or failures,
processes are themselves events (so they can be awaited and composed), and
``AllOf``/``AnyOf`` provide fork/join.

Hot-path design (DESIGN.md §11)
-------------------------------
The engine orders every scheduled occurrence by ``(time, seq)`` where
``seq`` is a per-environment monotonically increasing int.  Two queues
realise that order:

* a **heap** of ``(time, seq, event, value, exception)`` tuples for
  delayed occurrences, and
* a **same-tick ready deque** for zero-delay occurrences (the vast
  majority: every ``succeed()``, every process resume).  Ready entries
  are always at the current simulated time, so they bypass ``heapq``
  entirely; a ready entry runs before the heap top unless the heap top
  shares the current timestamp with a smaller ``seq``.

Process bootstrap and the "poke" that resumes a process whose yielded
target already triggered are *direct continuations* — ``(seq, None,
callable, None)`` ready entries — instead of freshly allocated throwaway
``Event`` objects.  They consume exactly one ``seq`` each, like the event
they replace, so the total order (and therefore every figure output) is
bit-for-bit identical to the historical implementation.

Every class here carries ``__slots__``, events store their sole callback
inline (promoting to a list only on the second waiter), and ``run()``
selects a no-trace fast loop once at entry.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the engine (e.g., re-triggering an event)."""


#: Sentinel distinguishing "no value yet" from a triggered ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, is *triggered* with either a value
    (:meth:`succeed`) or an exception (:meth:`fail`), and then fires its
    callbacks when the environment processes it.  Processes waiting on the
    event are resumed with the value, or have the exception thrown into
    them.

    Waiters register with :meth:`add_callback`; the single-waiter case
    (nearly every event) stores the callable inline with no list
    allocation.
    """

    __slots__ = ("env", "_cb", "_value", "_exception", "_scheduled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._cb: Any = None  # None | callable | list of callables
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value; raises if it failed or is still pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    @property
    def callbacks(self) -> List[Callable[["Event"], None]]:
        """Snapshot of registered waiters (register via add_callback)."""
        cb = self._cb
        if cb is None:
            return []
        if cb.__class__ is list:
            return list(cb)
        return [cb]

    # ------------------------------------------------------------------
    # waiter registration
    # ------------------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event fires."""
        cb = self._cb
        if cb is None:
            self._cb = fn
        elif cb.__class__ is list:
            cb.append(fn)
        else:
            self._cb = [cb, fn]

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Deregister a waiter registered with :meth:`add_callback`.

        Comparison is by equality, not identity: bound methods (like
        ``Process._resume``) are re-created on every attribute access,
        so two accesses are equal but never identical.
        """
        cb = self._cb
        if cb.__class__ is list:
            try:
                cb.remove(fn)
            except ValueError:
                pass
        elif cb is not None and (cb is fn or cb == fn):
            self._cb = None

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._value is not _PENDING or self._exception is not None or (
            self._scheduled
        ):
            raise SimulationError("event has already been triggered")
        self._scheduled = True
        self.env._schedule(self, delay, value, None)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception`` after ``delay``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING or self._exception is not None or (
            self._scheduled
        ):
            raise SimulationError("event has already been triggered")
        self._scheduled = True
        self.env._schedule(self, delay, _PENDING, exception)
        return self

    def _apply(self, value: Any, exception: Optional[BaseException]) -> None:
        """Record the outcome and run callbacks (engine internal)."""
        self._value = value
        self._exception = exception
        cb = self._cb
        if cb is None:
            if exception is not None:
                # Nobody is waiting on this event: surface the failure
                # loudly instead of silently swallowing it (a failed
                # fire-and-forget process would otherwise hang the
                # simulation).
                raise exception
            return
        self._cb = None
        if cb.__class__ is list:
            for fn in cb:
                fn(self)
        else:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self._cb = None
        self._value = _PENDING
        self._exception = None
        self._scheduled = True
        # Inlined Environment._schedule: timeouts are the hottest
        # schedule site, and the inline keeps seq consumption identical.
        eid = env._eid
        env._eid = eid + 1
        if delay == 0.0:
            env._ready.append((eid, self, value, None))
        else:
            heapq.heappush(
                env._heap, (env._now + delay, eid, self, value, None)
            )


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator yields :class:`Event` objects; the process resumes when
    each yielded event triggers.  The process is itself an event that
    triggers with the generator's return value (or its uncaught exception),
    so processes can wait on each other.
    """

    __slots__ = ("_generator", "name", "_target", "_poke_target")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self.env = env
        self._cb = None
        self._value = _PENDING
        self._exception = None
        self._scheduled = False
        self._generator = generator
        self.name = getattr(generator, "__name__", "process")
        #: The pending event this process is registered on (for
        #: deregistration when interrupted), and the already-triggered
        #: event a scheduled same-tick poke will resume it with.
        self._target: Optional[Event] = None
        self._poke_target: Optional[Event] = None
        # Kick off execution at the current simulation time.
        env._schedule_call(self._bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time.

        The process is *deregistered* from whatever it was waiting on, so
        the original wait target neither accumulates a dead callback nor
        resumes the process at a stale yield point when it eventually
        fires.
        """
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError("cannot interrupt a finished process")
        target = self._target
        if target is not None:
            target.remove_callback(self._resume)
            self._target = None
        # Cancel a pending same-tick poke: its target's outcome must not
        # be delivered after the interrupt rewound the wait.
        self._poke_target = None
        exc = Interrupt(cause)
        self.env._schedule_call(lambda: self._step(throw=exc))

    # ------------------------------------------------------------------
    # engine internals
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """First resume (scheduled as a direct continuation)."""
        self._step(send=None)

    def _poke(self) -> None:
        """Deliver an already-triggered target's outcome (same tick)."""
        target = self._poke_target
        if target is None:
            return  # cancelled by interrupt()
        self._poke_target = None
        if target._exception is not None:
            self._step(throw=target._exception)
        else:
            self._step(send=target._value)

    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``."""
        self._target = None
        if event._exception is not None:
            self._step(throw=event._exception)
        else:
            self._step(send=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None):
        if self._value is not _PENDING or self._exception is not None or (
            self._scheduled
        ):
            # A stale wakeup must not resume a finished process.
            return
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self._scheduled = True
            self.env._schedule(self, 0.0, stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._scheduled = True
            self.env._schedule(self, 0.0, _PENDING, exc)
            return

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"
            )
        if target._value is not _PENDING or target._exception is not None:
            # Already triggered: resume at the same timestamp via a
            # same-tick continuation to keep scheduling fair with
            # respect to other ready processes.
            self._poke_target = target
            self.env._schedule_call(self._poke)
        else:
            target.add_callback(self._resume)
            self._target = target


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class AllOf(Event):
    """Triggers once every child event has triggered successfully.

    The value is the list of child values in the order given.  Fails as
    soon as any child fails.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        Event.__init__(self, env)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._events:
            if event._value is not _PENDING or event._exception is not None:
                self._on_child(event)
            else:
                event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING or self._exception is not None or (
            self._scheduled
        ):
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._events])


class AnyOf(Event):
    """Triggers as soon as any child event triggers.

    The value is a ``(event, value)`` tuple for the first child to fire.
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        Event.__init__(self, env)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for event in self._events:
            if event._value is not _PENDING or event._exception is not None:
                self._on_child(event)
                break
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._value is not _PENDING or self._exception is not None or (
            self._scheduled
        ):
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed((event, event._value))


class Environment:
    """The simulation world: a virtual clock plus the event queues.

    Pass ``trace`` (a callable ``(time, event) -> None``) to observe
    every processed event — useful for debugging model behaviour (see
    :class:`~repro.sim.trace.EventLog`).  Engine-internal continuations
    (process bootstrap and same-tick pokes) are not materialised as
    events and therefore do not appear in traces.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        trace: Optional[Callable[[float, "Event"], None]] = None,
    ) -> None:
        self._now = float(initial_time)
        #: Delayed occurrences: (time, seq, event, value, exception).
        self._heap: List[tuple] = []
        #: Same-tick occurrences: (seq, event, value, exception) where
        #: ``event is None`` marks a direct continuation and ``value``
        #: holds the callable.  Entries are always at time ``_now``.
        self._ready: Deque[tuple] = deque()
        #: Next (time, seq) tiebreaker; also the count of everything
        #: ever scheduled (events + continuations) — the "events" in the
        #: perf trajectory's events/sec.
        self._eid = 0
        self.trace = trace

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention in this repo)."""
        return self._now

    @property
    def scheduled_count(self) -> int:
        """Total occurrences scheduled so far (events + continuations).

        The numerator of the perf trajectory's events/sec metric
        (``repro.bench.trajectory``); comparable across engine versions
        because every schedule operation consumes exactly one sequence
        number.
        """
        return self._eid

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Join: an event that triggers when all ``events`` have."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Select: an event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(
        self,
        event: Event,
        delay: float,
        value: Any,
        exception: Optional[BaseException],
    ) -> None:
        eid = self._eid
        self._eid = eid + 1
        if delay == 0.0:
            self._ready.append((eid, event, value, exception))
        else:
            heapq.heappush(
                self._heap,
                (self._now + delay, eid, event, value, exception),
            )

    def _schedule_call(self, fn: Callable[[], None]) -> None:
        """Schedule a same-tick engine continuation (no Event object)."""
        eid = self._eid
        self._eid = eid + 1
        self._ready.append((eid, None, fn, None))

    def _pop_next(self) -> tuple:
        """Remove and return the next (event, value, exception) triple,
        advancing the clock.  Callers ensure a queue is non-empty."""
        ready = self._ready
        heap = self._heap
        if ready:
            # A heap entry at the current timestamp with a smaller seq
            # predates everything in the ready deque.
            if heap and heap[0][0] <= self._now and heap[0][1] < ready[0][0]:
                entry = heapq.heappop(heap)
                return entry[2], entry[3], entry[4]
            entry = ready.popleft()
            return entry[1], entry[2], entry[3]
        entry = heapq.heappop(heap)
        self._now = entry[0]
        return entry[2], entry[3], entry[4]

    def step(self) -> None:
        """Process the single next scheduled occurrence."""
        if not self._ready and not self._heap:
            raise SimulationError("no scheduled events")
        event, value, exception = self._pop_next()
        if event is None:
            value()
            return
        if self.trace is not None:
            self.trace(self._now, event)
        event._apply(value, exception)

    def peek(self) -> float:
        """Time of the next scheduled occurrence, or ``inf`` if none."""
        if self._ready:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers, returning its value).
        """
        if self.trace is not None:
            return self._run_traced(until)

        # --------------------------------------------------------------
        # no-trace fast loops: selected once here, tight locals inside
        # --------------------------------------------------------------
        ready = self._ready
        heap = self._heap
        pop_heap = heapq.heappop
        pop_ready = ready.popleft

        if isinstance(until, Event):
            if until._value is not _PENDING or until._exception is not None:
                return until.value
            fired: List[Event] = []
            until.add_callback(fired.append)
            while not fired:
                if ready:
                    top = heap[0] if heap else None
                    if (
                        top is not None
                        and top[0] <= self._now
                        and top[1] < ready[0][0]
                    ):
                        _t, _s, event, value, exception = pop_heap(heap)
                    else:
                        _s, event, value, exception = pop_ready()
                elif heap:
                    entry = pop_heap(heap)
                    self._now = entry[0]
                    event, value, exception = entry[2], entry[3], entry[4]
                else:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                if event is None:
                    value()
                else:
                    event._apply(value, exception)
            return until.value

        deadline = float("inf") if until is None else float(until)
        while True:
            if ready:
                if self._now > deadline:
                    break
                top = heap[0] if heap else None
                if (
                    top is not None
                    and top[0] <= self._now
                    and top[1] < ready[0][0]
                ):
                    _t, _s, event, value, exception = pop_heap(heap)
                else:
                    _s, event, value, exception = pop_ready()
            elif heap:
                if heap[0][0] > deadline:
                    break
                entry = pop_heap(heap)
                self._now = entry[0]
                event, value, exception = entry[2], entry[3], entry[4]
            else:
                break
            if event is None:
                value()
            else:
                event._apply(value, exception)
        if until is not None:
            self._now = max(self._now, deadline)
        return None

    def _run_traced(self, until: Any) -> Any:
        """Step-by-step loop used when a trace hook is attached."""
        if isinstance(until, Event):
            while not until.triggered:
                if not self._ready and not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                self.step()
            return until.value
        deadline = float("inf") if until is None else float(until)
        while True:
            if self._ready:
                if self._now > deadline:
                    break
            elif self._heap:
                if self._heap[0][0] > deadline:
                    break
            else:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, deadline)
        return None
