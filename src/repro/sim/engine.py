"""Discrete-event simulation engine.

A small, dependency-free engine in the style of SimPy: simulation
*processes* are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events trigger.  The :class:`Environment` owns the
virtual clock and the event heap.

The engine is the substrate on which every hardware and protocol model in
this repository runs (CPU cores, SSDs, DMA engines, network links, TCP).
It is deliberately minimal but complete: events carry values or failures,
processes are themselves events (so they can be awaited and composed), and
``AllOf``/``AnyOf`` provide fork/join.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the engine (e.g., re-triggering an event)."""


#: Sentinel distinguishing "no value yet" from a triggered ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, is *triggered* with either a value
    (:meth:`succeed`) or an exception (:meth:`fail`), and then fires its
    callbacks when the environment processes it.  Processes waiting on the
    event are resumed with the value, or have the exception thrown into
    them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value; raises if it failed or is still pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self.triggered or self._scheduled:
            raise SimulationError("event has already been triggered")
        self._scheduled = True
        self.env._schedule(self, delay, value, None)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception`` after ``delay``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered or self._scheduled:
            raise SimulationError("event has already been triggered")
        self._scheduled = True
        self.env._schedule(self, delay, _PENDING, exception)
        return self

    def _apply(self, value: Any, exception: Optional[BaseException]) -> None:
        """Record the outcome and run callbacks (engine internal)."""
        self._value = value
        self._exception = exception
        callbacks, self.callbacks = self.callbacks, []
        if exception is not None and not callbacks:
            # Nobody is waiting on this event: surface the failure loudly
            # instead of silently swallowing it (a failed fire-and-forget
            # process would otherwise hang the simulation).
            raise exception
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self._scheduled = True
        env._schedule(self, delay, value, None)


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator yields :class:`Event` objects; the process resumes when
    each yielded event triggers.  The process is itself an event that
    triggers with the generator's return value (or its uncaught exception),
    so processes can wait on each other.
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self.name = getattr(generator, "__name__", "process")
        # Kick off execution at the current simulation time.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        poke = Event(self.env)
        poke.callbacks.append(
            lambda _ev: self._step(throw=Interrupt(cause))
        )
        poke.succeed()

    # ------------------------------------------------------------------
    # engine internals
    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``."""
        if event._exception is not None:
            self._step(throw=event._exception)
        else:
            self._step(send=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None):
        if self.triggered or self._scheduled:
            # A stale wakeup (e.g. the event an interrupted process was
            # waiting on finally firing) must not resume a finished
            # process.
            return
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self._scheduled = True
            self.env._schedule(self, 0.0, stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._scheduled = True
            self.env._schedule(self, 0.0, _PENDING, exc)
            return

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"
            )
        if target.triggered:
            # Resume immediately (same timestamp) via a fresh event to keep
            # scheduling fair with respect to other ready processes.
            poke = Event(self.env)
            poke.callbacks.append(lambda _ev: self._resume(target))
            poke.succeed()
        else:
            target.callbacks.append(self._resume)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class AllOf(Event):
    """Triggers once every child event has triggered successfully.

    The value is the list of child values in the order given.  Fails as
    soon as any child fails.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._events:
            if event.triggered:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered or self._scheduled:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._events])


class AnyOf(Event):
    """Triggers as soon as any child event triggers.

    The value is a ``(event, value)`` tuple for the first child to fire.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for event in self._events:
            if event.triggered:
                self._on_child(event)
                break
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered or self._scheduled:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed((event, event._value))


class Environment:
    """The simulation world: a virtual clock plus an event heap.

    Pass ``trace`` (a callable ``(time, event) -> None``) to observe
    every processed event — useful for debugging model behaviour (see
    :class:`~repro.sim.trace.EventLog`).
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        trace: Optional[Callable[[float, "Event"], None]] = None,
    ) -> None:
        self._now = float(initial_time)
        self._heap: List[tuple] = []
        self._counter = itertools.count()
        self.trace = trace

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention in this repo)."""
        return self._now

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Join: an event that triggers when all ``events`` have."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Select: an event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(
        self,
        event: Event,
        delay: float,
        value: Any,
        exception: Optional[BaseException],
    ) -> None:
        heapq.heappush(
            self._heap,
            (self._now + delay, next(self._counter), event, value, exception),
        )

    def step(self) -> None:
        """Process the single next scheduled event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        time, _seq, event, value, exception = heapq.heappop(self._heap)
        self._now = time
        if self.trace is not None:
            self.trace(time, event)
        event._apply(value, exception)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers, returning its value).
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.triggered:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                self.step()
            return sentinel.value

        deadline = float("inf") if until is None else float(until)
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if until is not None:
            self._now = max(self._now, deadline)
        return None
