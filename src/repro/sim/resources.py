"""Shared-resource primitives for the simulation engine.

Three primitives cover every contention point in the models:

* :class:`Resource` — a counted semaphore with FIFO queuing.  Used for CPU
  cores, SSD submission slots, DMA channels, and link arbitration.
* :class:`Store` — an unbounded (or bounded) FIFO of items with blocking
  ``get``.  Used for packet queues, request queues, and mailboxes between
  simulated threads.
* :class:`Container` — a continuous quantity (e.g., buffer-pool bytes).

All operations return :class:`~repro.sim.engine.Event` objects, so
processes compose them with ``yield``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "Store", "Container"]


class Resource:
    """A counted resource with FIFO admission.

    ``request()`` returns an event that triggers when a unit is granted;
    ``release()`` returns the unit.  The classic pattern::

        grant = resource.request()
        yield grant
        try:
            ... hold the resource ...
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of granted, not-yet-released units."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that triggers when a unit is granted."""
        event = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiting.append(event)
        return event

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiting:
            waiter = self._waiting.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1


class Store:
    """FIFO of items with blocking ``get`` and optionally bounded ``put``."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; blocks (as an event) when at capacity."""
        event = self.env.event()
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking insert; returns False when the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Return an event that triggers with the oldest item."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking pop; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        if self._putters:
            putter, item = self._putters.popleft()
            self._items.append(item)
            putter.succeed()


class Container:
    """A continuous quantity (bytes, tokens) with blocking ``get``."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[tuple] = deque()  # (event, amount)

    @property
    def level(self) -> float:
        """Current stored quantity."""
        return self._level

    def put(self, amount: float) -> None:
        """Add ``amount`` immediately (capped at capacity)."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._level = min(self.capacity, self._level + amount)
        self._drain_getters()

    def get(self, amount: float) -> Event:
        """Event that triggers once ``amount`` can be withdrawn."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = self.env.event()
        self._getters.append((event, amount))
        self._drain_getters()
        return event

    def _drain_getters(self) -> None:
        while self._getters and self._getters[0][1] <= self._level:
            event, amount = self._getters.popleft()
            self._level -= amount
            event.succeed()
