"""Simulation tracing helpers.

Attach an :class:`EventLog` to an :class:`~repro.sim.engine.Environment`
to record every processed event with its timestamp — a lightweight way
to debug model behaviour ("what fired between t=1.2ms and t=1.3ms?")
without instrumenting the models themselves.

Example
-------
>>> from repro.sim import Environment
>>> from repro.sim.trace import EventLog
>>> log = EventLog()
>>> env = Environment(trace=log)
>>> def work(env):
...     yield env.timeout(1)
>>> _ = env.process(work(env))
>>> env.run()
>>> len(log) > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .engine import Event, Process, Timeout

__all__ = ["TraceRecord", "EventLog"]


@dataclass(frozen=True)
class TraceRecord:
    """One processed event."""

    time: float
    kind: str
    name: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[{self.time * 1e6:10.2f}us] {self.kind:8s} {self.name}"


class EventLog:
    """A bounded, filterable record of processed simulation events."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._records: List[TraceRecord] = []
        self.dropped = 0

    # The Environment calls this for every processed event.
    def __call__(self, time: float, event: Event) -> None:
        if self.capacity is not None and len(self._records) >= self.capacity:
            self.dropped += 1
            return
        if isinstance(event, Process):
            kind, name = "process", event.name
        elif isinstance(event, Timeout):
            kind, name = "timeout", ""
        else:
            kind, name = "event", type(event).__name__
        self._records.append(TraceRecord(time, kind, name))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Records with ``start <= time < end``."""
        return [r for r in self._records if start <= r.time < end]

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """Records of one kind ('process', 'timeout', 'event')."""
        return [r for r in self._records if r.kind == kind]

    def clear(self) -> None:
        """Drop all records and reset the dropped counter."""
        self._records.clear()
        self.dropped = 0
