"""Local (non-disaggregated) storage servers (Figure 16 ① and ②).

The detailed comparison's reference points: the same random-I/O
application running against locally-attached SSDs, either through the OS
filesystem (Windows files, ①) or through the DDS front-end library with
file execution offloaded to the DPU (DDS files, ②).  There is no network
and no second machine; "client" CPU and server CPU are the same pool.
"""

from __future__ import annotations

from typing import Callable, Generator, List

from ..core.messages import IoRequest, IoResponse, OpCode
from ..core.server import StorageServerBase, _DdsHostSide
from ..core.file_library import DdsFileLibrary
from ..core.file_service import DpuFileService
from ..hardware.cpu import CpuCore
from ..hardware.nic import NetworkLink
from ..hardware.pcie import DmaEngine
from ..hardware.specs import DPU_CPU, HOST_APP_OTHER, StackSpec
from ..net.packet import FiveTuple
from ..net.stack import StackLayer
from ..sim import Environment
from ..storage.filesystem import DdsFileSystem
from ..storage.osfs import OsFileSystem

__all__ = ["LocalOsServer", "LocalDdsServer", "NO_TRANSPORT"]

#: Local access pays no transport CPU at all.
NO_TRANSPORT = StackSpec(
    name="no-transport",
    per_message_core_time=0.0,
    per_byte_core_time=0.0,
    per_message_latency=0.0,
)


class LocalOsServer(StorageServerBase):
    """① Windows files on local SSDs: the non-disaggregated OS baseline."""

    client_spec = NO_TRANSPORT

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
    ) -> None:
        super().__init__(env, link)
        self.app_other = StackLayer(env, HOST_APP_OTHER, self.host_pool)
        self.osfs = OsFileSystem(env, filesystem, self.host_pool)

    def host_cores(self, elapsed: float) -> float:
        """Average host cores consumed over ``elapsed`` seconds."""
        pool = self.host_pool.cores_consumed(elapsed)
        return pool + self.osfs.serializer.utilization(elapsed)

    def _ingress(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        arrived: Callable,
    ) -> Generator:
        served = [self.env.process(self._serve(r)) for r in requests]
        responses: List[IoResponse] = yield self.env.all_of(served)
        for response in responses:
            arrived(response)

    def _serve(self, request: IoRequest) -> Generator:
        yield from self.app_other.process(request.wire_size)
        if request.op is OpCode.READ:
            data = yield self.env.process(
                self.osfs.read(request.file_id, request.offset, request.size)
            )
            response = IoResponse(request.request_id, True, data)
        else:
            yield self.env.process(
                self.osfs.write(
                    request.file_id, request.offset, request.payload
                )
            )
            response = IoResponse(request.request_id, True)
        self.requests_served += 1
        return response


class LocalDdsServer(StorageServerBase):
    """② DDS files on local SSDs: userspace front end, DPU execution.

    The paper notes this is a *stronger* local baseline than host-only
    userspace storage: it exploits the SSD fully while burning no host
    cores on the I/O path (§8.4, footnote 5).
    """

    client_spec = NO_TRANSPORT

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
    ) -> None:
        super().__init__(env, link)
        self.dma = DmaEngine(env)
        self.dma_core = CpuCore(env, speed=DPU_CPU.speed, name="dpu-dma")
        self.spdk_core = CpuCore(env, speed=DPU_CPU.speed, name="dpu-spdk")
        self.file_service = DpuFileService(
            env, filesystem, self.dma_core, self.spdk_core
        )
        self.library = DdsFileLibrary(
            env, self.host_pool, self.file_service, self.dma
        )
        self.host_side = _DdsHostSide(env, self.host_pool, self.library)
        self.file_service.start()

    def host_cores(self, elapsed: float) -> float:
        """Average host cores consumed over ``elapsed`` seconds."""
        pool = self.host_pool.cores_consumed(elapsed)
        return pool + self.host_side.dispatch_core.utilization(elapsed)

    def dpu_cores(self, elapsed: float) -> float:
        """Average DPU cores consumed over ``elapsed`` seconds."""
        return self.dma_core.utilization(elapsed) + self.spdk_core.utilization(
            elapsed
        )

    def _ingress(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        arrived: Callable,
    ) -> Generator:
        served = [
            self.env.process(self.host_side.serve(r)) for r in requests
        ]
        responses: List[IoResponse] = yield self.env.all_of(served)
        self.requests_served += len(responses)
        for response in responses:
            arrived(response)
