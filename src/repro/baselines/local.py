"""Local (non-disaggregated) storage servers (Figure 16 ① and ②).

The detailed comparison's reference points: the same random-I/O
application running against locally-attached SSDs, either through the OS
filesystem (Windows files, ①) or through the DDS front-end library with
file execution offloaded to the DPU (DDS files, ②).  There is no network
and no second machine; "client" CPU and server CPU are the same pool.

Both are minimal :class:`~repro.core.server.PipelineServer` compositions:
a single execution stage, no ingest/transport/completion stages at all.
"""

from __future__ import annotations

from ..core.server import PipelineServer
from ..hardware.nic import NetworkLink
from ..hardware.specs import StackSpec
from ..sim import Environment
from ..storage.filesystem import DdsFileSystem
from ..topology.stages import DdsBackend, OsFileExecution

__all__ = ["LocalOsServer", "LocalDdsServer", "NO_TRANSPORT"]

#: Local access pays no transport CPU at all.
NO_TRANSPORT = StackSpec(
    name="no-transport",
    per_message_core_time=0.0,
    per_byte_core_time=0.0,
    per_message_latency=0.0,
)


class LocalOsServer(PipelineServer):
    """① Windows files on local SSDs: the non-disaggregated OS baseline."""

    client_spec = NO_TRANSPORT

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
    ) -> None:
        super().__init__(env, link)
        execution = OsFileExecution(env, filesystem, self.host_pool)
        self._set_pipeline([execution], execution=execution)
        self.app_other = execution.app_other
        self.osfs = execution.osfs


class LocalDdsServer(PipelineServer):
    """② DDS files on local SSDs: userspace front end, DPU execution.

    The paper notes this is a *stronger* local baseline than host-only
    userspace storage: it exploits the SSD fully while burning no host
    cores on the I/O path (§8.4, footnote 5).
    """

    client_spec = NO_TRANSPORT

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
    ) -> None:
        super().__init__(env, link)
        backend = DdsBackend(env, self.host_pool, filesystem)
        self._set_pipeline([backend], execution=backend)
        self.backend = backend
        self.dma = backend.dma
        self.dma_core = backend.dma_core
        self.spdk_core = backend.spdk_core
        self.file_service = backend.file_service
        self.library = backend.library
        self.host_side = backend.host_side
        backend.start()
