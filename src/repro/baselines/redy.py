"""Redy RPC transport (Figure 16 ⑦ and ⑧): fast RDMA, busy cores.

Redy [70] is an RDMA-based RPC optimized for low latency: messages move
with minimal per-operation cost, but *dedicated polling cores* spin on
completion queues on both the client and the server — the paper's point
that kernel-bypass buys performance by burning CPU (§1, §8.4: "some of
its performance comes from burning a few CPU cores on both client and
server").  The file backend is either the OS filesystem (Redy + Windows
files) or the DDS library path (Redy + DDS files).
"""

from __future__ import annotations

from typing import Callable, Generator, List

from ..core.messages import IoRequest, IoResponse, OpCode
from ..core.server import StorageServerBase, _DdsHostSide
from ..core.file_library import DdsFileLibrary
from ..core.file_service import DpuFileService
from ..hardware.cpu import CpuCore
from ..hardware.nic import NetworkLink
from ..hardware.pcie import DmaEngine
from ..hardware.specs import DPU_CPU, HOST_APP_OTHER, RDMA_VERBS
from ..net.packet import FiveTuple
from ..net.stack import StackLayer
from ..sim import Environment
from ..storage.filesystem import DdsFileSystem
from ..storage.osfs import OsFileSystem

__all__ = ["RedyServer"]


class RedyServer(StorageServerBase):
    """RDMA RPC disaggregation with spin-polling cores on both sides."""

    #: Polling cores dedicated per side (always 100% busy).
    POLLING_CORES_SERVER = 2
    POLLING_CORES_CLIENT = 1

    client_spec = RDMA_VERBS

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        dds_files: bool = False,
    ) -> None:
        super().__init__(env, link)
        self.dds_files = dds_files
        self.transport = StackLayer(env, RDMA_VERBS, self.host_pool)
        self.app_other = StackLayer(env, HOST_APP_OTHER, self.host_pool)
        if dds_files:
            self.dma = DmaEngine(env)
            self.dma_core = CpuCore(env, speed=DPU_CPU.speed, name="dpu-dma")
            self.spdk_core = CpuCore(
                env, speed=DPU_CPU.speed, name="dpu-spdk"
            )
            self.file_service = DpuFileService(
                env, filesystem, self.dma_core, self.spdk_core
            )
            self.library = DdsFileLibrary(
                env, self.host_pool, self.file_service, self.dma
            )
            self.host_side = _DdsHostSide(env, self.host_pool, self.library)
            self.file_service.start()
            self.osfs = None
        else:
            self.osfs = OsFileSystem(env, filesystem, self.host_pool)
            self.host_side = None

    # ------------------------------------------------------------------
    # accounting: polling cores are busy for the whole run
    # ------------------------------------------------------------------
    def host_cores(self, elapsed: float) -> float:
        """Average host cores consumed over ``elapsed`` seconds."""
        total = self.host_pool.cores_consumed(elapsed)
        total += self.POLLING_CORES_SERVER  # spin-pollers never idle
        if self.osfs is not None:
            total += self.osfs.serializer.utilization(elapsed)
        if self.host_side is not None:
            total += self.host_side.dispatch_core.utilization(elapsed)
        return total

    def client_extra_cores(self) -> float:
        """Client-side polling cores Figure 16's total-CPU metric adds."""
        return float(self.POLLING_CORES_CLIENT)

    def dpu_cores(self, elapsed: float) -> float:
        """Average DPU cores consumed over ``elapsed`` seconds."""
        if not self.dds_files:
            return 0.0
        return self.dma_core.utilization(elapsed) + self.spdk_core.utilization(
            elapsed
        )

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def _ingress(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        arrived: Callable,
    ) -> Generator:
        message_bytes = sum(r.wire_size for r in requests)
        yield from self.link.transmit("client_to_server", message_bytes)
        yield from self.transport.process(message_bytes)
        served = [self.env.process(self._serve(r)) for r in requests]
        responses: List[IoResponse] = yield self.env.all_of(served)
        response_bytes = sum(r.wire_size for r in responses)
        yield from self.transport.process(response_bytes)
        yield from self.link.transmit("server_to_client", response_bytes)
        for response in responses:
            arrived(response)

    def _serve(self, request: IoRequest) -> Generator:
        if self.dds_files:
            response = yield self.env.process(self.host_side.serve(request))
            self.requests_served += 1
            return response
        yield from self.app_other.process(request.wire_size)
        if request.op is OpCode.READ:
            data = yield self.env.process(
                self.osfs.read(request.file_id, request.offset, request.size)
            )
            response = IoResponse(request.request_id, True, data)
        else:
            yield self.env.process(
                self.osfs.write(
                    request.file_id, request.offset, request.payload
                )
            )
            response = IoResponse(request.request_id, True)
        self.requests_served += 1
        return response
