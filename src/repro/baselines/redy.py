"""Redy RPC transport (Figure 16 ⑦ and ⑧): fast RDMA, busy cores.

Redy [70] is an RDMA-based RPC optimized for low latency: messages move
with minimal per-operation cost, but *dedicated polling cores* spin on
completion queues on both the client and the server — the paper's point
that kernel-bypass buys performance by burning CPU (§1, §8.4: "some of
its performance comes from burning a few CPU cores on both client and
server").  The file backend is either the OS filesystem (Redy + Windows
files) or the DDS library path (Redy + DDS files).

The spin-polling cost lives in :class:`RedyTransport`, a transport stage
whose utilization is constant: the pollers are busy whether or not
messages flow, on both sides of the wire.
"""

from __future__ import annotations

from ..core.server import PipelineServer
from ..hardware.cpu import CpuPool
from ..hardware.nic import NetworkLink
from ..hardware.specs import RDMA_VERBS
from ..sim import Environment
from ..storage.filesystem import DdsFileSystem
from ..topology.stages import (
    DdsBackend,
    OsFileExecution,
    TransportStage,
    WireEgress,
    WireIngress,
)

__all__ = ["RedyServer", "RedyTransport"]


class RedyTransport(TransportStage):
    """RDMA verbs transport plus the spin-polling cores it requires.

    The pollers never idle, so their cost is a constant per side rather
    than per-message work — exactly how Figure 16 accounts Redy.
    """

    def __init__(
        self,
        env: Environment,
        cpu: CpuPool,
        server_pollers: int,
        client_pollers: int,
    ) -> None:
        super().__init__(env, RDMA_VERBS, cpu, name="redy-rpc")
        self.server_pollers = server_pollers
        self.client_pollers = client_pollers

    def host_cores(self, elapsed: float) -> float:
        return float(self.server_pollers)

    def client_cores(self) -> float:
        return float(self.client_pollers)


class RedyServer(PipelineServer):
    """RDMA RPC disaggregation with spin-polling cores on both sides."""

    #: Polling cores dedicated per side (always 100% busy).
    POLLING_CORES_SERVER = 2
    POLLING_CORES_CLIENT = 1

    client_spec = RDMA_VERBS

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        dds_files: bool = False,
    ) -> None:
        super().__init__(env, link)
        self.dds_files = dds_files
        transport = RedyTransport(
            env,
            self.host_pool,
            self.POLLING_CORES_SERVER,
            self.POLLING_CORES_CLIENT,
        )
        if dds_files:
            backend = DdsBackend(env, self.host_pool, filesystem)
            execution = backend
            self.host_side = backend.host_side
            self.osfs = None
        else:
            backend = None
            execution = OsFileExecution(env, filesystem, self.host_pool)
            self.host_side = None
            self.osfs = execution.osfs
            self.app_other = execution.app_other
        self._set_pipeline(
            # RDMA writes land in user memory directly: no NIC->host
            # kernel forward hop on ingest.
            [
                WireIngress(env, link, forward_latency=False),
                transport,
                execution,
                WireEgress(env, link),
            ],
            execution=execution,
        )
        self.transport = transport.layer
        if backend is not None:
            self.backend = backend
            self.dma = backend.dma
            self.dma_core = backend.dma_core
            self.spdk_core = backend.spdk_core
            self.file_service = backend.file_service
            self.library = backend.library
            backend.start()
