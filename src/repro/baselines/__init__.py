"""Comparison systems for Figure 16's ten-solution study (§8.4)."""

from .local import NO_TRANSPORT, LocalDdsServer, LocalOsServer
from .redy import RedyServer
from .smb import SMB_PROTOCOL, SmbServer

__all__ = [
    "LocalDdsServer",
    "LocalOsServer",
    "NO_TRANSPORT",
    "RedyServer",
    "SMB_PROTOCOL",
    "SmbServer",
]
