"""SMB and SMB Direct remote file services (Figure 16 ③ and ④).

SMB mounts a remote disk: every file operation becomes its own protocol
round trip — there is *no application-level batching*, which is exactly
why Figure 16 shows both SMB variants far below application-controlled
disaggregation.  SMB Direct replaces the TCP transport with RDMA, which
cuts transport CPU and latency but keeps the per-operation protocol
behaviour.
"""

from __future__ import annotations

from typing import Callable, Generator, List

from ..core.messages import IoRequest, IoResponse, OpCode
from ..core.server import StorageServerBase
from ..hardware.nic import NetworkLink
from ..hardware.specs import (
    HOST_OS_TCP,
    MICROSECOND,
    RDMA_VERBS,
    StackSpec,
)
from ..net.packet import FiveTuple
from ..net.stack import StackLayer
from ..sim import Environment, Resource
from ..storage.filesystem import DdsFileSystem
from ..storage.osfs import OsFileSystem

__all__ = ["SmbServer", "SMB_PROTOCOL"]

#: SMB server-side protocol processing per operation (marshalling,
#: credit management, signing bookkeeping) on top of the transport.
SMB_PROTOCOL = StackSpec(
    name="smb-protocol",
    per_message_core_time=9.0 * MICROSECOND,
    per_byte_core_time=1.2e-9,
    per_message_latency=18 * MICROSECOND,
)


class SmbServer(StorageServerBase):
    """A mounted remote disk: per-operation round trips, OS files behind.

    ``direct=True`` gives SMB Direct (RDMA transport).  The SMB session
    grants a bounded number of credits (outstanding operations), which
    caps throughput no matter how hard the client pushes.
    """

    #: Outstanding-operation credits per session.
    CREDITS = 32

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        direct: bool = False,
    ) -> None:
        super().__init__(env, link)
        self.direct = direct
        transport = RDMA_VERBS if direct else HOST_OS_TCP
        self.client_spec = transport
        self.transport = StackLayer(env, transport, self.host_pool)
        self.protocol = StackLayer(env, SMB_PROTOCOL, self.host_pool)
        self.osfs = OsFileSystem(env, filesystem, self.host_pool)
        self._credits = Resource(env, capacity=self.CREDITS)

    def host_cores(self, elapsed: float) -> float:
        """Average host cores consumed over ``elapsed`` seconds."""
        pool = self.host_pool.cores_consumed(elapsed)
        return pool + self.osfs.serializer.utilization(elapsed)

    def _ingress(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        arrived: Callable,
    ) -> Generator:
        # SMB has no batching: each request is its own protocol exchange,
        # even if the benchmark client handed us several at once.
        served = [self.env.process(self._serve(r)) for r in requests]
        responses: List[IoResponse] = yield self.env.all_of(served)
        for response in responses:
            arrived(response)

    def _serve(self, request: IoRequest) -> Generator:
        grant = self._credits.request()
        yield grant
        try:
            yield from self.link.transmit(
                "client_to_server", request.wire_size
            )
            yield self.env.timeout(self.link.spec.host_forward)
            yield from self.transport.process(request.wire_size)
            yield from self.protocol.process(request.wire_size)
            if request.op is OpCode.READ:
                data = yield self.env.process(
                    self.osfs.read(
                        request.file_id, request.offset, request.size
                    )
                )
                response = IoResponse(request.request_id, True, data)
            else:
                yield self.env.process(
                    self.osfs.write(
                        request.file_id, request.offset, request.payload
                    )
                )
                response = IoResponse(request.request_id, True)
            yield from self.protocol.process(response.wire_size)
            yield from self.transport.process(response.wire_size)
            yield from self.link.transmit(
                "server_to_client", response.wire_size
            )
        finally:
            self._credits.release()
        self.requests_served += 1
        return response
