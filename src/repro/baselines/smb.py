"""SMB and SMB Direct remote file services (Figure 16 ③ and ④).

SMB mounts a remote disk: every file operation becomes its own protocol
round trip — there is *no application-level batching*, which is exactly
why Figure 16 shows both SMB variants far below application-controlled
disaggregation.  SMB Direct replaces the TCP transport with RDMA, which
cuts transport CPU and latency but keeps the per-operation protocol
behaviour.

Because the protocol is per-operation, the whole exchange — credit
grant, wire hops, transport, protocol, OS file I/O — is one execution
stage (:class:`SmbExchange`); the pipeline has no message-granularity
ingest or completion stages at all.
"""

from __future__ import annotations

from typing import Generator

from ..core.messages import IoRequest, IoResponse, OpCode
from ..core.server import PipelineServer
from ..hardware.cpu import CpuPool
from ..hardware.nic import NetworkLink
from ..hardware.specs import (
    HOST_OS_TCP,
    MICROSECOND,
    RDMA_VERBS,
    StackSpec,
)
from ..net.stack import StackLayer
from ..sim import Environment, Resource
from ..storage.filesystem import DdsFileSystem
from ..storage.osfs import OsFileSystem
from ..topology.stages import Stage, StageKind

__all__ = ["SmbServer", "SmbExchange", "SMB_PROTOCOL"]

#: SMB server-side protocol processing per operation (marshalling,
#: credit management, signing bookkeeping) on top of the transport.
SMB_PROTOCOL = StackSpec(
    name="smb-protocol",
    per_message_core_time=9.0 * MICROSECOND,
    per_byte_core_time=1.2e-9,
    per_message_latency=18 * MICROSECOND,
)


class SmbExchange(Stage):
    """One SMB operation end to end, gated by session credits."""

    kind = StageKind.EXECUTION

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        host_pool: CpuPool,
        credits: int,
        direct: bool,
    ) -> None:
        super().__init__("smb-exchange")
        self.env = env
        self.link = link
        transport_spec = RDMA_VERBS if direct else HOST_OS_TCP
        self.transport = StackLayer(env, transport_spec, host_pool)
        self.protocol = StackLayer(env, SMB_PROTOCOL, host_pool)
        self.osfs = OsFileSystem(env, filesystem, host_pool)
        self.credits = Resource(env, capacity=credits)

    def host_cores(self, elapsed: float) -> float:
        return self.osfs.serializer.utilization(elapsed)

    def serve(self, request: IoRequest) -> Generator:
        grant = self.credits.request()
        yield grant
        try:
            yield from self.link.transmit(
                "client_to_server", request.wire_size
            )
            yield self.env.timeout(self.link.spec.host_forward)
            yield from self.transport.process(request.wire_size)
            yield from self.protocol.process(request.wire_size)
            if request.op is OpCode.READ:
                data = yield self.env.process(
                    self.osfs.read(
                        request.file_id, request.offset, request.size
                    )
                )
                response = IoResponse(request.request_id, True, data)
            else:
                yield self.env.process(
                    self.osfs.write(
                        request.file_id, request.offset, request.payload
                    )
                )
                response = IoResponse(request.request_id, True)
            yield from self.protocol.process(response.wire_size)
            yield from self.transport.process(response.wire_size)
            yield from self.link.transmit(
                "server_to_client", response.wire_size
            )
        finally:
            self.credits.release()
        return response


class SmbServer(PipelineServer):
    """A mounted remote disk: per-operation round trips, OS files behind.

    ``direct=True`` gives SMB Direct (RDMA transport).  The SMB session
    grants a bounded number of credits (outstanding operations), which
    caps throughput no matter how hard the client pushes.
    """

    #: Outstanding-operation credits per session.
    CREDITS = 32

    def __init__(
        self,
        env: Environment,
        link: NetworkLink,
        filesystem: DdsFileSystem,
        direct: bool = False,
    ) -> None:
        super().__init__(env, link)
        self.direct = direct
        exchange = SmbExchange(
            env, link, filesystem, self.host_pool, self.CREDITS, direct
        )
        self.client_spec = exchange.transport.spec
        # SMB has no batching: each request is its own protocol exchange,
        # even if the benchmark client handed us several at once.
        self._set_pipeline([exchange], execution=exchange)
        self.transport = exchange.transport
        self.protocol = exchange.protocol
        self.osfs = exchange.osfs
        self._credits = exchange.credits
