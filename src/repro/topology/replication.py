"""Replicated shard groups: synchronous primary→backup mirroring.

ROADMAP item 1: the §4.3 raw-disk recovery is crash-consistent but not
*available* — a killed shard's keyspace goes dark for the whole outage.
This module closes that window with SWARM-style near-free replication
(PAPERS.md): every write is applied on the owning primary and
synchronously mirrored to one deterministic backup peer over the
existing director→director relay fabric, and the client ack waits for
the quorum (both members when both are alive, the survivor alone when
one is dark).

* :class:`ReplicaGroup` — the per-keyspace replication state: one shared
  write log (the simulator's model of the replicated log), per-member
  applied sets with contiguous watermarks (mirrors complete out of
  order, so the applied *prefix* is what log-prefix agreement is checked
  against), the current leader, and a monotonic epoch bumped on every
  leadership change.
* :class:`ShardReplicator` — the deployment-level protocol driver:
  routes each keyspace to its acting leader (the director's ``route``
  hook), mirrors writes with relay-fabric costs, runs the deterministic
  leader handoff on ``kill_shard``, and replays the survivor's log into
  a recovered member (anti-entropy catch-up) before it rejoins.

Every protocol step reports to an optional observer (the Derecho-style
runtime invariant checker in :mod:`repro.faults.durability`), so the
invariants are checked *while* chaos runs, not just post-hoc.

Group membership is deterministic: shard ``k``'s group is
``(primary=k, backup=(k+1) % N)``, so with N shards every shard is the
primary of its own keyspace and the backup of its predecessor's.
Handoff is equally deterministic — the primary leads whenever it is
alive, the backup leads otherwise — which is what lets two runs of the
same seed produce identical failover trajectories.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional, Tuple

from ..concurrency.hooks import yield_point
from ..core.messages import IoRequest
from ..core.traffic_director import TrafficDirector
from ..sim import Environment
from ..storage.filesystem import FileSystemError
from ..structures.atomics import AtomicCounter

if TYPE_CHECKING:
    from .sharding import ShardedOffloadServer

__all__ = ["WriteRecord", "CommitRecord", "ReplicaGroup", "ShardReplicator"]


def _digest(payload: bytes) -> str:
    """Short stable content digest for log records and violation text."""
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


@dataclass(frozen=True)
class WriteRecord:
    """One entry of a replica group's write log."""

    lsn: int
    epoch: int
    request_id: int
    file_id: int
    offset: int
    size: int
    digest: str
    payload: bytes = b""

    def describe(self) -> str:
        return (
            f"lsn={self.lsn} epoch={self.epoch} rid={self.request_id} "
            f"file={self.file_id} off={self.offset} digest={self.digest}"
        )


@dataclass(frozen=True)
class CommitRecord:
    """Quorum state of one write at the moment its ack was released."""

    request_id: int
    keyspace: int
    lsn: int
    epoch: int
    #: Members that had applied the write when the ack was released.
    applied: Tuple[int, ...]
    #: Members that were alive when the ack was released.
    live: Tuple[int, ...]


class ReplicaGroup:
    """Replication state for one keyspace (one primary, one backup).

    The log is shared between the members — it models the replicated
    log, and *log-prefix agreement* is the invariant that each member's
    applied prefix (its watermark) is a prefix of it.  Applied lsns land
    in per-member sets because concurrent mirrors complete out of order;
    the watermark only advances over a contiguous prefix.

    All mutations run under the group lock with a preceding
    ``yield_point``, so the deterministic interleaving harness can drive
    concurrent appenders, mirrors, and handoffs through every schedule.
    """

    def __init__(self, keyspace: int, primary: int, backup: int) -> None:
        if primary == backup:
            raise ValueError("a replica group needs two distinct members")
        self.keyspace = keyspace
        self.primary = primary
        self.backup = backup
        self.members: Tuple[int, int] = (primary, backup)
        self.leader = primary
        self.epoch = 0
        #: Prospective backups mid-sync: new writes are mirrored to
        #: them live (marked via :meth:`mark_synced`, outside quorum),
        #: so the resize backfill replays a *fixed* prefix instead of
        #: chasing a growing log it can never catch under sustained
        #: traffic.
        self.joiners: frozenset = frozenset()
        #: Cutover write fence: while set, new appends for this
        #: keyspace stall (a bounded latency blip, never a failure) so
        #: the in-flight mirror set can drain to zero — the only way
        #: total joiner coverage is ever reached under saturation.
        self.fenced = False
        #: Joiner awaiting promotion to backup (set by
        #: :meth:`request_adoption`, consumed by the completion-
        #: triggered swap in :meth:`_maybe_adopt_locked`).
        self._pending_adoption: Optional[int] = None
        #: Evidence from the last swap: ``(member, synced watermark at
        #: the swap instant, log length at the swap instant)`` — the
        #: runtime checker verifies coverage was total *when it
        #: happened*, not at some later observation point.
        self.last_adoption: Optional[Tuple[int, int, int]] = None
        self.log: list = []
        self._applied: Dict[int, set] = {primary: set(), backup: set()}
        self._watermark: Dict[int, int] = {primary: 0, backup: 0}
        # Re-entrant: the completion-triggered swap in _maybe_adopt
        # runs from inside mark_synced's critical section.
        self._lock = threading.RLock()
        self._key = ("replica-group", keyspace)

    # ------------------------------------------------------------------
    # log writes
    # ------------------------------------------------------------------
    def append_record(
        self, request_id: int, file_id: int, offset: int, payload: bytes
    ) -> WriteRecord:
        """Append one write to the log; the lsn is assigned atomically."""
        yield_point("replication.append", self._key)
        with self._lock:
            record = WriteRecord(
                lsn=len(self.log),
                epoch=self.epoch,
                request_id=request_id,
                file_id=file_id,
                offset=offset,
                size=len(payload),
                digest=_digest(payload),
                payload=payload,
            )
            self.log.append(record)
        return record

    def mark_applied(self, member: int, lsn: int) -> None:
        """Record that ``member`` has applied log entry ``lsn``."""
        if member not in self._applied:
            raise ValueError(f"shard {member} is not in group {self.keyspace}")
        yield_point("replication.apply", self._key)
        with self._lock:
            self._applied[member].add(lsn)
            while self._watermark[member] in self._applied[member]:
                self._watermark[member] += 1

    def mark_synced(self, member: int, lsns) -> None:
        """Record log entries a *prospective* member holds on disk.

        The resize sync path writes the log prefix into a shard that is
        not (yet) in the group — membership is not required, and state
        for former members is retained so a later re-adoption only
        replays what they missed.
        """
        yield_point("replication.sync", self._key)
        with self._lock:
            applied = self._applied.setdefault(member, set())
            applied.update(lsns)
            mark = self._watermark.get(member, 0)
            while mark in applied:
                mark += 1
            self._watermark[member] = mark
            # The mirror that completes total coverage performs the
            # pending swap itself — the only instant at which no append
            # can be in flight.
            self._maybe_adopt()

    def synced_watermark(self, member: int) -> int:
        """Like :meth:`applied_watermark`, but 0 for unknown members."""
        return self._watermark.get(member, 0)

    def add_joiner(self, member: int) -> int:
        """Open live mirroring to a prospective backup.

        Returns the join point: every lsn appended from here on reaches
        ``member`` through the write path, so the caller's backfill only
        has to replay entries *below* it (plus the bounded set of
        writes that were mid-mirror at this instant).
        """
        yield_point("replication.join", self._key)
        with self._lock:
            self.joiners = self.joiners | {member}
            return len(self.log)

    # ------------------------------------------------------------------
    # reads (single attribute/dict reads are GIL-indivisible; the lock
    # is reserved for the compound mutations above)
    # ------------------------------------------------------------------
    def has_applied(self, member: int, lsn: int) -> bool:
        return lsn in self._applied[member]

    def applied_watermark(self, member: int) -> int:
        """Length of ``member``'s contiguous applied log prefix."""
        return self._watermark[member]

    def next_unapplied(self, member: int) -> Optional[int]:
        """Lowest lsn ``member`` has not applied, or None if caught up."""
        mark = self._watermark[member]
        return mark if mark < len(self.log) else None

    def record(self, lsn: int) -> WriteRecord:
        return self.log[lsn]

    # ------------------------------------------------------------------
    # leadership
    # ------------------------------------------------------------------
    def elect(self, alive: Callable[[int], bool]) -> Tuple[int, int, bool]:
        """Deterministic re-election: the primary leads whenever it is
        alive, else the backup; both dark leaves the leader unchanged
        (nothing can serve either way).  Returns (old leader, new
        leader, changed); the epoch bumps exactly when leadership moves.
        """
        yield_point("replication.elect", self._key)
        with self._lock:
            old = self.leader
            if alive(self.primary):
                new = self.primary
            elif alive(self.backup):
                new = self.backup
            else:
                new = old
            changed = new != old
            if changed:
                self.leader = new
                self.epoch += 1
        return old, new, changed

    def request_adoption(self, member: int) -> None:
        """Arm the backup swap for a fully-backfilled joiner.

        The swap itself is *completion-triggered*: it runs inside
        whichever :meth:`mark_synced` call closes the joiner's last log
        gap (or inside :meth:`try_adopt` when coverage is already
        total).  Under sustained traffic some append is always
        mid-mirror, so a polling caller could never observe total
        coverage — but at the instant the closing mirror lands, every
        appended lsn is marked, so swapping there is atomic and needs
        no write fence.  A swap is a view change: the epoch bumps.
        """
        yield_point("replication.adopt", self._key)
        with self._lock:
            if member in self.members:
                raise ValueError(
                    f"shard {member} is already in group {self.keyspace}"
                )
            if self.leader != self.primary:
                raise RuntimeError(
                    f"group {self.keyspace}: cannot resize during failover"
                )
            self._pending_adoption = member

    def fence(self) -> None:
        """Raise the cutover write fence (new appends stall)."""
        yield_point("replication.fence", self._key)
        with self._lock:
            self.fenced = True

    def cancel_adoption(self) -> None:
        """Abort a pending swap (failover mid-resize): drop the fence
        and the pending joiner so writes flow again under the old
        pairing."""
        yield_point("replication.fence", self._key)
        with self._lock:
            member = self._pending_adoption
            self._pending_adoption = None
            self.fenced = False
            if member is not None:
                self.joiners = self.joiners - {member}

    def try_adopt(self) -> bool:
        """Attempt the pending swap now (the no-traffic fast path).
        Returns True when no swap remains pending."""
        self._maybe_adopt()
        return self._pending_adoption is None

    def _maybe_adopt(self) -> None:
        yield_point("replication.adopt", self._key)
        with self._lock:
            member = self._pending_adoption
            if member is None:
                return
            if self.leader != self.primary:
                return  # failover mid-resize: hold until it settles
            mark = self._watermark.get(member, 0)
            if mark < len(self.log):
                return
            self._applied.setdefault(member, set())
            self._watermark.setdefault(member, 0)
            # The outgoing backup's applied state is retained for a
            # cheaper future re-adoption.
            self.backup = member
            self.members = (self.primary, member)
            self.joiners = self.joiners - {member}
            self.epoch += 1
            self._pending_adoption = None
            self.fenced = False
            self.last_adoption = (member, mark, len(self.log))


class ShardReplicator:
    """Drives the replication protocol over a sharded deployment.

    Constructed by :meth:`ShardedOffloadServer.enable_replication`; the
    optional ``observer`` (a
    :class:`~repro.faults.durability.ReplicationInvariantChecker`)
    receives a synchronous callback at every protocol step:
    ``on_append``, ``on_apply``, ``on_commit``, ``on_handoff``,
    ``on_rejoin``, ``on_resize``.
    """

    #: Poll interval while a resize waits for its completion-triggered
    #: backup swap (and the stall-detection horizon for re-backfills).
    ADOPT_TICK = 250e-6

    def __init__(
        self,
        env: Environment,
        server: "ShardedOffloadServer",
        observer=None,
    ) -> None:
        members = sorted(
            shard.index for shard in server.shards if not shard.retired
        )
        if len(members) < 2:
            raise ValueError("replication needs at least two shards")
        self.env = env
        self.server = server
        self.observer = observer
        # Keyspace k's group is (primary=k, backup=next live member in
        # cyclic order) — identical to (k+1) % N while membership is
        # contiguous, and well-defined after drains leave holes.
        self.groups: Dict[int, ReplicaGroup] = {
            member: ReplicaGroup(
                keyspace=member,
                primary=member,
                backup=members[(rank + 1) % len(members)],
            )
            for rank, member in enumerate(members)
        }
        #: request_id -> quorum state at ack time (the runtime checker's
        #: no-ack-before-quorum evidence).
        self.commits: Dict[int, CommitRecord] = {}
        self._lock = threading.Lock()
        self._key = ("replicator", id(self))
        self._mirrored = AtomicCounter(0)
        self._solo_acks = AtomicCounter(0)
        self._handoffs = AtomicCounter(0)
        self._catchup_replays = AtomicCounter(0)
        self._mirror_failures = AtomicCounter(0)
        self._resizes = AtomicCounter(0)

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    @property
    def mirrored_writes(self) -> int:
        """Writes successfully applied on the backup before their ack."""
        return self._mirrored.load()

    @property
    def solo_acks(self) -> int:
        """Writes acked by a lone survivor (the peer was dark)."""
        return self._solo_acks.load()

    @property
    def handoffs(self) -> int:
        """Leadership changes (kill-triggered plus rejoin-triggered)."""
        return self._handoffs.load()

    @property
    def catchup_replays(self) -> int:
        """Log entries replayed into recovering members."""
        return self._catchup_replays.load()

    @property
    def mirror_failures(self) -> int:
        """Mirror applies that failed at the peer's filesystem."""
        return self._mirror_failures.load()

    @property
    def resizes(self) -> int:
        """Backup adoptions executed by :meth:`resize`."""
        return self._resizes.load()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def leader_of(self, keyspace: int) -> int:
        """The shard currently serving ``keyspace`` (the director's
        ``route`` hook)."""
        return self.groups[keyspace].leader

    def _alive(self, member: int) -> bool:
        return self.server.shards[member].alive

    # ------------------------------------------------------------------
    # write path (called by the serving shard after its local apply,
    # before the client ack is released)
    # ------------------------------------------------------------------
    def replicate(self, executor: int, request: IoRequest) -> Generator:
        """Log + mirror one applied write; returns once the quorum holds.

        ``executor`` is the shard whose filesystem already holds the
        write (the acting leader).  The record is appended, the peer is
        mirrored synchronously over the relay fabric when alive, and the
        quorum state at ack time is recorded for the runtime checker.

        Returns ``True`` when the group committed the write.  ``False``
        means the executor died between its local apply and this hop:
        the write exists only on the dead member's disk, so the caller
        must *fail* the response — a success would land in the shared
        dedup table and be replayed to the retrying client by the new
        leader without ever reaching the group log (an ack below
        quorum).  Failing it makes the dedup entry abandon, and the
        retry re-executes on the acting leader.
        """
        server = self.server
        keyspace = server.shard_map.owner(request.file_id)
        group = self.groups[keyspace]
        while group.fenced:
            # Resize cutover in progress: hold the append (bounded — the
            # fence lifts as soon as the in-flight mirrors drain).  No
            # simulation yield separates this check from the append, so
            # nothing slips under a fence raised afterwards.
            yield self.env.timeout(self.ADOPT_TICK)
        if not self._alive(executor) or executor != group.leader:
            # Dead, demoted, or a resharding straggler (the file's
            # keyspace flipped between routing and this hop — the old
            # owner may even be the *backup* of the new group, and a
            # non-leader append would break RI1).  Fail the response:
            # the retry re-executes on the current leader.
            return False
        record = group.append_record(
            request.request_id, request.file_id, request.offset,
            request.payload or b"",
        )
        if self.observer is not None:
            self.observer.on_append(group, record, executor)
        group.mark_applied(executor, record.lsn)
        if self.observer is not None:
            self.observer.on_apply(group, record, executor, catchup=False)
        peer = group.backup if executor == group.primary else group.primary
        if self._alive(peer):
            yield from self._mirror_to(executor, peer, group, record, request)
        for joiner in group.joiners:
            # Resize in progress: keep the prospective backup current so
            # the backfill's prefix stays fixed.  Outside the quorum —
            # marked synced, not applied.
            if self._alive(joiner):
                yield from self._mirror_to_joiner(
                    executor, joiner, group, record, request
                )
        applied = tuple(
            m for m in group.members if group.has_applied(m, record.lsn)
        )
        live = tuple(m for m in group.members if self._alive(m))
        commit = CommitRecord(
            request_id=request.request_id,
            keyspace=keyspace,
            lsn=record.lsn,
            epoch=record.epoch,
            applied=applied,
            live=live,
        )
        yield_point("replication.commit", self._key)
        with self._lock:
            self.commits[request.request_id] = commit
        if len(applied) < 2:
            self._solo_acks.fetch_add(1)
        if self.observer is not None:
            self.observer.on_commit(group, record, commit)
        return True

    def _mirror_to(
        self,
        executor: int,
        peer: int,
        group: ReplicaGroup,
        record: WriteRecord,
        request: IoRequest,
    ) -> Generator:
        """One synchronous backup apply over the director relay fabric.

        Charged like the §5.3 bump-in-the-wire forward the relay path
        already pays: Arm-core forward cost on the executor, the DPU→DPU
        fabric hop, receive cost on the peer, then a device-timed write
        into the peer's filesystem.
        """
        server = self.server
        link = server.link
        packets = link.packets_for(request.wire_size)
        yield from server.shards[executor].cores[0].execute(
            TrafficDirector.FORWARD_COST_PER_PACKET * packets
        )
        yield self.env.timeout(link.spec.dpu_forward)
        if not self._alive(peer):
            return  # the peer died in flight: catch-up will replay
        yield from server.shards[peer].cores[0].execute(
            TrafficDirector.RX_COST_PER_PACKET * packets
        )
        try:
            yield from server.filesystems[peer].write(
                record.file_id, record.offset, record.payload
            )
        except FileSystemError:
            # The peer's device refused the mirror: the write stays
            # below quorum and the runtime checker flags its ack.
            self._mirror_failures.fetch_add(1)
            return
        if not self._alive(peer):
            # Died mid-write: do not count the apply — anti-entropy
            # re-replays it idempotently during recovery.
            return
        if peer not in group.members:
            # The pairing resized while this mirror was in flight: the
            # old backup took the bytes but left the group — its copy
            # is history, not quorum.
            return
        group.mark_applied(peer, record.lsn)
        self._mirrored.fetch_add(1)
        if self.observer is not None:
            self.observer.on_apply(group, record, peer, catchup=False)

    def _mirror_to_joiner(
        self,
        executor: int,
        joiner: int,
        group: ReplicaGroup,
        record: WriteRecord,
        request: IoRequest,
    ) -> Generator:
        """Mirror one write to a prospective backup mid-resize.

        Same relay-fabric cost model as :meth:`_mirror_to`, but the
        apply lands in the *synced* ledger — a joiner is outside the
        quorum until :meth:`ReplicaGroup.adopt_backup` admits it, so
        the runtime checker's RI2/RI3 membership rules never see it.
        """
        server = self.server
        link = server.link
        packets = link.packets_for(request.wire_size)
        yield from server.shards[executor].cores[0].execute(
            TrafficDirector.FORWARD_COST_PER_PACKET * packets
        )
        yield self.env.timeout(link.spec.dpu_forward)
        if not self._alive(joiner):
            return  # the backfill loop re-replays it after recovery
        yield from server.shards[joiner].cores[0].execute(
            TrafficDirector.RX_COST_PER_PACKET * packets
        )
        try:
            yield from server.filesystems[joiner].write(
                record.file_id, record.offset, record.payload
            )
        except FileSystemError:
            self._mirror_failures.fetch_add(1)
            return
        if not self._alive(joiner):
            return
        group.mark_synced(joiner, (record.lsn,))

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def on_kill(self, index: int) -> None:
        """Deterministic leader handoff after ``kill_shard(index)``.

        Runs synchronously inside ``kill_shard`` (no simulation yield
        between the alive flip and the re-election), so the backup
        serves the dead shard's keyspace from the very next event.
        """
        self._reelect(index)

    def on_rejoin(self, index: int) -> None:
        """Hand leadership back after catch-up completed."""
        self._reelect(index)
        if self.observer is not None:
            for group in self._groups_of(index):
                self.observer.on_rejoin(group, index)

    def _reelect(self, index: int) -> None:
        for group in self._groups_of(index):
            old, new, changed = group.elect(self._alive)
            if changed:
                self._handoffs.fetch_add(1)
                if self.observer is not None:
                    alive = tuple(
                        m for m in group.members if self._alive(m)
                    )
                    self.observer.on_handoff(group, old, new, alive)

    def _groups_of(self, index: int):
        for keyspace in sorted(self.groups):
            group = self.groups[keyspace]
            if index in group.members:
                yield group

    # ------------------------------------------------------------------
    # anti-entropy catch-up
    # ------------------------------------------------------------------
    def catch_up(self, index: int) -> Generator:
        """Replay the survivor's log into a recovered member.

        Runs inside ``recover_shard`` after the filesystem is rebuilt
        from raw disk and *before* the shard is marked alive: every log
        entry the member missed is re-written (device-timed, in lsn
        order).  Writes keep landing on the acting leader while this
        runs; the loop re-checks the log length after every replay and
        returns with **no trailing yield**, so the caller's alive flip +
        rejoin happen atomically after the final check — there is no
        window for a write to slip past both catch-up and mirroring.
        """
        for group in self._groups_of(index):
            while True:
                lsn = group.next_unapplied(index)
                if lsn is None:
                    break
                record = group.record(lsn)
                yield from self.server.filesystems[index].write(
                    record.file_id, record.offset, record.payload
                )
                group.mark_applied(index, lsn)
                self._catchup_replays.fetch_add(1)
                if self.observer is not None:
                    self.observer.on_apply(
                        group, record, index, catchup=True
                    )

    # ------------------------------------------------------------------
    # elastic resize
    # ------------------------------------------------------------------
    def seed_from_clone(self, member: int, source: int) -> None:
        """Credit a freshly cloned shard with ``source``'s applied
        prefixes.

        ``add_shard`` clones the new shard's namespace from an existing
        disk, so every log entry ``source`` had applied at the clone
        instant is already on the clone byte-for-byte — for each group
        ``source`` belongs to, the clone's synced watermark starts at
        ``source``'s applied watermark instead of zero, and the resize
        backfill shrinks to the in-flight tail.  The caller must not
        yield simulation time between the clone and this call.
        """
        for group in self._groups_of(source):
            mark = group.applied_watermark(source)
            if mark:
                group.mark_synced(member, range(0, mark))

    def resize(self) -> Generator:
        """Re-derive the backup pairing for the current live membership.

        Called by :meth:`ShardedOffloadServer.add_shard` (after the new
        shard is wired, *before* any keyspace flips to it) and by
        :meth:`~ShardedOffloadServer.drain_shard` (after the drained
        shard's migration, before it is retired).  The pairing is the
        same rule ``__init__`` uses — backup = next live member in
        cyclic order — so a contiguous membership reproduces the
        original ``(k + 1) % N`` groups exactly.

        Each changed group is resized in two steps: the prospective
        backup is *synced* (the log prefix it is missing is replayed
        into its filesystem, device-timed, while writes keep landing on
        the primary), then *adopted* with no simulation yield after the
        final sync check — the same no-dark-window discipline as
        :meth:`catch_up`.  RI1–RI5 hold throughout because the old
        backup stays in the group (still mirroring, still quorum) until
        the instant the new one is fully caught up.
        """
        members = sorted(
            shard.index
            for shard in self.server.shards
            if not shard.retired
        )
        if len(members) < 2:
            raise ValueError("replication needs at least two shards")
        backup_of = {
            member: members[(rank + 1) % len(members)]
            for rank, member in enumerate(members)
        }
        for keyspace in sorted(self.groups):
            if keyspace in backup_of:
                continue
            # The keyspace's owner drained: its files migrated away and
            # its group has nothing left to protect.
            yield_point("replication.resize", self._key)
            with self._lock:
                retired_group = self.groups.pop(keyspace)
            if self.observer is not None:
                self.observer.on_resize(
                    retired_group, retired_group.backup, None, 0
                )
        for member in members:
            group = self.groups.get(member)
            if group is None:
                new_group = ReplicaGroup(
                    keyspace=member,
                    primary=member,
                    backup=backup_of[member],
                )
                yield_point("replication.resize", self._key)
                with self._lock:
                    self.groups[member] = new_group
                if self.observer is not None:
                    self.observer.on_resize(
                        new_group, None, backup_of[member], 0
                    )
                continue
            new_backup = backup_of[member]
            if group.backup == new_backup:
                continue
            old_backup = group.backup
            synced = yield from self._sync_member(group, new_backup)
            group.request_adoption(new_backup)
            if not group.try_adopt():
                # Mirrors are in flight: fence new appends for this
                # keyspace (a bounded latency blip) so the in-flight
                # set drains to zero — under saturation some append is
                # otherwise always mid-mirror and coverage never
                # completes.  The swap fires inside the mirror that
                # closes the last gap and lifts the fence itself.
                group.fence()
                last_mark = -1
                while group.backup != new_backup:
                    if group.leader != group.primary:
                        # Failover mid-cutover: abort, writes flow
                        # again under the old (still intact) pairing.
                        group.cancel_adoption()
                        raise RuntimeError(
                            f"group {group.keyspace}: resize aborted "
                            "by a failover mid-cutover"
                        )
                    yield self.env.timeout(self.ADOPT_TICK)
                    mark = group.synced_watermark(new_backup)
                    if mark == last_mark and self._alive(new_backup):
                        # Wedged (e.g. a mirror skipped while the
                        # joiner was dark): re-backfill the hole.
                        synced += yield from self._replay_window(
                            group, new_backup, len(group.log)
                        )
                        group.try_adopt()
                    last_mark = mark
            self._resizes.fetch_add(1)
            if self.observer is not None:
                self.observer.on_resize(group, old_backup, new_backup, synced)

    def _sync_member(self, group: ReplicaGroup, member: int) -> Generator:
        """Backfill ``group``'s log into a prospective backup.

        The member is registered as a *joiner* first, so every write
        appended from that instant mirrors to it through the ordinary
        write path — the backfill then replays the **fixed** prefix
        below the join point instead of chasing a log that grows faster
        than a sequential replay can drain (under sustained traffic
        that chase never converges).  Any lsn appended before the join
        registration is already in the log (appends precede mirrors),
        so prefix + live mirroring covers every entry.  Returns the
        number of log entries backfilled.
        """
        join_at = group.add_joiner(member)
        total = 0
        while True:
            mark = group.synced_watermark(member)
            if mark >= join_at:
                return total
            total += yield from self._replay_window(group, member, join_at)

    def _replay_window(
        self, group: ReplicaGroup, member: int, upto: int
    ) -> Generator:
        """Device-timed replay of log window ``[watermark, upto)`` into
        ``member``, coalesced to the latest record per ``(file_id,
        offset)`` — earlier versions are dead bytes.  Returns the
        number of log entries covered."""
        mark = group.synced_watermark(member)
        if mark >= upto:
            return 0
        latest: Dict[Tuple[int, int], WriteRecord] = {}
        for lsn in range(mark, upto):
            record = group.record(lsn)
            latest[(record.file_id, record.offset)] = record
        for record in sorted(latest.values(), key=lambda r: r.lsn):
            yield from self.server.filesystems[member].write(
                record.file_id, record.offset, record.payload
            )
            self._catchup_replays.fetch_add(1)
        group.mark_synced(member, range(mark, upto))
        return upto - mark
