"""Replicated shard groups: synchronous primary→backup mirroring.

ROADMAP item 1: the §4.3 raw-disk recovery is crash-consistent but not
*available* — a killed shard's keyspace goes dark for the whole outage.
This module closes that window with SWARM-style near-free replication
(PAPERS.md): every write is applied on the owning primary and
synchronously mirrored to one deterministic backup peer over the
existing director→director relay fabric, and the client ack waits for
the quorum (both members when both are alive, the survivor alone when
one is dark).

* :class:`ReplicaGroup` — the per-keyspace replication state: one shared
  write log (the simulator's model of the replicated log), per-member
  applied sets with contiguous watermarks (mirrors complete out of
  order, so the applied *prefix* is what log-prefix agreement is checked
  against), the current leader, and a monotonic epoch bumped on every
  leadership change.
* :class:`ShardReplicator` — the deployment-level protocol driver:
  routes each keyspace to its acting leader (the director's ``route``
  hook), mirrors writes with relay-fabric costs, runs the deterministic
  leader handoff on ``kill_shard``, and replays the survivor's log into
  a recovered member (anti-entropy catch-up) before it rejoins.

Every protocol step reports to an optional observer (the Derecho-style
runtime invariant checker in :mod:`repro.faults.durability`), so the
invariants are checked *while* chaos runs, not just post-hoc.

Group membership is deterministic: shard ``k``'s group is
``(primary=k, backup=(k+1) % N)``, so with N shards every shard is the
primary of its own keyspace and the backup of its predecessor's.
Handoff is equally deterministic — the primary leads whenever it is
alive, the backup leads otherwise — which is what lets two runs of the
same seed produce identical failover trajectories.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional, Tuple

from ..concurrency.hooks import yield_point
from ..core.messages import IoRequest
from ..core.traffic_director import TrafficDirector
from ..sim import Environment
from ..storage.filesystem import FileSystemError
from ..structures.atomics import AtomicCounter

if TYPE_CHECKING:
    from .sharding import ShardedOffloadServer

__all__ = ["WriteRecord", "CommitRecord", "ReplicaGroup", "ShardReplicator"]


def _digest(payload: bytes) -> str:
    """Short stable content digest for log records and violation text."""
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


@dataclass(frozen=True)
class WriteRecord:
    """One entry of a replica group's write log."""

    lsn: int
    epoch: int
    request_id: int
    file_id: int
    offset: int
    size: int
    digest: str
    payload: bytes = b""

    def describe(self) -> str:
        return (
            f"lsn={self.lsn} epoch={self.epoch} rid={self.request_id} "
            f"file={self.file_id} off={self.offset} digest={self.digest}"
        )


@dataclass(frozen=True)
class CommitRecord:
    """Quorum state of one write at the moment its ack was released."""

    request_id: int
    keyspace: int
    lsn: int
    epoch: int
    #: Members that had applied the write when the ack was released.
    applied: Tuple[int, ...]
    #: Members that were alive when the ack was released.
    live: Tuple[int, ...]


class ReplicaGroup:
    """Replication state for one keyspace (one primary, one backup).

    The log is shared between the members — it models the replicated
    log, and *log-prefix agreement* is the invariant that each member's
    applied prefix (its watermark) is a prefix of it.  Applied lsns land
    in per-member sets because concurrent mirrors complete out of order;
    the watermark only advances over a contiguous prefix.

    All mutations run under the group lock with a preceding
    ``yield_point``, so the deterministic interleaving harness can drive
    concurrent appenders, mirrors, and handoffs through every schedule.
    """

    def __init__(self, keyspace: int, primary: int, backup: int) -> None:
        if primary == backup:
            raise ValueError("a replica group needs two distinct members")
        self.keyspace = keyspace
        self.primary = primary
        self.backup = backup
        self.members: Tuple[int, int] = (primary, backup)
        self.leader = primary
        self.epoch = 0
        self.log: list = []
        self._applied: Dict[int, set] = {primary: set(), backup: set()}
        self._watermark: Dict[int, int] = {primary: 0, backup: 0}
        self._lock = threading.Lock()
        self._key = ("replica-group", keyspace)

    # ------------------------------------------------------------------
    # log writes
    # ------------------------------------------------------------------
    def append_record(
        self, request_id: int, file_id: int, offset: int, payload: bytes
    ) -> WriteRecord:
        """Append one write to the log; the lsn is assigned atomically."""
        yield_point("replication.append", self._key)
        with self._lock:
            record = WriteRecord(
                lsn=len(self.log),
                epoch=self.epoch,
                request_id=request_id,
                file_id=file_id,
                offset=offset,
                size=len(payload),
                digest=_digest(payload),
                payload=payload,
            )
            self.log.append(record)
        return record

    def mark_applied(self, member: int, lsn: int) -> None:
        """Record that ``member`` has applied log entry ``lsn``."""
        if member not in self._applied:
            raise ValueError(f"shard {member} is not in group {self.keyspace}")
        yield_point("replication.apply", self._key)
        with self._lock:
            self._applied[member].add(lsn)
            while self._watermark[member] in self._applied[member]:
                self._watermark[member] += 1

    # ------------------------------------------------------------------
    # reads (single attribute/dict reads are GIL-indivisible; the lock
    # is reserved for the compound mutations above)
    # ------------------------------------------------------------------
    def has_applied(self, member: int, lsn: int) -> bool:
        return lsn in self._applied[member]

    def applied_watermark(self, member: int) -> int:
        """Length of ``member``'s contiguous applied log prefix."""
        return self._watermark[member]

    def next_unapplied(self, member: int) -> Optional[int]:
        """Lowest lsn ``member`` has not applied, or None if caught up."""
        mark = self._watermark[member]
        return mark if mark < len(self.log) else None

    def record(self, lsn: int) -> WriteRecord:
        return self.log[lsn]

    # ------------------------------------------------------------------
    # leadership
    # ------------------------------------------------------------------
    def elect(self, alive: Callable[[int], bool]) -> Tuple[int, int, bool]:
        """Deterministic re-election: the primary leads whenever it is
        alive, else the backup; both dark leaves the leader unchanged
        (nothing can serve either way).  Returns (old leader, new
        leader, changed); the epoch bumps exactly when leadership moves.
        """
        yield_point("replication.elect", self._key)
        with self._lock:
            old = self.leader
            if alive(self.primary):
                new = self.primary
            elif alive(self.backup):
                new = self.backup
            else:
                new = old
            changed = new != old
            if changed:
                self.leader = new
                self.epoch += 1
        return old, new, changed


class ShardReplicator:
    """Drives the replication protocol over a sharded deployment.

    Constructed by :meth:`ShardedOffloadServer.enable_replication`; the
    optional ``observer`` (a
    :class:`~repro.faults.durability.ReplicationInvariantChecker`)
    receives a synchronous callback at every protocol step:
    ``on_append``, ``on_apply``, ``on_commit``, ``on_handoff``,
    ``on_rejoin``.
    """

    def __init__(
        self,
        env: Environment,
        server: "ShardedOffloadServer",
        observer=None,
    ) -> None:
        shard_count = len(server.shards)
        if shard_count < 2:
            raise ValueError("replication needs at least two shards")
        self.env = env
        self.server = server
        self.observer = observer
        self.groups: Dict[int, ReplicaGroup] = {
            index: ReplicaGroup(
                keyspace=index,
                primary=index,
                backup=(index + 1) % shard_count,
            )
            for index in range(shard_count)
        }
        #: request_id -> quorum state at ack time (the runtime checker's
        #: no-ack-before-quorum evidence).
        self.commits: Dict[int, CommitRecord] = {}
        self._lock = threading.Lock()
        self._key = ("replicator", id(self))
        self._mirrored = AtomicCounter(0)
        self._solo_acks = AtomicCounter(0)
        self._handoffs = AtomicCounter(0)
        self._catchup_replays = AtomicCounter(0)
        self._mirror_failures = AtomicCounter(0)

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    @property
    def mirrored_writes(self) -> int:
        """Writes successfully applied on the backup before their ack."""
        return self._mirrored.load()

    @property
    def solo_acks(self) -> int:
        """Writes acked by a lone survivor (the peer was dark)."""
        return self._solo_acks.load()

    @property
    def handoffs(self) -> int:
        """Leadership changes (kill-triggered plus rejoin-triggered)."""
        return self._handoffs.load()

    @property
    def catchup_replays(self) -> int:
        """Log entries replayed into recovering members."""
        return self._catchup_replays.load()

    @property
    def mirror_failures(self) -> int:
        """Mirror applies that failed at the peer's filesystem."""
        return self._mirror_failures.load()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def leader_of(self, keyspace: int) -> int:
        """The shard currently serving ``keyspace`` (the director's
        ``route`` hook)."""
        return self.groups[keyspace].leader

    def _alive(self, member: int) -> bool:
        return self.server.shards[member].alive

    # ------------------------------------------------------------------
    # write path (called by the serving shard after its local apply,
    # before the client ack is released)
    # ------------------------------------------------------------------
    def replicate(self, executor: int, request: IoRequest) -> Generator:
        """Log + mirror one applied write; returns once the quorum holds.

        ``executor`` is the shard whose filesystem already holds the
        write (the acting leader).  The record is appended, the peer is
        mirrored synchronously over the relay fabric when alive, and the
        quorum state at ack time is recorded for the runtime checker.

        Returns ``True`` when the group committed the write.  ``False``
        means the executor died between its local apply and this hop:
        the write exists only on the dead member's disk, so the caller
        must *fail* the response — a success would land in the shared
        dedup table and be replayed to the retrying client by the new
        leader without ever reaching the group log (an ack below
        quorum).  Failing it makes the dedup entry abandon, and the
        retry re-executes on the acting leader.
        """
        server = self.server
        keyspace = server.shard_map.owner(request.file_id)
        group = self.groups[keyspace]
        if not self._alive(executor) or executor not in group.members:
            return False
        record = group.append_record(
            request.request_id, request.file_id, request.offset,
            request.payload or b"",
        )
        if self.observer is not None:
            self.observer.on_append(group, record, executor)
        group.mark_applied(executor, record.lsn)
        if self.observer is not None:
            self.observer.on_apply(group, record, executor, catchup=False)
        peer = group.backup if executor == group.primary else group.primary
        if self._alive(peer):
            yield from self._mirror_to(executor, peer, group, record, request)
        applied = tuple(
            m for m in group.members if group.has_applied(m, record.lsn)
        )
        live = tuple(m for m in group.members if self._alive(m))
        commit = CommitRecord(
            request_id=request.request_id,
            keyspace=keyspace,
            lsn=record.lsn,
            epoch=record.epoch,
            applied=applied,
            live=live,
        )
        yield_point("replication.commit", self._key)
        with self._lock:
            self.commits[request.request_id] = commit
        if len(applied) < 2:
            self._solo_acks.fetch_add(1)
        if self.observer is not None:
            self.observer.on_commit(group, record, commit)
        return True

    def _mirror_to(
        self,
        executor: int,
        peer: int,
        group: ReplicaGroup,
        record: WriteRecord,
        request: IoRequest,
    ) -> Generator:
        """One synchronous backup apply over the director relay fabric.

        Charged like the §5.3 bump-in-the-wire forward the relay path
        already pays: Arm-core forward cost on the executor, the DPU→DPU
        fabric hop, receive cost on the peer, then a device-timed write
        into the peer's filesystem.
        """
        server = self.server
        link = server.link
        packets = link.packets_for(request.wire_size)
        yield from server.shards[executor].cores[0].execute(
            TrafficDirector.FORWARD_COST_PER_PACKET * packets
        )
        yield self.env.timeout(link.spec.dpu_forward)
        if not self._alive(peer):
            return  # the peer died in flight: catch-up will replay
        yield from server.shards[peer].cores[0].execute(
            TrafficDirector.RX_COST_PER_PACKET * packets
        )
        try:
            yield from server.filesystems[peer].write(
                record.file_id, record.offset, record.payload
            )
        except FileSystemError:
            # The peer's device refused the mirror: the write stays
            # below quorum and the runtime checker flags its ack.
            self._mirror_failures.fetch_add(1)
            return
        if not self._alive(peer):
            # Died mid-write: do not count the apply — anti-entropy
            # re-replays it idempotently during recovery.
            return
        group.mark_applied(peer, record.lsn)
        self._mirrored.fetch_add(1)
        if self.observer is not None:
            self.observer.on_apply(group, record, peer, catchup=False)

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def on_kill(self, index: int) -> None:
        """Deterministic leader handoff after ``kill_shard(index)``.

        Runs synchronously inside ``kill_shard`` (no simulation yield
        between the alive flip and the re-election), so the backup
        serves the dead shard's keyspace from the very next event.
        """
        self._reelect(index)

    def on_rejoin(self, index: int) -> None:
        """Hand leadership back after catch-up completed."""
        self._reelect(index)
        if self.observer is not None:
            for group in self._groups_of(index):
                self.observer.on_rejoin(group, index)

    def _reelect(self, index: int) -> None:
        for group in self._groups_of(index):
            old, new, changed = group.elect(self._alive)
            if changed:
                self._handoffs.fetch_add(1)
                if self.observer is not None:
                    alive = tuple(
                        m for m in group.members if self._alive(m)
                    )
                    self.observer.on_handoff(group, old, new, alive)

    def _groups_of(self, index: int):
        for keyspace in sorted(self.groups):
            group = self.groups[keyspace]
            if index in group.members:
                yield group

    # ------------------------------------------------------------------
    # anti-entropy catch-up
    # ------------------------------------------------------------------
    def catch_up(self, index: int) -> Generator:
        """Replay the survivor's log into a recovered member.

        Runs inside ``recover_shard`` after the filesystem is rebuilt
        from raw disk and *before* the shard is marked alive: every log
        entry the member missed is re-written (device-timed, in lsn
        order).  Writes keep landing on the acting leader while this
        runs; the loop re-checks the log length after every replay and
        returns with **no trailing yield**, so the caller's alive flip +
        rejoin happen atomically after the final check — there is no
        window for a write to slip past both catch-up and mirroring.
        """
        for group in self._groups_of(index):
            while True:
                lsn = group.next_unapplied(index)
                if lsn is None:
                    break
                record = group.record(lsn)
                yield from self.server.filesystems[index].write(
                    record.file_id, record.offset, record.payload
                )
                group.mark_applied(index, lsn)
                self._catchup_replays.fetch_add(1)
                if self.observer is not None:
                    self.observer.on_apply(
                        group, record, index, catchup=True
                    )
