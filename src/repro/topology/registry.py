"""The solution registry: every deployment the harness can build.

This is the single source of truth for solution names.  Each entry is a
:class:`~repro.topology.spec.DeploymentSpec`; :func:`build_server` turns
a spec (or its registered name) into a fully wired server on a given
environment/link/filesystem.  The bench harness, the figure benchmarks,
and the examples all resolve names here — there is no string-dispatch
ladder anywhere else.

The ten ``headline`` entries are the solutions charted in Figure 16, in
chart order; the remaining entries are the ablations (zero-copy off) and
the multi-DPU sharded deployments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple, Union

from .spec import DeploymentSpec, FilesystemKind, TransportKind

if TYPE_CHECKING:
    from ..core.server import StorageServerBase
    from ..hardware.nic import NetworkLink
    from ..sim import Environment
    from ..storage.filesystem import DdsFileSystem

__all__ = ["SOLUTIONS", "headline_solutions", "resolve", "build_server"]


def _specs() -> Tuple[DeploymentSpec, ...]:
    tcp = TransportKind.TCP
    dds = FilesystemKind.DDS
    os_ = FilesystemKind.OS
    return (
        # -- the ten Figure 16 solutions, chart order ------------------
        DeploymentSpec(
            "local-os", "① Windows files on local SSDs",
            TransportKind.NONE, os_, headline=True,
        ),
        DeploymentSpec(
            "local-dds", "② DDS files on local SSDs (DPU execution)",
            TransportKind.NONE, dds, dpu_count=1, headline=True,
        ),
        DeploymentSpec(
            "smb", "③ SMB remote mount over TCP",
            TransportKind.SMB, os_, headline=True,
        ),
        DeploymentSpec(
            "smb-direct", "④ SMB Direct (SMB over RDMA)",
            TransportKind.SMB_DIRECT, os_, headline=True,
        ),
        DeploymentSpec(
            "baseline", "⑤ sockets TCP + Windows files",
            tcp, os_, headline=True,
        ),
        DeploymentSpec(
            "dds-files", "⑥ sockets TCP + DDS file library",
            tcp, dds, dpu_count=1, headline=True,
        ),
        DeploymentSpec(
            "redy-os", "⑦ Redy RPC + Windows files",
            TransportKind.REDY, os_, headline=True,
        ),
        DeploymentSpec(
            "redy-dds", "⑧ Redy RPC + DDS file library",
            TransportKind.REDY, dds, dpu_count=1, headline=True,
        ),
        DeploymentSpec(
            "dds-offload", "⑨ DDS offloading over TCP",
            tcp, dds, offload=True, dpu_count=1, headline=True,
        ),
        DeploymentSpec(
            "dds-offload-rdma", "⑩ DDS offloading over RDMA",
            TransportKind.RDMA, dds, offload=True, dpu_count=1,
            headline=True,
        ),
        # -- ablations -------------------------------------------------
        DeploymentSpec(
            "dds-files-copy",
            "⑥ with zero-copy disabled (Figure 18 ablation)",
            tcp, dds, dpu_count=1, copy_mode=True,
        ),
        DeploymentSpec(
            "dds-offload-copy",
            "⑨ with zero-copy disabled (Figure 23 ablation)",
            tcp, dds, offload=True, dpu_count=1, copy_mode=True,
        ),
        # -- multi-DPU scale-out ---------------------------------------
        DeploymentSpec(
            "dds-offload-shard2",
            "⑨ sharded across 2 DPUs (consistent-hash shard map)",
            tcp, dds, offload=True, dpu_count=2,
        ),
        DeploymentSpec(
            "dds-offload-shard4",
            "⑨ sharded across 4 DPUs (consistent-hash shard map)",
            tcp, dds, offload=True, dpu_count=4,
        ),
    )


#: Name → spec, in documentation order.
SOLUTIONS: Dict[str, DeploymentSpec] = {
    spec.name: spec for spec in _specs()
}


def headline_solutions() -> Tuple[str, ...]:
    """The ten Figure 16 solution names, in chart order."""
    return tuple(
        name for name, spec in SOLUTIONS.items() if spec.headline
    )


def resolve(solution: Union[str, DeploymentSpec]) -> DeploymentSpec:
    """Look a solution up by name (specs pass through unchanged)."""
    if isinstance(solution, DeploymentSpec):
        return solution
    spec = SOLUTIONS.get(solution)
    if spec is None:
        raise ValueError(f"unknown solution: {solution!r}")
    return spec


def build_server(
    solution: Union[str, DeploymentSpec],
    env: "Environment",
    link: "NetworkLink",
    filesystem: "DdsFileSystem",
) -> "StorageServerBase":
    """Wire the server a spec describes.

    Dispatch is on the spec's typed fields, so registering a new solution
    is *only* adding a :class:`DeploymentSpec` — no builder edits — as
    long as it composes the existing stages.
    """
    spec = resolve(solution)
    if spec.transport is TransportKind.NONE:
        from ..baselines.local import LocalDdsServer, LocalOsServer

        if spec.filesystem is FilesystemKind.DDS:
            return LocalDdsServer(env, link, filesystem)
        return LocalOsServer(env, link, filesystem)
    if spec.transport in (TransportKind.SMB, TransportKind.SMB_DIRECT):
        from ..baselines.smb import SmbServer

        return SmbServer(
            env, link, filesystem,
            direct=spec.transport is TransportKind.SMB_DIRECT,
        )
    if spec.transport is TransportKind.REDY:
        from ..baselines.redy import RedyServer

        return RedyServer(
            env, link, filesystem,
            dds_files=spec.filesystem is FilesystemKind.DDS,
        )
    rdma = spec.transport is TransportKind.RDMA
    if spec.offload:
        if spec.sharded:
            from .sharding import ShardedOffloadServer

            return ShardedOffloadServer(
                env, link, filesystem,
                shard_count=spec.dpu_count,
                cache_items=spec.cache_items,
                director_cores=spec.director_cores,
                context_slots=spec.context_slots,
                copy_mode=spec.copy_mode,
                rdma_transport=rdma,
            )
        from ..core.server import DdsOffloadServer

        return DdsOffloadServer(
            env, link, filesystem,
            cache_items=spec.cache_items,
            director_cores=spec.director_cores,
            context_slots=spec.context_slots,
            copy_mode=spec.copy_mode,
            rdma_transport=rdma,
        )
    if spec.filesystem is FilesystemKind.DDS:
        from ..core.server import DdsLibraryServer

        return DdsLibraryServer(env, link, filesystem, copy_mode=spec.copy_mode)
    from ..core.server import BaselineServer

    return BaselineServer(env, link, filesystem)
