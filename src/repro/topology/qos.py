"""Datapath QoS: per-tenant admission, bounded queues, and DRR dispatch.

This is `extensions/multitenancy.py`'s deficit-round-robin scheduler
graduated into the real sharded datapath (DESIGN §15).  The gate sits
between wire ingress and shard steering as an opt-in topology stage
(:meth:`~repro.topology.sharding.ShardedOffloadServer.enable_qos`), and
applies four overload defenses in order:

1. **Admission control** — a token bucket per tenant plus one global
   bucket.  A request that finds no token is shed *immediately* with an
   explicit THROTTLED response, before it costs a single director-core
   cycle.
2. **Bounded per-tenant queues** — an admitted message joins its
   tenant's queue; on overflow the *oldest* entry is dropped from the
   front (the newest request is the one most likely still inside its
   client's patience window).
3. **Deadline-aware shedding** — CoDel-style: a message whose queue
   sojourn exceeds ``sojourn_target`` at dispatch time is shed rather
   than served, so the server never burns capacity on work the client
   has already timed out on.
4. **Weighted fair dispatch** — deficit round robin over the tenant
   queues, byte-costed, feeding a bounded in-dispatch window so backlog
   accumulates *here* (where it is shed fairly) rather than invisibly
   inside the director cores.

Every shed is answered, never silent: clients see
:class:`~repro.core.messages.IoResponse` with ``throttled=True`` and
back off (retry-circuit cooperation).  A shed request whose id is
already completed in the dedup table is *replayed* instead — invariant
OL4 (no acked request is ever shed) holds by construction and is
double-checked live by the
:class:`~repro.faults.overload.OverloadInvariantChecker`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.messages import IoRequest, IoResponse
from ..net.packet import FiveTuple
from ..sim import Environment, Event, Store
from .stages import Stage, StageKind

__all__ = ["TokenBucket", "QosConfig", "TenantQosGate"]


class TokenBucket:
    """Lazy-refill token bucket on the simulation clock.

    Refill is computed from elapsed sim time on access, so an idle
    bucket costs zero scheduled events.
    """

    def __init__(self, env: Environment, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.env = env
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = self.burst
        self._stamp = env.now

    def _refill(self) -> None:
        now = self.env.now
        if now > self._stamp:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, count: float = 1.0) -> bool:
        """Spend ``count`` tokens if available; never blocks."""
        self._refill()
        if self._tokens >= count:
            self._tokens -= count
            return True
        return False


def flow_tenant(flow: FiveTuple) -> str:
    """Default tenant classifier: one tenant per client endpoint."""
    return f"{flow.client_ip}:{flow.client_port}"


@dataclass
class QosConfig:
    """Knobs for the tenant QoS gate."""

    #: DRR quantum added to a backlogged tenant's deficit each round.
    quantum_bytes: float = 8192.0
    #: Per-tenant bounded queue length (messages); overflow drops the
    #: oldest entry from the front.
    queue_capacity: int = 64
    #: Messages allowed in dispatch concurrently.  This window is what
    #: makes backlog visible to the gate: past it, arrivals queue here
    #: (and are shed fairly) instead of deep inside the director cores.
    max_inflight: int = 64
    #: Shed a message whose queue sojourn exceeds this at dispatch time
    #: (None disables deadline shedding).
    sojourn_target: Optional[float] = 2e-3
    #: Per-tenant admission rate (requests/sec; None = no tenant
    #: buckets) and bucket burst.
    tenant_rate: Optional[float] = None
    tenant_burst: float = 64.0
    #: Global admission rate across all tenants (requests/sec; None =
    #: no global bucket) and bucket burst.
    global_rate: Optional[float] = None
    global_burst: float = 256.0
    #: DRR weight per tenant name; absent tenants get default_weight.
    weights: Dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0
    #: Per-tenant admission-rate overrides (e.g. a known-abusive tenant
    #: capped below the default).
    tenant_rates: Dict[str, float] = field(default_factory=dict)
    #: Flow → tenant name classifier.
    tenant_of: Callable[[FiveTuple], str] = flow_tenant

    def __post_init__(self) -> None:
        if self.quantum_bytes <= 0:
            raise ValueError("quantum_bytes must be positive")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.sojourn_target is not None and self.sojourn_target <= 0:
            raise ValueError("sojourn_target must be positive")
        if self.default_weight <= 0:
            raise ValueError("default_weight must be positive")
        for tenant, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight for {tenant!r} must be positive")


@dataclass
class TenantQueueStats:
    """Per-tenant gate accounting (read by benches and invariants)."""

    submitted: int = 0
    admitted: int = 0
    dispatched: int = 0
    bytes_dispatched: int = 0
    shed_admission: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    replayed: int = 0
    max_depth: int = 0

    @property
    def shed(self) -> int:
        return (
            self.shed_admission + self.shed_queue_full + self.shed_deadline
        )


class _TenantState:
    """One tenant's queue, deficit, and admission bucket."""

    __slots__ = ("name", "weight", "queue", "deficit", "bucket", "stats")

    def __init__(
        self,
        name: str,
        weight: float,
        bucket: Optional[TokenBucket],
    ) -> None:
        self.name = name
        self.weight = weight
        #: (flow, requests, respond, enqueue time)
        self.queue: Deque[Tuple[FiveTuple, List[IoRequest], Callable, float]]
        self.queue = deque()
        self.deficit = 0.0
        self.bucket = bucket
        self.stats = TenantQueueStats()


class TenantQosGate(Stage):
    """The admission → queue → shed → DRR-dispatch pipeline stage.

    ``service`` is the downstream steering entry point
    (:meth:`~repro.topology.sharding.ShardedSteering.steer_direct`);
    ``dedup_source`` returns the deployment's live dedup table (or
    None) so sheds of already-completed retries replay instead of
    throttling; ``observer`` (an
    :class:`~repro.faults.overload.OverloadInvariantChecker`) receives
    every enqueue, shed, and dispatch synchronously.
    """

    kind = StageKind.STEERING

    def __init__(
        self,
        env: Environment,
        config: QosConfig,
        service: Callable[
            [FiveTuple, Sequence[IoRequest], Callable], Generator
        ],
        dedup_source: Optional[Callable[[], object]] = None,
        observer=None,
    ) -> None:
        super().__init__("tenant-qos")
        self.env = env
        self.config = config
        self._service = service
        self._dedup_source = dedup_source
        self.observer = observer
        self._states: Dict[str, _TenantState] = {}
        #: Round-robin order: first-seen tenant order, stable per seed.
        self._order: List[str] = []
        self._global_bucket: Optional[TokenBucket] = None
        if config.global_rate is not None:
            self._global_bucket = TokenBucket(
                env, config.global_rate, config.global_burst
            )
        self._backlog = 0  # queued messages across tenants
        self._inflight = 0  # messages handed to steering, not done
        self._window_waiters: Deque[Event] = deque()
        # capacity=1: intake pokes the dispatcher, extra pokes coalesce.
        self._wakeup = Store(env, capacity=1)
        env.process(self._dispatch_loop())

    # ------------------------------------------------------------------
    # tenant state
    # ------------------------------------------------------------------
    def _state(self, tenant: str) -> _TenantState:
        state = self._states.get(tenant)
        if state is None:
            config = self.config
            bucket = None
            rate = config.tenant_rates.get(tenant, config.tenant_rate)
            if rate is not None:
                bucket = TokenBucket(self.env, rate, config.tenant_burst)
            state = _TenantState(
                tenant,
                config.weights.get(tenant, config.default_weight),
                bucket,
            )
            self._states[tenant] = state
            self._order.append(tenant)
        return state

    @property
    def tenants(self) -> List[str]:
        """Tenants seen so far, in first-arrival order."""
        return list(self._order)

    def stats_for(self, tenant: str) -> TenantQueueStats:
        return self._state(tenant).stats

    @property
    def totals(self) -> TenantQueueStats:
        """Gate-wide accounting, summed over tenants."""
        total = TenantQueueStats()
        for tenant in self._order:
            stats = self._states[tenant].stats
            total.submitted += stats.submitted
            total.admitted += stats.admitted
            total.dispatched += stats.dispatched
            total.bytes_dispatched += stats.bytes_dispatched
            total.shed_admission += stats.shed_admission
            total.shed_queue_full += stats.shed_queue_full
            total.shed_deadline += stats.shed_deadline
            total.replayed += stats.replayed
            total.max_depth = max(total.max_depth, stats.max_depth)
        return total

    @property
    def backlog(self) -> int:
        """Messages queued at the gate right now."""
        return self._backlog

    @property
    def inflight(self) -> int:
        """Messages currently inside the dispatch window."""
        return self._inflight

    # ------------------------------------------------------------------
    # intake (called synchronously from the steering stage)
    # ------------------------------------------------------------------
    def intake(
        self,
        flow: FiveTuple,
        requests: Sequence[IoRequest],
        respond: Callable,
    ) -> None:
        """Admit, queue, or shed one client message.  Never blocks."""
        tenant = self.config.tenant_of(flow)
        state = self._state(tenant)
        stats = state.stats
        stats.submitted += len(requests)
        admitted: List[IoRequest] = []
        for request in requests:
            if state.bucket is not None and not state.bucket.try_take():
                self._shed_request(state, request, respond, "admission")
            elif (
                self._global_bucket is not None
                and not self._global_bucket.try_take()
            ):
                self._shed_request(state, request, respond, "admission")
            else:
                admitted.append(request)
        if not admitted:
            return
        stats.admitted += len(admitted)
        state.queue.append((flow, admitted, respond, self.env.now))
        self._backlog += 1
        if len(state.queue) > self.config.queue_capacity:
            # Drop-from-front: the oldest message is the one most
            # likely already outside its client's patience window.
            old_flow, old_requests, old_respond, _enq = (
                state.queue.popleft()
            )
            self._backlog -= 1
            for request in old_requests:
                self._shed_request(state, request, old_respond, "queue-full")
        stats.max_depth = max(stats.max_depth, len(state.queue))
        if self.observer is not None:
            self.observer.on_enqueue(
                tenant, len(state.queue), self.config.queue_capacity
            )
        self._wakeup.try_put(True)

    def _shed_request(
        self,
        state: _TenantState,
        request: IoRequest,
        respond: Callable,
        reason: str,
    ) -> None:
        """Refuse one request — replaying it if it already completed.

        The dedup check is what makes shedding safe under retries: a
        retransmit of an acked write must get its recorded response
        back (OL4), not a throttle that the client would misread as
        "never applied"."""
        dedup = (
            self._dedup_source() if self._dedup_source is not None else None
        )
        if dedup is not None:
            cached = dedup.cached(request.request_id)
            if cached is not None:
                state.stats.replayed += 1
                respond(cached)
                return
        if reason == "admission":
            state.stats.shed_admission += 1
        elif reason == "queue-full":
            state.stats.shed_queue_full += 1
        else:
            state.stats.shed_deadline += 1
        if self.observer is not None:
            self.observer.on_shed(request, state.name, reason)
        respond(IoResponse(request.request_id, ok=False, throttled=True))

    # ------------------------------------------------------------------
    # weighted fair dispatch (DRR over tenant queues)
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> Generator:
        while True:
            if self._backlog == 0:
                yield self._wakeup.get()
                continue
            yield from self._drr_round()
            # A round that dispatched or shed nothing means every
            # backlogged head still exceeds its deficit: loop again at
            # the same instant — deficits grow monotonically (weights
            # are positive), so dispatch is reached in bounded rounds.

    def _drr_round(self) -> Generator:
        for tenant in list(self._order):
            state = self._states[tenant]
            if not state.queue:
                # No banking while idle: an empty queue forfeits its
                # deficit, so a returning tenant cannot burst with
                # credit saved across idle rounds.
                state.deficit = 0.0
                continue
            state.deficit += self.config.quantum_bytes * state.weight
            yield from self._drain_tenant(state)

    def _drain_tenant(self, state: _TenantState) -> Generator:
        target = self.config.sojourn_target
        while state.queue:
            if self._inflight >= self.config.max_inflight:
                gate = self.env.event()
                self._window_waiters.append(gate)
                yield gate
                continue  # time passed: re-examine the head
            flow, requests, respond, enqueued = state.queue[0]
            sojourn = self.env.now - enqueued
            if target is not None and sojourn > target:
                # Deadline shed at dispatch time (CoDel's insight):
                # serving this message now would spend capacity on work
                # the client has already given up on.
                state.queue.popleft()
                self._backlog -= 1
                for request in requests:
                    self._shed_request(state, request, respond, "deadline")
                continue
            cost = sum(r.wire_size for r in requests)
            if cost > state.deficit:
                return
            state.queue.popleft()
            self._backlog -= 1
            state.deficit -= cost
            if not state.queue:
                state.deficit = 0.0
            state.stats.dispatched += len(requests)
            state.stats.bytes_dispatched += cost
            if self.observer is not None:
                self.observer.on_dispatch(state.name, sojourn)
            self._inflight += 1
            self.env.process(self._serve(flow, requests, respond))

    def _serve(
        self,
        flow: FiveTuple,
        requests: List[IoRequest],
        respond: Callable,
    ) -> Generator:
        try:
            yield from self._service(flow, requests, respond)
        finally:
            self._inflight -= 1
            if self._window_waiters:
                self._window_waiters.popleft().succeed()
