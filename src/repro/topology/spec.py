"""Declarative deployment topology: *what* a solution is, not how to wire it.

A :class:`DeploymentSpec` names the axes the paper varies across its ten
charted solutions (Figure 16) and its ablations: which transport the
client speaks, which file path executes requests (OS filesystem vs. the
DDS file service), whether the DPU offload engine is in front, how many
DPU shards serve the namespace, and the zero-copy toggle.  The registry
(:mod:`repro.topology.registry`) turns a spec into a fully wired server.

Validation happens at construction so an impossible topology (e.g. the
OS file path on a DPU, or sharding without the offload director that
does the steering) fails loudly at spec time instead of producing a
half-wired simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TransportKind", "FilesystemKind", "DeploymentSpec"]


class TransportKind(enum.Enum):
    """The client↔server transport a deployment uses."""

    #: No network at all — client and storage share the machine.
    NONE = "none"
    #: Kernel sockets TCP (the paper's Windows-sockets baseline).
    TCP = "tcp"
    #: RDMA verbs user-level transport.
    RDMA = "rdma"
    #: SMB remote mount over TCP.
    SMB = "smb"
    #: SMB Direct (SMB protocol over RDMA).
    SMB_DIRECT = "smb-direct"
    #: Redy-style RPC: RDMA verbs plus dedicated spin-polling cores.
    REDY = "redy"


class FilesystemKind(enum.Enum):
    """Which file path executes requests."""

    #: The host OS filesystem (kernel file path + serialized I/O section).
    OS = "os"
    #: The DDS file service on the DPU, reached via the file library.
    DDS = "dds"


@dataclass(frozen=True)
class DeploymentSpec:
    """One deployment, declaratively.

    Attributes
    ----------
    name:
        Registry key; also the string the bench harness accepts.
    summary:
        One-line description shown in docs and ``--list`` output.
    transport:
        Client↔server transport (``NONE`` for local deployments).
    filesystem:
        OS file path or DDS file service.
    offload:
        Put the traffic director + offload engine in front (§5-§6).
    host_count / dpu_count:
        Machine shape.  ``dpu_count > 1`` shards the namespace across
        DPUs with a consistent-hash shard map in each traffic director.
    cache_items / director_cores / context_slots:
        Offload-engine sizing knobs (per shard).
    copy_mode:
        Disable zero-copy (the Figure 18/23 ablations).
    headline:
        True for the ten solutions charted in Figure 16.
    """

    name: str
    summary: str
    transport: TransportKind
    filesystem: FilesystemKind
    offload: bool = False
    host_count: int = 1
    dpu_count: int = 0
    cache_items: int = 1 << 20
    director_cores: int = 1
    context_slots: int = 1024
    copy_mode: bool = False
    headline: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a deployment needs a name")
        if self.host_count != 1:
            raise ValueError("only single-host deployments are modelled")
        if self.dpu_count < 0:
            raise ValueError("dpu_count must be non-negative")
        if self.cache_items < 1 or self.context_slots < 1:
            raise ValueError("cache_items and context_slots must be >= 1")
        if self.director_cores < 1:
            raise ValueError("director_cores must be >= 1")
        if self.filesystem is FilesystemKind.OS:
            if self.dpu_count != 0:
                raise ValueError(
                    f"{self.name}: the OS file path runs on the host; "
                    "dpu_count must be 0"
                )
            if self.copy_mode:
                raise ValueError(
                    f"{self.name}: copy_mode only applies to the DDS path"
                )
            if self.offload:
                raise ValueError(
                    f"{self.name}: offloading requires the DDS file service"
                )
        else:
            if self.dpu_count < 1:
                raise ValueError(
                    f"{self.name}: the DDS file service lives on a DPU; "
                    "dpu_count must be >= 1"
                )
        if self.offload:
            if self.transport not in (TransportKind.TCP, TransportKind.RDMA):
                raise ValueError(
                    f"{self.name}: the traffic director fronts TCP or RDMA "
                    "flows only"
                )
        else:
            if self.dpu_count > 1:
                raise ValueError(
                    f"{self.name}: multi-DPU sharding needs the offload "
                    "director to steer requests between shards"
                )
            if self.transport is TransportKind.RDMA:
                raise ValueError(
                    f"{self.name}: plain RDMA without offload is the Redy "
                    "deployment; use TransportKind.REDY"
                )
        if (
            self.transport in (TransportKind.SMB, TransportKind.SMB_DIRECT)
            and self.filesystem is not FilesystemKind.OS
        ):
            raise ValueError(
                f"{self.name}: the SMB server only mounts the OS file path"
            )

    @property
    def sharded(self) -> bool:
        """True when the namespace is split across multiple DPUs."""
        return self.dpu_count > 1
