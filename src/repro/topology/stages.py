"""Composable datapath stages (the paper's §5 pipeline, as parts).

The DDS architecture is an explicit pipeline — NIC signature match →
traffic director → offload engine / host file library → file service —
but the original reproduction hard-wired that pipeline separately into
every server flavour.  This module breaks the wiring into typed, reusable
*stages* so deployments are compositions instead of copies:

* :class:`WireIngress` / :class:`WireEgress` — ``ingest`` / ``completion``:
  the NIC link hop (client→server wire + PCIe host forward; server→client
  wire).
* :class:`TransportStage` — ``transport``: one network-stack layer
  (kernel TCP, RDMA verbs, the app's messaging module) charged to a CPU.
* :class:`OsFileExecution` — ``execution``: the baseline host path
  (application dispatch + OS filesystem).
* :class:`DdsBackend` — ``execution`` backend: the DPU half of DDS (DMA
  engine, DMA/SPDK cores, file service, host file library, host-side
  completion pump).
* :class:`DirectorSteering` — ``steering``: the traffic director + offload
  engine of one DPU, consuming whole client messages.

Every stage also reports its own resource consumption
(:meth:`Stage.host_cores` / :meth:`Stage.dpu_cores` /
:meth:`Stage.client_cores`), so a server's cores-consumed accounting is a
single roll-up over its stages instead of ad-hoc per-server overrides.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..core.file_library import DdsFileLibrary, PollMode
from ..core.file_service import DpuFileService
from ..core.messages import IoRequest, IoResponse, OpCode
from ..core.offload_engine import OffloadEngine
from ..core.traffic_director import TrafficDirector
from ..hardware.cpu import CpuCore, CpuPool
from ..hardware.nic import NetworkLink
from ..hardware.pcie import DmaEngine
from ..hardware.specs import DPU_CPU, HOST_APP_OTHER, MICROSECOND, StackSpec
from ..net.packet import FiveTuple
from ..net.stack import StackLayer
from ..sim import Environment, Event
from ..storage.filesystem import DdsFileSystem, FileSystemError
from ..storage.osfs import OsFileSystem
from ..structures.cuckoo import CuckooCacheTable

__all__ = [
    "StageKind",
    "Stage",
    "WireIngress",
    "WireEgress",
    "TransportStage",
    "OsFileExecution",
    "DdsHostSide",
    "DdsBackend",
    "DirectorSteering",
    "PushdownExecution",
    "PushdownScanOutcome",
]


class StageKind(enum.Enum):
    """Where in the datapath a stage sits."""

    INGEST = "ingest"
    TRANSPORT = "transport"
    STEERING = "steering"
    EXECUTION = "execution"
    COMPLETION = "completion"


class Stage:
    """Base class: datapath role plus per-stage utilization accounting.

    Subclasses implement the hooks matching their kind:

    * ingest / transport / completion stages implement
      :meth:`inbound` and/or :meth:`outbound` (message granularity);
    * execution stages implement :meth:`serve` (request granularity);
    * steering stages implement :meth:`steer` (whole-message ownership,
      including response egress).
    """

    kind: StageKind = StageKind.EXECUTION

    def __init__(self, name: str) -> None:
        self.name = name

    # -- accounting roll-up hooks --------------------------------------
    def host_cores(self, elapsed: float) -> float:
        """Host cores consumed by resources this stage owns exclusively
        (anything charged to a shared :class:`CpuPool` is accounted by
        the pool itself)."""
        return 0.0

    def dpu_cores(self, elapsed: float) -> float:
        """DPU Arm cores consumed by cores this stage owns."""
        return 0.0

    def client_cores(self) -> float:
        """Constant client-side cores this stage burns (Redy pollers)."""
        return 0.0

    # -- datapath hooks ------------------------------------------------
    def inbound(self, flow: FiveTuple, message_bytes: int) -> Generator:
        raise NotImplementedError(f"{self.name} has no inbound hook")

    def outbound(self, flow: FiveTuple, response_bytes: int) -> Generator:
        raise NotImplementedError(f"{self.name} has no outbound hook")

    def serve(self, request: IoRequest) -> Generator:
        raise NotImplementedError(f"{self.name} has no serve hook")

    def steer(
        self,
        flow: FiveTuple,
        requests: Sequence[IoRequest],
        respond: Callable,
    ) -> Generator:
        raise NotImplementedError(f"{self.name} has no steer hook")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.kind.value}:{self.name}>"


class WireIngress(Stage):
    """Client→server link hop, optionally plus the NIC→host PCIe forward
    (the hop DDS offloading avoids, so offload deployments disable it and
    let the traffic director charge it only for unmatched flows)."""

    kind = StageKind.INGEST

    def __init__(
        self, env: Environment, link: NetworkLink, forward_latency: bool
    ) -> None:
        super().__init__("wire-ingress")
        self.env = env
        self.link = link
        self.forward_latency = forward_latency

    def inbound(self, flow: FiveTuple, message_bytes: int) -> Generator:
        yield from self.link.transmit("client_to_server", message_bytes)
        if self.forward_latency:
            yield self.env.timeout(self.link.spec.host_forward)


class WireEgress(Stage):
    """Server→client link hop delivering the response message."""

    kind = StageKind.COMPLETION

    def __init__(self, env: Environment, link: NetworkLink) -> None:
        super().__init__("wire-egress")
        self.env = env
        self.link = link

    def outbound(self, flow: FiveTuple, response_bytes: int) -> Generator:
        yield from self.link.transmit("server_to_client", response_bytes)


class TransportStage(Stage):
    """One network-stack layer crossed in both directions."""

    kind = StageKind.TRANSPORT

    def __init__(
        self,
        env: Environment,
        spec: StackSpec,
        cpu,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or spec.name)
        self.layer = StackLayer(env, spec, cpu)

    def inbound(self, flow: FiveTuple, message_bytes: int) -> Generator:
        yield from self.layer.process(message_bytes)

    def outbound(self, flow: FiveTuple, response_bytes: int) -> Generator:
        yield from self.layer.process(response_bytes)


class OsFileExecution(Stage):
    """Host execution through the OS filesystem (the paper's baseline).

    Runs the application's own request handling (``HOST_APP_OTHER``) and
    then either the installed application handler or plain file semantics
    against the kernel file path.  ``catch_errors`` mirrors the historical
    server behaviour: the TCP baseline converts filesystem errors into
    failed responses, while the local/Redy variants surface them.
    """

    kind = StageKind.EXECUTION

    def __init__(
        self,
        env: Environment,
        filesystem: DdsFileSystem,
        host_pool: CpuPool,
        app_handler: Optional[Callable] = None,
        catch_errors: bool = False,
        app_other_spec: StackSpec = HOST_APP_OTHER,
    ) -> None:
        super().__init__("os-file-execution")
        self.env = env
        self.app_other = StackLayer(env, app_other_spec, host_pool)
        self.osfs = OsFileSystem(env, filesystem, host_pool)
        self.app_handler = app_handler
        self.catch_errors = catch_errors

    def host_cores(self, elapsed: float) -> float:
        # The kernel's serialized I/O section is a dedicated core outside
        # the host pool.
        return self.osfs.serializer.utilization(elapsed)

    def serve(self, request: IoRequest) -> Generator:
        yield from self.app_other.process(request.wire_size)
        try:
            if self.app_handler is not None:
                response = yield self.env.process(self.app_handler(request))
            elif request.op is OpCode.READ:
                data = yield self.env.process(
                    self.osfs.read(
                        request.file_id, request.offset, request.size
                    )
                )
                response = IoResponse(request.request_id, True, data)
            else:
                yield self.env.process(
                    self.osfs.write(
                        request.file_id, request.offset, request.payload
                    )
                )
                response = IoResponse(request.request_id, True)
        except FileSystemError:
            if not self.catch_errors:
                raise
            response = IoResponse(request.request_id, False)
        return response


class DdsHostSide:
    """Host application logic shared by every DDS library deployment.

    Owns a set of notification groups (one per simulated application
    thread), the completion pump that resolves request ids back to
    waiters, and the host app's single I/O dispatch thread whose
    serialized per-request work bounds the library path's throughput
    (see DESIGN.md §4 on this calibration assumption).
    """

    DISPATCH_COST = 1.7 * MICROSECOND
    GROUPS = 4

    def __init__(
        self,
        env: Environment,
        host_pool: CpuPool,
        library: DdsFileLibrary,
        app_other_spec: StackSpec = HOST_APP_OTHER,
    ) -> None:
        self.env = env
        self.host_pool = host_pool
        self.library = library
        self.dispatch_core = CpuCore(env, speed=1.0, name="app-dispatch")
        self.app_other = StackLayer(env, app_other_spec, host_pool)
        self.groups = [library.create_poll() for _ in range(self.GROUPS)]
        self._waiters: Dict[int, Event] = {}
        self._registered_files: set = set()
        for group in self.groups:
            env.process(self._completion_pump(group))

    def register_file(self, file_id: int) -> None:
        """Spread files across notification groups round-robin."""
        if file_id in self._registered_files:
            return
        group = self.groups[len(self._registered_files) % len(self.groups)]
        self.library.poll_add(group, file_id)
        self._registered_files.add(file_id)

    def _completion_pump(self, group) -> Generator:
        while True:
            completion = yield self.env.process(
                self.library.poll_wait(group, PollMode.SLEEPING)
            )
            request_id, ok, data = completion
            waiter = self._waiters.pop(request_id, None)
            if waiter is not None:
                waiter.succeed(IoResponse(request_id, ok, data))

    def serve(self, request: IoRequest) -> Generator:
        """Application processing + library issue + completion wait."""
        yield from self.app_other.process(request.wire_size)
        yield from self.dispatch_core.execute(self.DISPATCH_COST)
        self.register_file(request.file_id)
        if request.op is OpCode.READ:
            request_id = yield from self.library.read_file(
                request.file_id, request.offset, request.size
            )
        else:
            request_id = yield from self.library.write_file(
                request.file_id, request.offset, request.payload
            )
        waiter = self.env.event()
        self._waiters[request_id] = waiter
        completion: IoResponse = yield waiter
        # The library numbers operations in its own id space; the client
        # correlates responses by the wire request id, so translate back.
        return IoResponse(request.request_id, completion.ok, completion.data)


class DdsBackend(Stage):
    """The DPU half of a DDS deployment, bundled as one execution stage.

    Creating a backend wires up the full §4 substrate for one DPU: the
    PCIe DMA engine, the two dedicated Arm cores (DMA thread + SPDK
    worker), the DPU file service over this shard's filesystem, the host
    file library, and the host-side dispatch/completion logic.  Call
    :meth:`start` once the rest of the deployment is assembled to spawn
    the service threads.
    """

    kind = StageKind.EXECUTION

    def __init__(
        self,
        env: Environment,
        host_pool: CpuPool,
        filesystem: DdsFileSystem,
        copy_mode: bool = False,
        name: str = "dds-backend",
        app_other_spec: StackSpec = HOST_APP_OTHER,
    ) -> None:
        super().__init__(name)
        self.env = env
        self.filesystem = filesystem
        self.dma = DmaEngine(env)
        self.dma_core = CpuCore(env, speed=DPU_CPU.speed, name="dpu-dma")
        self.spdk_core = CpuCore(env, speed=DPU_CPU.speed, name="dpu-spdk")
        self.file_service = DpuFileService(
            env, filesystem, self.dma_core, self.spdk_core, copy_mode
        )
        self.library = DdsFileLibrary(
            env, host_pool, self.file_service, self.dma
        )
        self.host_side = DdsHostSide(
            env, host_pool, self.library, app_other_spec
        )

    def start(self) -> None:
        """Spawn the file service's DMA thread and SPDK worker."""
        self.file_service.start()

    def host_cores(self, elapsed: float) -> float:
        return self.host_side.dispatch_core.utilization(elapsed)

    def dpu_cores(self, elapsed: float) -> float:
        return self.dma_core.utilization(elapsed) + self.spdk_core.utilization(
            elapsed
        )

    def serve(self, request: IoRequest) -> Generator:
        return self.host_side.serve(request)


@dataclass
class PushdownScanOutcome:
    """What one pushdown scan returned and what it put on the wire."""

    file_id: int
    shard: int
    #: True when the pipeline ran on the DPU under a proof token;
    #: False when admission refused it and the host served the scan.
    offloaded: bool
    rows: int
    wire_bytes: int
    acc: Tuple[int, ...]
    selected: List[Tuple[int, bytes]]


class PushdownExecution(Stage):
    """Verified-pushdown execution on one shard's DPU (DESIGN.md §14).

    Owns one Arm core and an RXP accelerator per shard and redeems
    :class:`~repro.pushdown.verifier.VerifiedPipeline` proof tokens
    against the shard's filesystem: pages are read locally, records run
    through the :class:`~repro.pushdown.engine.PushdownEngine` (RXP
    absorbing a regex-lowerable filter), and only the operator's output
    crosses the wire.  Admission itself happens at the server
    (:meth:`~repro.topology.sharding.ShardedOffloadServer.
    pushdown_scan`) so a rejection can fall back to the host path
    *before* any DPU resources are touched.
    """

    kind = StageKind.EXECUTION

    def __init__(
        self,
        env: Environment,
        filesystem: DdsFileSystem,
        link: NetworkLink,
        shard: int = 0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"pushdown-{shard}")
        # Local imports keep topology importable without the pushdown
        # package having been wired into a deployment.
        from ..extensions.accelerators import BF2_REGEX, HardwareAccelerator
        from ..pushdown.engine import PushdownEngine

        self.env = env
        self.filesystem = filesystem
        self.link = link
        self.shard = shard
        self.core = CpuCore(
            env, speed=DPU_CPU.speed, name=f"dpu{shard}-pushdown"
        )
        self.spdk_core = CpuCore(
            env, speed=DPU_CPU.speed, name=f"dpu{shard}-pushdown-spdk"
        )
        self.accelerator = HardwareAccelerator(env, BF2_REGEX)
        self._engine_cls = PushdownEngine
        self.scans = 0

    def dpu_cores(self, elapsed: float) -> float:
        return self.core.utilization(elapsed) + self.spdk_core.utilization(
            elapsed
        )

    def scan(self, token, file_id: int, pages: int) -> Generator:
        """Run one admitted pipeline over ``pages`` pages of a file.

        A DES process generator returning a :class:`PushdownScanOutcome`.
        The engine is fresh per scan (accumulators start at zero); the
        RXP path engages iff the token certifies a regex lowering.
        """
        geometry = token.geometry
        page_bytes = geometry.page_bytes
        pipeline = token.pipeline
        has_project = pipeline.stage("project") is not None
        has_aggregate = pipeline.stage("aggregate") is not None
        engine = self._engine_cls(
            self.env,
            self.core,
            self.accelerator if token.pattern is not None else None,
        )
        self.scans += 1
        wire_bytes = 0
        selected: List[Tuple[int, bytes]] = []
        for page_id in range(pages):
            yield from self.spdk_core.execute(0.35e-6)
            page = yield self.env.process(
                self.filesystem.read(
                    file_id, page_id * page_bytes, page_bytes
                )
            )
            outcome = yield from engine.execute_page(token, page)
            for slot, record in outcome.selected:
                selected.append(
                    (page_id * geometry.records_per_page + slot, record)
                )
            if has_project:
                payload = sum(len(chunk) for chunk in outcome.emitted)
            elif has_aggregate:
                payload = 0
            else:
                payload = len(outcome.selected) * geometry.record_bytes
            if payload:
                yield from self.link.transmit("server_to_client", payload)
            wire_bytes += payload
        if has_aggregate:
            # The folded registers are the aggregate's entire answer.
            acc_bytes = len(engine.acc) * 8
            yield from self.link.transmit("server_to_client", acc_bytes)
            wire_bytes += acc_bytes
        return PushdownScanOutcome(
            file_id=file_id,
            shard=self.shard,
            offloaded=True,
            rows=len(selected),
            wire_bytes=wire_bytes,
            acc=tuple(engine.acc),
            selected=selected,
        )


class DirectorSteering(Stage):
    """One DPU's traffic director + offload engine, owning whole messages.

    The steering stage consumes the client message after the NIC hop:
    the director's signature/OffPred logic dispatches each request to the
    offload engine or to the host fallback, and responses leave through
    the director's transmit path — so no egress stages run after it.
    """

    kind = StageKind.STEERING

    def __init__(
        self,
        env: Environment,
        cores: List[CpuCore],
        director: TrafficDirector,
        engine: OffloadEngine,
        cache_table: CuckooCacheTable,
        name: str = "director",
    ) -> None:
        super().__init__(name)
        self.env = env
        self.cores = cores
        self.director = director
        self.engine = engine
        self.cache_table = cache_table

    def dpu_cores(self, elapsed: float) -> float:
        total = 0.0
        for core in self.cores:
            total += core.utilization(elapsed)
        return total

    def steer(
        self,
        flow: FiveTuple,
        requests: Sequence[IoRequest],
        respond: Callable,
    ) -> Generator:
        yield from self.director.receive_message(flow, requests, respond)
