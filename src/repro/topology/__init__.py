"""Composable datapath stages + declarative deployment topology.

``stages`` are the reusable datapath pieces (ingest / transport /
steering / execution / completion); ``spec`` declares what a deployment
is; ``registry`` maps every solution name to a spec and builds servers
from them; ``sharding`` is the N-DPU scale-out deployment the layer
exists to enable.
"""

from .spec import DeploymentSpec, FilesystemKind, TransportKind
from .stages import (
    DdsBackend,
    DdsHostSide,
    DirectorSteering,
    OsFileExecution,
    Stage,
    StageKind,
    TransportStage,
    WireEgress,
    WireIngress,
)

# registry/sharding pull in the concrete servers, which themselves build
# on the stages above — load them lazily to keep imports acyclic.
_LAZY = {
    "SOLUTIONS": "registry",
    "build_server": "registry",
    "headline_solutions": "registry",
    "resolve": "registry",
    "ConsistentHashShardMap": "sharding",
    "OffloadShard": "sharding",
    "ShardedOffloadServer": "sharding",
    "ShardedSteering": "sharding",
    "flow_shard": "sharding",
    "mirror_filesystem": "sharding",
    "CommitRecord": "replication",
    "ReplicaGroup": "replication",
    "ShardReplicator": "replication",
    "WriteRecord": "replication",
    "FileMove": "resharding",
    "ReshardingCoordinator": "resharding",
    "ShardAutoscaler": "resharding",
}

__all__ = [
    "CommitRecord",
    "ConsistentHashShardMap",
    "DdsBackend",
    "DdsHostSide",
    "DeploymentSpec",
    "DirectorSteering",
    "FileMove",
    "FilesystemKind",
    "OffloadShard",
    "ReshardingCoordinator",
    "ShardAutoscaler",
    "OsFileExecution",
    "ReplicaGroup",
    "SOLUTIONS",
    "ShardReplicator",
    "ShardedOffloadServer",
    "ShardedSteering",
    "Stage",
    "StageKind",
    "TransportKind",
    "TransportStage",
    "WireEgress",
    "WireIngress",
    "WriteRecord",
    "build_server",
    "flow_shard",
    "headline_solutions",
    "mirror_filesystem",
    "resolve",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
